# Developer entry points. The container has no ruff/flake8; `lint` uses
# the repo's own AST-based checker (tools/lint.py, now a shim over
# tools/staticcheck) and falls through to ruff when one is installed.
# `staticcheck` runs the full framework: lock-discipline,
# blocking-while-locked, determinism, error-taxonomy, plus the legacy
# rules (docs/staticcheck.md). `test` runs lint first so dead imports
# fail fast. `bench`/`bench-quick` go through the scenario registry
# (`repro bench`, docs/benchmarks.md); `ci` mirrors the GitHub Actions
# workflow: lint -> staticcheck -> tier-1 tests -> quick bench smoke ->
# regression guard against the committed baselines.

PYTHON ?= python
BENCH_OUT ?= .
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint staticcheck check-docs test test-slow bench bench-quick bench-baselines ci serve example-batch

lint:
	$(PYTHON) tools/lint.py
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks examples tools || true

# The full static-analysis gate (superset of `lint`): concurrency,
# determinism, and error-taxonomy rules with the committed baseline.
staticcheck:
	$(PYTHON) tools/staticcheck --jobs 0

# Intra-repo markdown links must resolve; fenced python doc blocks
# must compile (README.md + docs/, see tools/check_docs.py).
check-docs:
	$(PYTHON) tools/check_docs.py

test: lint
	$(PYTHON) -m pytest -x -q

test-slow:
	$(PYTHON) -m pytest -x -q -m slow

# Both bench targets end in the regression guard so their exit code
# means something: green = every metric inside its band vs the
# committed baselines for that tier. Stale per-scenario artifacts are
# deleted first (file-targeted, so BENCH_OUT=. is safe): `repro bench`
# only overwrites files for scenarios it ran, and a leftover
# BENCH_<renamed>.json would otherwise mask a missing-scenario
# regression. BENCH_summary.json is spared — it is the append-only
# trajectory.
bench:
	find $(BENCH_OUT) -maxdepth 1 -name 'BENCH_*.json' ! -name 'BENCH_summary.json' -delete 2>/dev/null || true
	$(PYTHON) -m repro bench --full --output-dir $(BENCH_OUT)
	$(PYTHON) tools/benchguard.py --results $(BENCH_OUT) --tier full

bench-quick:
	find $(BENCH_OUT) -maxdepth 1 -name 'BENCH_*.json' ! -name 'BENCH_summary.json' -delete 2>/dev/null || true
	$(PYTHON) -m repro bench --quick --output-dir $(BENCH_OUT)
	$(PYTHON) tools/benchguard.py --results $(BENCH_OUT) --tier quick

# Refresh the committed baselines after an intentional perf/fidelity
# change (commit the resulting diff under benchmarks/baselines/). The
# scratch dirs are wiped first: `repro bench` only overwrites files for
# scenarios it ran, so a stale artifact from a renamed/removed scenario
# would otherwise be baselined as a phantom.
bench-baselines:
	rm -rf /tmp/bench-quick-baseline /tmp/bench-full-baseline
	rm -rf benchmarks/baselines/quick benchmarks/baselines/full
	$(PYTHON) -m repro bench --quick --output-dir /tmp/bench-quick-baseline
	$(PYTHON) tools/benchguard.py --results /tmp/bench-quick-baseline --tier quick --update
	$(PYTHON) -m repro bench --full --output-dir /tmp/bench-full-baseline
	$(PYTHON) tools/benchguard.py --results /tmp/bench-full-baseline --tier full --update

# A fresh directory per run: the guard must never be satisfied by a
# stale BENCH_*.json from a previous invocation. The HTTP smoke boots
# `repro serve` on an ephemeral port and drives it from a second
# process (tools/http_smoke.py).
ci: staticcheck test check-docs
	$(PYTHON) tools/http_smoke.py
	rm -rf bench-artifacts
	$(PYTHON) -m repro bench --quick --output-dir bench-artifacts
	$(PYTHON) tools/benchguard.py --results bench-artifacts --tier quick

serve:
	$(PYTHON) -m repro serve --port 8080

example-batch:
	$(PYTHON) examples/batch_service.py
