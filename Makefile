# Developer entry points. The container has no ruff/flake8; `lint` uses
# the repo's own AST-based checker (tools/lint.py) and falls through to
# ruff when one is installed. `test` runs lint first so dead imports
# fail fast.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test bench example-batch

lint:
	$(PYTHON) tools/lint.py
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks examples tools || true

test: lint
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest $(wildcard benchmarks/bench_*.py) -q

example-batch:
	$(PYTHON) examples/batch_service.py
