"""Ablation: tightness of the covariance bounds B1 / B2 / B3.

DESIGN.md calls out the bound hierarchy of Theorem 7 / Appendix A.8:
B1 <= B2 and B1 <= B3. This bench measures the bounds on real nested
operators from SELJOIN plans and reports how much tighter B1 is.
"""

import math

import numpy as np

from repro.benchreport import Metric, register
from repro.core import PlanAncestry
from repro.core.covariance import _shared_info, g_factor
from repro.experiments.reporting import render_table


@register("bounds", tags=("ablation", "theory"))
def scenario(ctx):
    """Tightness of the covariance bounds B1/B2/B3 on SELJOIN plans."""
    rows = _collect_bounds(ctx.small_lab)
    b1 = np.array([r[0] for r in rows])
    b2 = np.array([r[1] for r in rows])
    b3 = np.array([r[2] for r in rows])
    return [
        Metric("pairs", float(len(rows))),
        Metric("b1_mean", float(b1.mean())),
        Metric("b2_mean", float(b2.mean())),
        Metric("b3_mean", float(b3.mean())),
        Metric("frac_b1_le_b2", float((b1 <= b2 + 1e-15).mean())),
        Metric("frac_b1_le_b3", float((b1 <= b3 + 1e-15).mean())),
    ]


def _collect_bounds(lab):
    rows = []
    executed = lab.executed_queries("uniform-small", "SELJOIN")
    for index, query in enumerate(executed):
        prepared = lab.prepared("uniform-small", "SELJOIN", index, 0.05)
        estimate = prepared.estimate
        ancestry = PlanAncestry.from_plan(query.planned.root)
        nodes = [
            s for s in estimate.per_node.values()
            if s.source == "sample" and s.variance > 0
        ]
        for u in nodes:
            for v in nodes:
                if u.op_id >= v.op_id or not ancestry.related(u.op_id, v.op_id):
                    continue
                shared, m, n = _shared_info(u, v)
                if m == 0:
                    continue
                b1 = math.sqrt(
                    max(u.restricted_variance(shared), 0.0)
                    * max(v.restricted_variance(shared), 0.0)
                )
                b2 = math.sqrt(u.variance * v.variance)
                b3 = (1.0 - (1.0 - 1.0 / n) ** m) * g_factor(u.mean) * g_factor(v.mean)
                rows.append((b1, b2, b3, min(b1, b2, b3)))
    return rows


def test_bound_tightness(small_lab, benchmark):
    rows = benchmark.pedantic(_collect_bounds, args=(small_lab,), rounds=1, iterations=1)
    assert rows, "no correlated operator pairs found"
    b1 = np.array([r[0] for r in rows])
    b2 = np.array([r[1] for r in rows])
    b3 = np.array([r[2] for r in rows])
    print("\n## Bound tightness over correlated operator pairs (SELJOIN, SR=0.05)")
    table = [
        ["pairs", len(rows), "", ""],
        ["mean", b1.mean(), b2.mean(), b3.mean()],
        ["median", np.median(b1), np.median(b2), np.median(b3)],
        ["B1 tightest (%)", f"{(b1 <= b2 + 1e-18).mean():.0%}",
         f"{(b1 <= b3 + 1e-18).mean():.0%}", ""],
    ]
    print(render_table(["stat", "B1", "B2", "B3"], table))
    # Theorem 7: B1 <= B2 — holds exactly even with empirical components,
    # because the restricted variance is a subset sum of the full one.
    assert np.all(b1 <= b2 + 1e-15)
    # Appendix A.8: B1 <= B3 is an asymptotic statement about the exact
    # S^2_rho(m, n) and the true rho. With plug-in estimates it can flip
    # when sample joins are sparse (rho_hat underestimates g(rho)); the
    # relation must still hold for the clear majority of pairs.
    assert (b1 <= b3 + 1e-15).mean() > 0.5
