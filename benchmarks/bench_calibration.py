"""Table 1: the cost units, as recovered by calibration.

Times the calibration procedure (the paper's offline step) and checks
it lands near the simulated hardware truth on both machines.
"""

import time

import pytest

from repro.benchreport import Metric, register
from repro.calibration import Calibrator
from repro.experiments.reporting import render_table
from repro.hardware import PROFILES, HardwareSimulator
from repro.optimizer.cost_model import COST_UNIT_NAMES


def _calibrate(machine):
    simulator = HardwareSimulator(PROFILES[machine], rng=0)
    return Calibrator(simulator, repetitions=10).calibrate()


@register("calibration", tags=("table1", "offline"))
def scenario(ctx):
    """Calibration recovers the simulated hardware's true cost units."""
    metrics = []
    for machine in ("PC1", "PC2"):
        started = time.perf_counter()
        units = _calibrate(machine)
        elapsed = time.perf_counter() - started
        profile = PROFILES[machine]
        rel_errs = [
            abs(units.mean(name) - profile.units[name].mean)
            / profile.units[name].mean
            for name in COST_UNIT_NAMES
        ]
        metrics.append(Metric(
            f"rel_err_max_{machine.lower()}", float(max(rel_errs))
        ))
        metrics.append(Metric(
            f"calibrate_seconds_{machine.lower()}", elapsed,
            kind="timing", unit="s",
        ))
    return metrics


@pytest.mark.parametrize("machine", ["PC1", "PC2"])
def test_calibration_recovers_units(machine, benchmark):
    units = benchmark(_calibrate, machine)
    profile = PROFILES[machine]
    rows = []
    for name in COST_UNIT_NAMES:
        truth = profile.units[name].mean
        estimate = units.mean(name)
        rows.append(
            [name, f"{truth:.3e}", f"{estimate:.3e}",
             f"{units.distribution(name).std:.2e}",
             f"{abs(estimate - truth) / truth:.2%}"]
        )
    print(f"\n## Table 1 — calibrated cost units on {machine}")
    print(render_table(["unit", "true mean", "calibrated", "std", "rel err"], rows))
    for name in COST_UNIT_NAMES:
        assert units.mean(name) == pytest.approx(
            profile.units[name].mean, rel=0.3
        )
