"""Extension: predictions under concurrency (Section 8 future work).

Sweeps the multiprogramming level and checks the modeled behaviour:
means and variances grow with load, I/O-bound queries degrade faster
than CPU-bound ones.
"""

from repro.core.concurrency import ConcurrentPredictor
from repro.experiments.reporting import render_table

LEVELS = (1, 2, 4, 8)


def _sweep(lab):
    executed = lab.executed_queries("uniform-small", "SELJOIN")
    samples = lab.sample_db("uniform-small", 0.05)
    predictor = ConcurrentPredictor(lab.units("PC1"))
    rows = []
    for index, query in enumerate(executed[:6]):
        sweep = predictor.sweep(query.planned, samples, LEVELS)
        rows.append(
            [f"Q{index}"]
            + [f"{sweep[mpl].mean:.3f} ± {sweep[mpl].std:.3f}" for mpl in LEVELS]
        )
    return rows


def test_concurrency_sweep(small_lab, benchmark):
    rows = benchmark.pedantic(_sweep, args=(small_lab,), rounds=1, iterations=1)
    headers = ["query"] + [f"MPL={mpl}" for mpl in LEVELS]
    print("\n## Predictions under concurrency (SELJOIN, uniform-small, PC1)")
    print(render_table(headers, rows))
    for row in rows:
        means = [float(cell.split(" ± ")[0]) for cell in row[1:]]
        stds = [float(cell.split(" ± ")[1]) for cell in row[1:]]
        assert means == sorted(means)  # load never speeds a query up
        assert stds[-1] >= stds[0]  # interference adds uncertainty
