"""Extension: predictions under concurrency (Section 8 future work).

Sweeps the multiprogramming level and checks the modeled behaviour:
means and variances grow with load, I/O-bound queries degrade faster
than CPU-bound ones.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.core.concurrency import ConcurrentPredictor
from repro.experiments.reporting import render_table

LEVELS = (1, 2, 4, 8)


def _sweep_raw(lab, num_queries=6):
    """(query, mpl) -> (mean, std) over the SELJOIN workload."""
    executed = lab.executed_queries("uniform-small", "SELJOIN")
    samples = lab.sample_db("uniform-small", 0.05)
    predictor = ConcurrentPredictor(lab.units("PC1"))
    sweeps = []
    for query in executed[:num_queries]:
        sweep = predictor.sweep(query.planned, samples, LEVELS)
        sweeps.append([(sweep[mpl].mean, sweep[mpl].std) for mpl in LEVELS])
    return sweeps


@register("concurrency", tags=("extension", "mpl"))
def scenario(ctx):
    """Load monotonicity of the interference model across MPLs."""
    sweeps = _sweep_raw(ctx.small_lab, num_queries=ctx.pick(quick=4, full=6))
    means = np.array([[m for m, _ in row] for row in sweeps])
    stds = np.array([[s for _, s in row] for row in sweeps])
    monotone = float(np.mean([
        all(np.diff(row) >= 0) for row in means
    ]))
    return [
        Metric("monotone_mean_frac", monotone),
        Metric("mean_slowdown_mpl8", float((means[:, -1] / means[:, 0]).mean())),
        Metric("std_growth_mpl8", float((stds[:, -1] / stds[:, 0]).mean())),
    ]


def _sweep(lab):
    executed = lab.executed_queries("uniform-small", "SELJOIN")
    samples = lab.sample_db("uniform-small", 0.05)
    predictor = ConcurrentPredictor(lab.units("PC1"))
    rows = []
    for index, query in enumerate(executed[:6]):
        sweep = predictor.sweep(query.planned, samples, LEVELS)
        rows.append(
            [f"Q{index}"]
            + [f"{sweep[mpl].mean:.3f} ± {sweep[mpl].std:.3f}" for mpl in LEVELS]
        )
    return rows


def test_concurrency_sweep(small_lab, benchmark):
    rows = benchmark.pedantic(_sweep, args=(small_lab,), rounds=1, iterations=1)
    headers = ["query"] + [f"MPL={mpl}" for mpl in LEVELS]
    print("\n## Predictions under concurrency (SELJOIN, uniform-small, PC1)")
    print(render_table(headers, rows))
    for row in rows:
        means = [float(cell.split(" ± ")[0]) for cell in row[1:]]
        stds = [float(cell.split(" ± ")[1]) for cell in row[1:]]
        assert means == sorted(means)  # load never speeds a query up
        assert stds[-1] >= stds[0]  # interference adds uncertainty
