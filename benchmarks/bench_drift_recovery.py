"""Drift recovery: the online feedback loop re-forms interval coverage.

The v2 observation API exists for one reason: a calibration profile
goes stale the moment the hardware (or the co-located load) changes,
and the paper's uncertainty guarantees are only worth shipping if the
served intervals *recover* without a recalibration outage. This bench
replays one deterministic schedule through the full feedback loop
(:func:`repro.replay.run_feedback_loop`) with a hardware shift injected
mid-replay — every simulated actual runtime is multiplied by
``SHIFT_FACTOR`` from 40% of the schedule onward — and measures both
arms:

* the **online** arm serves through a session that receives every
  ground-truth observation; its windowed conformal scaling plus the
  Page–Hinkley drift reset must restore 90%-interval coverage within
  ``RECOVERY_BUDGET`` post-shift observations (hard floor);
* the **static** arm is an observation-free mirror of the same
  configuration; its post-shift coverage must stay degraded (hard
  floor) — proving recovery is the feedback loop's doing, not the
  workload drifting back.

``observe_free_bitwise`` is the API-redesign contract: before any
observation is fed, the feedback-enabled session's wire responses are
byte-identical (under ``dumps``) to the mirror's — enabling the loop
costs nothing until it is actually used.
"""

from repro.api import Session, SessionConfig
from repro.api.wire import PredictRequest, dumps
from repro.benchreport import Metric, register
from repro.replay import (
    ClosedLoop,
    InProcessTarget,
    build_schedule,
    parse_mix,
    run_feedback_loop,
)

SETUP_CONFIG = SessionConfig(
    scale_factor=0.01,
    db_seed=11,
    calibration_seed=0,
    calibration_repetitions=6,
    sampling_ratio=0.05,
    sampling_seed=1,
    feedback_window=64,
    feedback_min_observations=12,
    feedback_fast_window=12,
)
SCHEDULE_SEED = 37
SHIFT_AT = 0.4
SHIFT_FACTOR = 3.0
CONFIDENCE = 0.9
#: Post-shift observations the online arm gets to re-form coverage
#: (rolling window of RECOVERY_WINDOW at >= RECOVERY_TARGET).
RECOVERY_BUDGET = 40
RECOVERY_WINDOW = 15
RECOVERY_TARGET = 0.85


def _sessions_and_schedule(requests_total: int):
    online = Session(SETUP_CONFIG)
    mirror = Session(SETUP_CONFIG)
    schedule = build_schedule(
        parse_mix("mixed"),
        online.database,
        ClosedLoop(clients=1, requests_per_client=requests_total),
        seed=SCHEDULE_SEED,
    )
    return online, mirror, schedule


def _observe_free_bitwise(online, mirror, schedule) -> bool:
    """Feedback-enabled serving with zero observations is byte-identical."""
    for request in schedule.requests:
        wire = PredictRequest(
            sql=request.sql,
            variants=request.variants,
            mpls=request.mpls,
            confidences=request.confidences,
        )
        if dumps(online.predict(wire).to_dict()) != dumps(
            mirror.predict(wire).to_dict()
        ):
            return False
    return True


@register("drift_recovery", tags=("feedback", "replay", "calibration"))
def scenario(ctx):
    """Online recalibration recovers post-shift coverage; static arm stays degraded."""
    requests_total = ctx.pick(quick=80, full=200)
    online, mirror, schedule = _sessions_and_schedule(requests_total)

    observe_free = _observe_free_bitwise(online, mirror, schedule)

    loop_seconds, trajectory = ctx.best_of(
        lambda: run_feedback_loop(
            schedule,
            InProcessTarget(online),
            mirror,
            confidence=CONFIDENCE,
            shift_at=SHIFT_AT,
            shift_factor=SHIFT_FACTOR,
        ),
        1,
    )
    recovery = trajectory.recovery_observations(
        window=RECOVERY_WINDOW, target=RECOVERY_TARGET
    )
    recovered = recovery is not None and recovery <= RECOVERY_BUDGET
    pre_online = trajectory.coverage(end=trajectory.shift_index) or 0.0
    post_online = trajectory.post_shift_coverage() or 0.0
    post_static = trajectory.post_shift_coverage(static=True)
    post_static = 0.0 if post_static is None else post_static
    static_degraded = post_static <= 0.3

    return [
        Metric("feedback_loop_seconds", loop_seconds, kind="timing", unit="s"),
        Metric("pre_shift_coverage_online", pre_online),
        Metric("post_shift_coverage_online", post_online, kind="ratio", floor=0.5),
        Metric("post_shift_coverage_static", post_static),
        Metric(
            "recovery_observations",
            float(RECOVERY_BUDGET if recovery is None else recovery),
            kind="ratio",
        ),
        Metric(
            "recovered_within_budget",
            1.0 if recovered else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "static_stays_degraded",
            1.0 if static_degraded else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "drift_detected",
            1.0 if trajectory.drifts_detected >= 1 else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "observe_free_bitwise",
            1.0 if observe_free else 0.0,
            kind="ratio",
            floor=1.0,
        ),
    ]
