"""Engine micro-benchmarks: the substrate's hot kernels.

Not a paper artifact, but keeps the substrate honest: join, aggregation
and full-plan execution throughput on the small TPC-H database.
"""

import pytest

from repro.executor import Executor, equijoin_pairs
from repro.optimizer import Optimizer


@pytest.fixture(scope="module")
def db(small_lab):
    return small_lab.databases["uniform-small"]


def test_equijoin_kernel(db, benchmark):
    orders = db.table("orders").column("o_orderkey")
    lineitem = db.table("lineitem").column("l_orderkey")
    li, ri = benchmark(lambda: equijoin_pairs([orders], [lineitem]))
    assert len(li) == db.table("lineitem").num_rows


def test_full_plan_execution(db, benchmark):
    planned = Optimizer(db).plan_sql(
        "SELECT COUNT(*) FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND o_totalprice > 150000"
    )
    executor = Executor(db)
    result = benchmark(lambda: executor.execute(planned))
    assert result.num_rows == 1


def test_optimizer_planning(db, benchmark):
    optimizer = Optimizer(db)
    sql = (
        "SELECT COUNT(*) FROM customer, orders, lineitem, supplier, nation "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey"
    )
    planned = benchmark(lambda: optimizer.plan_sql(sql))
    assert len(list(planned.root.walk())) >= 9
