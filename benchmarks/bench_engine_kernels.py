"""Engine micro-benchmarks: the substrate's hot kernels.

Not a paper artifact, but keeps the substrate honest: join, aggregation
and full-plan execution throughput on the small TPC-H database.
"""

import pytest

from repro.benchreport import Metric, register
from repro.executor import Executor, equijoin_pairs
from repro.optimizer import Optimizer


@pytest.fixture(scope="module")
def db(small_lab):
    return small_lab.databases["uniform-small"]


@register("engine_kernels", tags=("substrate", "latency"))
def scenario(ctx):
    """Hot-kernel latencies: equijoin, full-plan execution, planning."""
    database = ctx.small_lab.databases["uniform-small"]
    repetitions = ctx.pick(quick=3, full=5)
    orders = database.table("orders").column("o_orderkey")
    lineitem = database.table("lineitem").column("l_orderkey")
    join_seconds, (left_idx, _) = ctx.best_of(
        lambda: equijoin_pairs([orders], [lineitem]), repetitions
    )
    optimizer = Optimizer(database)
    exec_sql = (
        "SELECT COUNT(*) FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND o_totalprice > 150000"
    )
    planned = optimizer.plan_sql(exec_sql)
    executor = Executor(database)
    exec_seconds, _ = ctx.best_of(lambda: executor.execute(planned), repetitions)
    plan_sql = (
        "SELECT COUNT(*) FROM customer, orders, lineitem, supplier, nation "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey"
    )
    plan_seconds, _ = ctx.best_of(
        lambda: optimizer.plan_sql(plan_sql), repetitions
    )
    return [
        Metric("equijoin_seconds", join_seconds, kind="timing", unit="s"),
        Metric("execute_seconds", exec_seconds, kind="timing", unit="s"),
        Metric("plan_seconds", plan_seconds, kind="timing", unit="s"),
        Metric("join_pairs", float(len(left_idx))),
    ]


def test_equijoin_kernel(db, benchmark):
    orders = db.table("orders").column("o_orderkey")
    lineitem = db.table("lineitem").column("l_orderkey")
    li, ri = benchmark(lambda: equijoin_pairs([orders], [lineitem]))
    assert len(li) == db.table("lineitem").num_rows


def test_full_plan_execution(db, benchmark):
    planned = Optimizer(db).plan_sql(
        "SELECT COUNT(*) FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND o_totalprice > 150000"
    )
    executor = Executor(db)
    result = benchmark(lambda: executor.execute(planned))
    assert result.num_rows == 1


def test_optimizer_planning(db, benchmark):
    optimizer = Optimizer(db)
    sql = (
        "SELECT COUNT(*) FROM customer, orders, lineitem, supplier, nation "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey"
    )
    planned = benchmark(lambda: optimizer.plan_sql(sql))
    assert len(list(planned.root.walk())) >= 9
