"""Figure 3: rs is robust to outliers, rp is not.

The paper removes the right-most scatter point of a MICRO cell and
shows rp jumps while rs barely moves. We regenerate that study on the
cell with the largest predicted sigma.
"""

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table


@register("fig3_outliers", tags=("figure", "robustness"))
def scenario(ctx):
    """rs stays put when the max-sigma outlier is removed; rp moves."""
    cell, trimmed = _outlier_study(ctx.small_lab)
    return [
        Metric("rs_full", float(cell.rs)),
        Metric("rs_trimmed", float(trimmed.rs)),
        Metric("rp_full", float(cell.rp)),
        Metric("rp_trimmed", float(trimmed.rp)),
        Metric("rs_delta", float(abs(cell.rs - trimmed.rs))),
    ]


def _outlier_study(lab):
    cell = lab.run_cell("uniform-small", "MICRO", "PC2", 0.01)
    trimmed = cell.without_largest_sigma()
    return cell, trimmed


def test_fig3_outlier_robustness(small_lab, benchmark):
    cell, trimmed = benchmark.pedantic(
        _outlier_study, args=(small_lab,), rounds=1, iterations=1
    )
    rows = [
        ["full population", cell.rs, cell.rp],
        ["max-sigma query removed", trimmed.rs, trimmed.rp],
        ["|delta|", abs(cell.rs - trimmed.rs), abs(cell.rp - trimmed.rp)],
    ]
    print("\n## Figure 3 — outlier robustness (MICRO uniform-small PC2 SR=0.01)")
    print(render_table(["population", "rs", "rp"], rows))
    print("\nScatter (sigma, |error|):")
    scatter = [[f"{s:.4g}", f"{e:.4g}"] for s, e in zip(cell.sigmas, cell.errors)]
    print(render_table(["sigma (s)", "error (s)"], scatter))
    # rs must remain meaningful in both populations.
    assert trimmed.rs > 0.3
