"""Figure 5: predicted Pr(alpha) vs observed Prn(alpha) curves.

Regenerates the three curve pairs (MICRO / SELJOIN / TPCH on the
uniform large database, PC2, SR = 0.05) and checks the paper's
qualitative finding: the curves track each other, with mild
over-confidence (Pr >= Prn) at small alpha.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments import metrics
from repro.experiments.plots import ascii_lines
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS


@register("fig5_pr_curves", tags=("figure", "distribution"))
def scenario(ctx):
    """Predicted Pr(alpha) tracks the observed Prn(alpha) curves."""
    results = _curves(ctx.lab)
    out = []
    for name, (alphas, empirical, predicted, dn) in results.items():
        gaps = np.abs(np.asarray(empirical) - np.asarray(predicted))
        out.append(Metric(f"gap_mean_{name.lower()}", float(gaps.mean())))
        out.append(Metric(f"dn_{name.lower()}", float(dn)))
    return out


def _curves(lab):
    results = {}
    for benchmark_name in BENCHMARKS:
        cell = lab.run_cell("uniform-large", benchmark_name, "PC2", 0.05)
        alphas, empirical, predicted = metrics.pr_curves(
            cell.mus, cell.sigmas, cell.actuals
        )
        results[benchmark_name] = (alphas, empirical, predicted, cell.dn)
    return results


def test_fig5_pr_curves(lab, benchmark):
    results = benchmark.pedantic(_curves, args=(lab,), rounds=1, iterations=1)
    print("\n## Figure 5 — Pr(alpha) vs Prn(alpha) (uniform-large, PC2, SR=0.05)")
    for name, (alphas, empirical, predicted, dn) in results.items():
        print(f"\n### {name}, Dn = {dn:.4f}")
        rows = [[a, e, p] for a, e, p in zip(alphas, empirical, predicted)]
        print(render_table(["alpha", "Prn(alpha)", "Pr(alpha)"], rows))
        print(ascii_lines(
            alphas,
            {"observed Prn": empirical, "predicted Pr": predicted},
            x_label="alpha",
        ))
    for name, (alphas, empirical, predicted, dn) in results.items():
        gaps = np.abs(np.asarray(empirical) - np.asarray(predicted))
        assert gaps.mean() < 0.45  # curves must track each other
        # both curves are monotone nondecreasing in alpha
        assert all(np.diff(empirical) >= -1e-12)
        assert all(np.diff(predicted) >= 0)
