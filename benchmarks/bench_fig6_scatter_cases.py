"""Figure 6: case-study scatter plots of sigma vs actual error.

Case (3): TPCH on the skewed large database, PC1, SR = 0.05 — both rs
and rp good, near-linear scatter. Case (4): TPCH on the uniform small
database, PC1, SR = 0.01 — both weaker.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.plots import ascii_scatter
from repro.experiments.reporting import render_table


@register("fig6_scatter_cases", tags=("figure", "case-study"))
def scenario(ctx):
    """The good (skewed-large) vs weak (uniform-small SR=0.01) cases."""
    good, weak = _cases(ctx.lab)
    return [
        Metric("rs_good", float(good.rs)),
        Metric("rp_good", float(good.rp)),
        Metric("rs_weak", float(weak.rs)),
        Metric("rp_weak", float(weak.rp)),
    ]


def _cases(lab):
    good = lab.run_cell("skewed-large", "TPCH", "PC1", 0.05)
    weak = lab.run_cell("uniform-small", "TPCH", "PC1", 0.01)
    return good, weak


def test_fig6_scatter_cases(lab, benchmark):
    good, weak = benchmark.pedantic(_cases, args=(lab,), rounds=1, iterations=1)
    print("\n## Figure 6 — case studies")
    for label, cell in (("case (3): both good", good), ("case (4): weaker", weak)):
        print(
            f"\n### {label}: {cell.benchmark} {cell.database} {cell.machine} "
            f"SR={cell.sampling_ratio} — rs={cell.rs:.4f}, rp={cell.rp:.4f}"
        )
        rows = [[f"{s:.4g}", f"{e:.4g}"] for s, e in zip(cell.sigmas, cell.errors)]
        print(render_table(["sigma (s)", "error (s)"], rows))
        # log-log scatter (the raw scale is dominated by deep-join queries)
        print(
            ascii_scatter(
                np.log10(np.maximum(cell.sigmas, 1e-9)),
                np.log10(np.maximum(cell.errors, 1e-9)),
                x_label="log10 sigma",
                y_label="log10 error",
            )
        )
    # The paper's ordering: the skewed-large case correlates strongly.
    assert good.rs > 0.6
