"""Figures 8 / 10: ablation of the uncertainty sources.

Compares All / NoVar[c] / NoVar[X] / NoCov on TPCH queries across
sampling ratios. The paper's findings: ignoring Var[c] costs
correlation, ignoring Var[X] hurts when samples are small, and the
complete version is the most robust.

Scale note: our databases are ~50x smaller than the paper's, so the
absolute sample size the paper reaches at SR = 1e-4..1e-2 corresponds
to our SR = 1e-2..2e-1 — the sweep below covers that regime. The bench
builds its own 28-query cell (more queries than the shared lab) so the
rank correlations are stable enough to assert on.
"""

import numpy as np
import pytest

from repro.benchreport import Metric, register
from repro.core import Variant
from repro.datagen import generate_tpch
from repro.experiments import DATABASE_CONFIGS, ExperimentLab
from repro.experiments.reporting import render_table

ABLATION_RATIOS = (0.01, 0.05, 0.2)
VARIANTS = (Variant.ALL, Variant.NO_VAR_C, Variant.NO_VAR_X, Variant.NO_COV)


def _build_ablation_lab(tpch_queries):
    return ExperimentLab(
        databases={
            "uniform-small": generate_tpch(DATABASE_CONFIGS["uniform-small"])
        },
        seed=0,
        query_counts={"TPCH": tpch_queries},
        calibration_repetitions=8,
    )


@register("fig8_ablation", tags=("figure", "ablation"))
def scenario(ctx):
    """rs of All / NoVar[c] / NoVar[X] / NoCov across sampling ratios."""
    lab = _build_ablation_lab(ctx.pick(quick=14, full=28))
    rows = _ablation(lab)
    all_scores = np.array([row[1] for row in rows])
    no_c = np.array([row[2] for row in rows])
    no_x = np.array([row[3] for row in rows])
    no_cov = np.array([row[4] for row in rows])
    return [
        Metric("rs_all_min", float(all_scores.min())),
        Metric("rs_all_mean", float(all_scores.mean())),
        Metric("rs_no_var_c_mean", float(no_c.mean())),
        Metric("rs_no_var_x_mean", float(no_x.mean())),
        Metric("rs_no_cov_mean", float(no_cov.mean())),
    ]


@pytest.fixture(scope="module")
def ablation_lab():
    return _build_ablation_lab(28)


def _ablation(lab):
    rows = []
    for sr in ABLATION_RATIOS:
        row = [sr]
        for variant in VARIANTS:
            cell = lab.run_cell("uniform-small", "TPCH", "PC1", sr, variant=variant)
            row.append(cell.rs)
        rows.append(row)
    return rows


def test_fig8_variant_ablation(ablation_lab, benchmark):
    rows = benchmark.pedantic(_ablation, args=(ablation_lab,), rounds=1, iterations=1)
    headers = ["SR"] + [v.value for v in VARIANTS]
    print("\n## Figures 8 / 10 — ablation (rs), TPCH uniform-small PC1")
    print(render_table(headers, rows))

    all_scores = np.array([row[1] for row in rows])
    no_c = np.array([row[2] for row in rows])
    no_x = np.array([row[3] for row in rows])
    # The complete version is the most robust (the paper's conclusion) ...
    assert all_scores.min() > 0.5
    # ... ignoring Var[c] costs correlation once samples are plentiful,
    assert all_scores[1:].mean() > no_c[1:].mean()
    # ... and the complete version is at least as good as NoVar[X] on
    # average over the sweep.
    assert all_scores.mean() >= no_x.mean() - 0.05
