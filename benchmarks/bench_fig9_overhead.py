"""Figures 9 / 11: relative overhead of the sampling pass.

The paper reports overheads around 0.04-0.06 at SR = 0.05 on the 10 GB
database, growing with the sampling ratio and shrinking with database
size. The bench regenerates the overhead grid and asserts both trends.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS, SAMPLING_RATIOS


@register("fig9_overhead", tags=("figure", "overhead"))
def scenario(ctx):
    """Relative sampling overhead: grows with SR, small at SR=0.05."""
    sections = _overheads(ctx.lab)
    metrics = []
    monotone = []
    for name, rows in sections.items():
        mid = rows[1][1:]
        metrics.append(Metric(
            f"overhead_mid_{name.lower()}", float(np.nanmean(mid))
        ))
        first_db_column = [row[1] for row in rows]
        monotone.append(first_db_column == sorted(first_db_column))
    metrics.append(Metric("monotone_frac", float(np.mean(monotone))))
    return metrics


def _overheads(lab):
    sections = {}
    for benchmark_name in BENCHMARKS:
        rows = []
        for sr in SAMPLING_RATIOS:
            row = [sr]
            for db_label in lab.databases:
                row.append(
                    lab.relative_overhead(db_label, benchmark_name, "PC1", sr)
                )
            rows.append(row)
        sections[benchmark_name] = rows
    return sections


def test_fig9_sampling_overhead(lab, benchmark):
    sections = benchmark.pedantic(_overheads, args=(lab,), rounds=1, iterations=1)
    headers = ["SR"] + list(lab.databases)
    print("\n## Figures 9 / 11 — relative sampling overhead (PC1)")
    for name, rows in sections.items():
        print(f"\n### {name}")
        print(render_table(headers, rows))
    for name, rows in sections.items():
        # overhead grows with the sampling ratio
        first_db_column = [row[1] for row in rows]
        assert first_db_column == sorted(first_db_column)
        # at SR = 0.05 the overhead stays well below the query itself
        mid = rows[1][1:]
        assert np.nanmean(mid) < 0.5
