"""Extension ablation: GEE aggregate estimates vs the optimizer fallback.

Section 3.2.2 leaves sampling-based aggregate estimation (GEE) as
future work and uses the optimizer's estimates instead. We implemented
GEE; this bench compares aggregate-output selectivity estimates from
both strategies against the truth on TPCH queries.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.plan import OpKind


@register("gee_ablation", tags=("extension", "ablation"))
def scenario(ctx):
    """GEE vs optimizer-fallback aggregate selectivity errors."""
    lab = ctx.small_lab
    fallback_errors = _aggregate_errors(lab, use_gee=False)
    gee_errors = _aggregate_errors(lab, use_gee=True)
    return [
        Metric("fallback_mean_rel_err", float(np.mean(fallback_errors))),
        Metric("fallback_median_rel_err", float(np.median(fallback_errors))),
        Metric("gee_mean_rel_err", float(np.mean(gee_errors))),
        Metric("gee_median_rel_err", float(np.median(gee_errors))),
        Metric("aggregates", float(len(gee_errors))),
    ]


def _aggregate_errors(lab, use_gee):
    errors = []
    executed = lab.executed_queries("uniform-small", "TPCH")
    for index, query in enumerate(executed):
        prepared = lab.prepared("uniform-small", "TPCH", index, 0.1, use_gee=use_gee)
        for node in query.planned.root.walk():
            if node.kind is not OpKind.AGGREGATE or not node.group_keys:
                continue
            estimate = prepared.estimate.per_node[node.op_id]
            truth = query.true_selectivity(node.op_id)
            if truth > 0:
                errors.append(abs(estimate.mean - truth) / truth)
    return errors


def test_gee_vs_optimizer_fallback(small_lab, benchmark):
    def run():
        return (
            _aggregate_errors(small_lab, use_gee=False),
            _aggregate_errors(small_lab, use_gee=True),
        )

    fallback_errors, gee_errors = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fallback_errors and gee_errors
    rows = [
        ["optimizer fallback", np.mean(fallback_errors), np.median(fallback_errors)],
        ["GEE", np.mean(gee_errors), np.median(gee_errors)],
    ]
    print("\n## GEE ablation — aggregate-output relative errors (TPCH, SR=0.1)")
    print(render_table(["estimator", "mean rel err", "median rel err"], rows))
    # Both estimators must produce sane (finite, nonnegative) errors.
    assert all(e >= 0 and np.isfinite(e) for e in gee_errors)
