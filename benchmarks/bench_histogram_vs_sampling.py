"""Ablation: sampling-based vs histogram-based uncertainty estimation.

Section 3.2 notes the framework is estimator-agnostic and leaves
histogram-based uncertainty as future work; we implemented it. This
bench compares the two estimators' correlation between predicted sigma
and actual error on the same workload, plus their mean accuracy.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.mathstats import spearman


@register("histogram_vs_sampling", tags=("extension", "ablation"))
def scenario(ctx):
    """Sampling vs histogram estimators: sigma-error correlation."""
    lab = ctx.small_lab
    sampling_rs, sampling_med = _run(lab, "sampling")
    histogram_rs, histogram_med = _run(lab, "histogram")
    return [
        Metric("sampling_rs", float(sampling_rs)),
        Metric("histogram_rs", float(histogram_rs)),
        Metric("sampling_median_rel_err", float(sampling_med)),
        Metric("histogram_median_rel_err", float(histogram_med)),
    ]


def _run(lab, method):
    executed = lab.executed_queries("skewed-small", "SELJOIN")
    predictor = lab.predictor("PC1")
    samples = lab.sample_db("skewed-small", 0.05)
    sigmas, errors, rel_mean_errors = [], [], []
    for index, query in enumerate(executed):
        if method == "sampling":
            prepared = lab.prepared("skewed-small", "SELJOIN", index, 0.05)
        else:
            prepared = predictor.prepare(query.planned, samples, method="histogram")
        prediction = predictor.predict_prepared(query.planned, prepared)
        actual = lab.actual_time("skewed-small", "SELJOIN", index, "PC1")
        sigmas.append(prediction.std)
        errors.append(abs(prediction.mean - actual))
        if actual > 0:
            rel_mean_errors.append(abs(prediction.mean - actual) / actual)
    return (
        spearman(sigmas, errors),
        float(np.median(rel_mean_errors)),
    )


def test_histogram_vs_sampling(small_lab, benchmark):
    def run():
        return {
            "sampling (Algorithm 1)": _run(small_lab, "sampling"),
            "histogram (catalog)": _run(small_lab, "histogram"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, rs, med] for label, (rs, med) in results.items()
    ]
    print("\n## Sampling vs histogram uncertainty (SELJOIN, skewed-small, PC1)")
    print(render_table(["estimator", "rs(sigma, error)", "median rel. mean error"], rows))
    sampling_rs = results["sampling (Algorithm 1)"][0]
    histogram_rs = results["histogram (catalog)"][0]
    # Both estimators must produce usable uncertainty (positive rank
    # correlation with the actual errors). Which one predicts *means*
    # better is workload-dependent: the TPC-H templates are dominated by
    # foreign-key joins, where the 1/max(ndv) rule is exact even under
    # skew, while sample joins go sparse at our scale — so the histogram
    # estimator wins on mean accuracy here. The sampling estimator's
    # advantage is its principled variance (S_n^2), which the histogram
    # path can only heuristically imitate.
    assert sampling_rs > 0.5
    assert histogram_rs > 0.3
