"""HTTP serving overhead: the threaded front-end vs the in-process facade.

The serving claim: putting the predictor behind ``repro serve`` (the
stdlib threaded HTTP server + the versioned JSON wire schema) costs
transport and (de)serialization, not prediction quality — responses are
**bitwise identical** to the in-process :class:`repro.api.Session`, and
a warm batch keeps a usable fraction of in-process throughput.

Three measurements on one warmed session (so both paths replay cached
plans/prepares and the numbers isolate serving overhead):

* in-process ``Session.predict_batch`` wall time;
* the same batch as one ``POST /v1/predict-batch``;
* the same queries as individual ``POST /v1/predict`` requests — the
  per-request overhead an online deployment sees (requests/sec is the
  query count over ``http_request_seconds``).

The guarded ratios ``batch_efficiency`` / ``request_efficiency``
(in-process seconds over HTTP seconds; dimensionless, so the guard can
band them across machines) carry hard floors: if the front-end ever
costs 50x the engine, the "cheap enough to serve online" pitch
(Sec. 6.3.4) is broken. ``http_bitwise_agreement`` is a hard-floored
flag: 1.0 only when **every** float of every response — mean, variance,
std, interval bounds — is bitwise identical over HTTP.
"""

import threading

import pytest

from repro.api import HttpClient, Session, SessionConfig, build_server
from repro.api.wire import BatchRequest
from repro.benchreport import Metric, register
from repro.util import ensure_rng
from repro.workloads.tpch_templates import TPCH_TEMPLATES

BATCH_SIZE = 30
SETUP_CONFIG = SessionConfig(
    scale_factor=0.01,
    db_seed=11,
    calibration_seed=0,
    calibration_repetitions=6,
    sampling_ratio=0.05,
    sampling_seed=1,
    default_variants=("all", "nocov"),
    default_mpls=(1, 4),
)


def _build_serving_setup(batch_size=BATCH_SIZE):
    session = Session(SETUP_CONFIG)
    rng = ensure_rng(21)
    queries = tuple(
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(batch_size)
    )
    return session, queries


@pytest.fixture(scope="module")
def serving_setup():
    session, queries = _build_serving_setup()
    server = build_server(session, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield session, queries, HttpClient(server.url)
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@register("http_serving", tags=("service", "http", "throughput"))
def scenario(ctx):
    """Threaded HTTP front-end vs in-process Session on a warm batch."""
    session, queries = _build_serving_setup(
        batch_size=ctx.pick(quick=12, full=BATCH_SIZE)
    )
    request = BatchRequest(queries=queries)
    session.predict_batch(request)  # warm plans + prepares for both paths

    inproc_seconds, in_process = ctx.best_of(
        lambda: session.predict_batch(request), 3
    )

    server = build_server(session, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = HttpClient(server.url)
        http_seconds, over_http = ctx.best_of(
            lambda: client.predict_batch(request), 3
        )
        request_seconds, _ = ctx.best_of(
            lambda: [client.predict(sql) for sql in queries], 2
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    # Bitwise agreement is part of the scenario: JSON floats round-trip
    # exactly, so any drift means the wire schema corrupted a number.
    # Every serialized float is compared — means, variances, stds, and
    # interval bounds — and the agreement flag has a hard floor, so the
    # guard fails on the first non-identical bit regardless of baseline
    # bands.
    max_diff = max(
        _max_result_diff(got, expected)
        for remote, local in zip(over_http, in_process)
        for got, expected in zip(remote.results, local.results)
    )
    return [
        Metric("inprocess_batch_seconds", inproc_seconds, kind="timing", unit="s"),
        Metric("http_batch_seconds", http_seconds, kind="timing", unit="s"),
        Metric("http_request_seconds", request_seconds, kind="timing", unit="s"),
        # Dimensionless ratios only: absolute requests/sec would be
        # banded across machines by the guard, which gates only timing
        # metrics on the environment fingerprint.
        Metric(
            "batch_efficiency",
            inproc_seconds / http_seconds,
            kind="ratio",
            floor=0.02,
        ),
        Metric(
            "request_efficiency",
            inproc_seconds / request_seconds,
            kind="ratio",
            floor=0.005,
        ),
        Metric(
            "http_bitwise_agreement",
            1.0 if max_diff == 0.0 else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric("http_agreement_max_abs_diff", float(max_diff)),
    ]


def _max_result_diff(got, expected) -> float:
    """The largest absolute drift across every float of one result cell."""
    diffs = [
        abs(got.mean - expected.mean),
        abs(got.variance - expected.variance),
        abs(got.std - expected.std),
    ]
    for got_iv, expected_iv in zip(got.intervals, expected.intervals):
        diffs.append(abs(got_iv.low - expected_iv.low))
        diffs.append(abs(got_iv.high - expected_iv.high))
    return max(diffs)


def test_http_serving_bitwise_and_bounded_overhead(serving_setup):
    session, queries, client = serving_setup
    request = BatchRequest(queries=queries)
    in_process = session.predict_batch(request)
    over_http = client.predict_batch(request)
    assert not over_http.failures
    for remote, local in zip(over_http, in_process):
        assert remote.results == local.results  # exact float equality
    # Warm single-request serving must stay interactive on localhost.
    single = client.predict(queries[0])
    assert single.prepare_was_cached
