"""Extension: least-expected-cost plan choice (Section 6.5.1).

Compares the LEC plan ranking against the classic point-estimate
ranking across SELJOIN queries: how often they agree, and the expected
cost of each choice.
"""


import numpy as np

from repro.benchreport import Metric, register
from repro.core import LeastExpectedCostChooser
from repro.experiments.reporting import render_table
from repro.workloads import seljoin_workload


@register("lec", tags=("extension", "planning"))
def scenario(ctx):
    """LEC vs point-estimate plan choice on SELJOIN queries."""
    rows = _lec_study(ctx.small_lab)
    agree = [lec == point for _, lec, point, _, _ in rows]
    lec_costs = np.array([row[3] for row in rows])
    point_costs = np.array([row[4] for row in rows])
    return [
        Metric("queries", float(len(rows))),
        Metric("agree_frac", float(np.mean(agree))),
        Metric("candidates_mean", float(np.mean([row[0] for row in rows]))),
        Metric("lec_expected_cost_mean", float(lec_costs.mean())),
        Metric("point_expected_cost_mean", float(point_costs.mean())),
    ]


def _lec_study(lab):
    db = lab.databases["uniform-small"]
    chooser = LeastExpectedCostChooser(db, lab.units("PC1"))
    samples = lab.sample_db("uniform-small", 0.05)
    rows = []
    for sql in seljoin_workload(num_queries=8, seed=5):
        candidates = chooser.candidates(sql, samples)
        lec_best = min(candidates, key=lambda c: c.expected_cost)
        point_best = min(candidates, key=lambda c: c.point_cost)
        rows.append(
            (
                len(candidates),
                lec_best.label,
                point_best.label,
                lec_best.expected_cost,
                point_best.expected_cost,
            )
        )
    return rows


def test_lec_plan_choice(small_lab, benchmark):
    rows = benchmark.pedantic(_lec_study, args=(small_lab,), rounds=1, iterations=1)
    print("\n## LEC vs point-estimate plan choice (SELJOIN, PC1, SR=0.05)")
    table = [
        [n, lec, point, f"{le:.4f}", f"{pe:.4f}"]
        for n, lec, point, le, pe in rows
    ]
    print(render_table(
        ["candidates", "LEC choice", "point choice",
         "E[cost] of LEC", "E[cost] of point"],
        table,
    ))
    # The LEC choice can never have higher expected cost than the
    # point-estimate choice (it minimizes that objective).
    for _, _, _, lec_cost, point_cost in rows:
        assert lec_cost <= point_cost + 1e-12
