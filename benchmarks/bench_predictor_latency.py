"""The low-overhead claim: prediction latency per pipeline stage.

The paper argues distributions come "almost at the cost" of the point
predictor [48]. Here pytest-benchmark times the real wall-clock of the
three prediction stages (sampling pass, cost-function fitting,
distribution assembly) on a SELJOIN query.

The scenario also meters the SoA batch-assembly kernels
(docs/service.md "Batch kernels") against the scalar per-result
assembly + interval loop over the same prepared SELJOIN plans:
``soa_assembly_retained`` carries a hard floor on the speedup and
``soa_assembly_bitwise`` hard-floors bit-identical outputs.
"""

import struct

import pytest

from repro.benchreport import Metric, register
from repro.core import UncertaintyPredictor, Variant
from repro.core.concurrency import ConcurrentPredictor
from repro.costfuncs import CostFunctionFitter
from repro.core.variance import assemble_distribution_parameters
from repro.sampling import SelectivityEstimator
from repro.service.kernels import (
    assemble_batch,
    batch_intervals,
    build_batch_plan,
)

ASSEMBLY_VARIANTS = tuple(Variant)
ASSEMBLY_MPLS = (1, 2, 4)
ASSEMBLY_CONFIDENCES = (0.5, 0.9, 0.99)


@register("predictor_latency", tags=("latency", "overhead"))
def scenario(ctx):
    """Per-stage prediction latency on a SELJOIN query (best of N)."""
    lab = ctx.small_lab
    executed = lab.executed_queries("uniform-small", "SELJOIN")[1]
    samples = lab.sample_db("uniform-small", 0.05)
    units = lab.units("PC1")
    estimate = SelectivityEstimator(samples, executed.planned).estimate()
    fitted = CostFunctionFitter(executed.planned, estimate).fit_all()
    predictor = UncertaintyPredictor(units)
    repetitions = ctx.pick(quick=3, full=7)

    stages = {
        "sampling_pass_seconds":
            lambda: SelectivityEstimator(samples, executed.planned).estimate(),
        "fitting_seconds":
            lambda: CostFunctionFitter(executed.planned, estimate).fit_all(),
        "assembly_seconds":
            lambda: assemble_distribution_parameters(
                executed.planned, estimate, fitted, units
            ),
        "end_to_end_seconds":
            lambda: predictor.predict(executed.planned, samples),
    }
    metrics = [
        Metric(name, ctx.best_of(func, repetitions)[0], kind="timing", unit="s")
        for name, func in stages.items()
    ]

    # SoA batch assembly vs the scalar per-result loop, over every
    # SELJOIN plan at the full variant x mpl x confidence fan-out.
    # Both sides start from the same prepared artifacts (warm assembler
    # caches), so the ratio isolates the assembly + interval math.
    entries = []
    for query in lab.executed_queries("uniform-small", "SELJOIN"):
        prepared = predictor.prepare(query.planned, samples)
        prepared.assembler(query.planned)  # warm, like a serving cache
        entries.append((query.planned, prepared))
    concurrent = ConcurrentPredictor(units)
    scalar_seconds, scalar_payload = ctx.best_of(
        lambda: _assemble_scalar(entries, concurrent), repetitions
    )
    soa_seconds, soa_payload = ctx.best_of(
        lambda: _assemble_soa(entries, concurrent), repetitions
    )
    metrics += [
        Metric(
            "scalar_assembly_batch_seconds", scalar_seconds,
            kind="timing", unit="s",
        ),
        Metric(
            "soa_assembly_batch_seconds", soa_seconds,
            kind="timing", unit="s",
        ),
        Metric(
            "soa_assembly_retained", scalar_seconds / soa_seconds,
            kind="ratio", floor=2.0,
        ),
        Metric(
            "soa_assembly_bitwise",
            1.0 if soa_payload == scalar_payload else 0.0,
            kind="ratio",
            floor=1.0,
        ),
    ]
    return metrics


def _assemble_scalar(entries, concurrent):
    """The reference loop: one assemble + interval pass per combination."""
    payload = []
    for planned, prepared in entries:
        for mpl in ASSEMBLY_MPLS:
            predictor = concurrent.predictor_at(mpl)
            for variant in ASSEMBLY_VARIANTS:
                result = predictor.predict_prepared(planned, prepared, variant)
                _pack_result(
                    payload,
                    result.breakdown,
                    result.std,
                    [
                        result.confidence_interval(confidence)
                        for confidence in ASSEMBLY_CONFIDENCES
                    ],
                )
    return payload


def _assemble_soa(entries, concurrent):
    """The SoA kernels over the same artifacts, packed in scalar order."""
    batch_plan = build_batch_plan(entries)
    assembly = assemble_batch(
        batch_plan, concurrent, ASSEMBLY_VARIANTS, ASSEMBLY_MPLS
    )
    intervals = batch_intervals(assembly, ASSEMBLY_CONFIDENCES)
    payload = []
    # Walk per submitted entry (query_slots), not per distinct slot, so
    # the payload lines up 1:1 with the scalar loop's even if two
    # SELJOIN plans ever dedup to one slot.
    for slot in (int(index) for index in batch_plan.query_slots):
        for li in range(len(ASSEMBLY_MPLS)):
            for vi in range(len(ASSEMBLY_VARIANTS)):
                payload += [
                    struct.pack("<d", assembly.mean[slot, vi, li]),
                    struct.pack("<d", assembly.variance[slot, vi, li]),
                    struct.pack("<d", assembly.std[slot, vi, li]),
                    struct.pack("<d", assembly.exact_part[slot, vi, li]),
                    struct.pack("<d", assembly.bounded_part[slot, vi, li]),
                    struct.pack("<d", assembly.unit_part[slot, vi, li]),
                ]
                payload += [
                    struct.pack("<d", value)
                    for value in assembly.per_unit_mean[slot, vi, li]
                ]
                for ci in range(len(ASSEMBLY_CONFIDENCES)):
                    payload += [
                        struct.pack("<d", intervals[slot, vi, li, ci, 0]),
                        struct.pack("<d", intervals[slot, vi, li, ci, 1]),
                    ]
    return payload


def _pack_result(payload, breakdown, std, interval_pairs):
    payload += [
        struct.pack("<d", breakdown.mean),
        struct.pack("<d", breakdown.variance),
        struct.pack("<d", std),
        struct.pack("<d", breakdown.exact_selectivity_term),
        struct.pack("<d", breakdown.bounded_covariance_term),
        struct.pack("<d", breakdown.cost_unit_term),
    ]
    payload += [
        struct.pack("<d", value) for value in breakdown.per_unit_mean.values()
    ]
    for low, high in interval_pairs:
        payload += [struct.pack("<d", low), struct.pack("<d", high)]


@pytest.fixture(scope="module")
def setup(small_lab):
    executed = small_lab.executed_queries("uniform-small", "SELJOIN")[1]
    samples = small_lab.sample_db("uniform-small", 0.05)
    units = small_lab.units("PC1")
    estimate = SelectivityEstimator(samples, executed.planned).estimate()
    fitted = CostFunctionFitter(executed.planned, estimate).fit_all()
    return executed, samples, units, estimate, fitted


def test_latency_sampling_pass(setup, benchmark):
    executed, samples, _, _, _ = setup
    benchmark(
        lambda: SelectivityEstimator(samples, executed.planned).estimate()
    )


def test_latency_cost_function_fitting(setup, benchmark):
    executed, _, _, estimate, _ = setup
    benchmark(lambda: CostFunctionFitter(executed.planned, estimate).fit_all())


def test_latency_distribution_assembly(setup, benchmark):
    executed, _, units, estimate, fitted = setup
    benchmark(
        lambda: assemble_distribution_parameters(
            executed.planned, estimate, fitted, units
        )
    )


def test_latency_end_to_end_prediction(setup, small_lab, benchmark):
    executed, samples, units, _, _ = setup
    predictor = UncertaintyPredictor(units)
    result = benchmark(lambda: predictor.predict(executed.planned, samples))
    assert result.mean > 0
