"""The low-overhead claim: prediction latency per pipeline stage.

The paper argues distributions come "almost at the cost" of the point
predictor [48]. Here pytest-benchmark times the real wall-clock of the
three prediction stages (sampling pass, cost-function fitting,
distribution assembly) on a SELJOIN query.
"""

import pytest

from repro.benchreport import Metric, register
from repro.core import UncertaintyPredictor
from repro.costfuncs import CostFunctionFitter
from repro.core.variance import assemble_distribution_parameters
from repro.sampling import SelectivityEstimator


@register("predictor_latency", tags=("latency", "overhead"))
def scenario(ctx):
    """Per-stage prediction latency on a SELJOIN query (best of N)."""
    lab = ctx.small_lab
    executed = lab.executed_queries("uniform-small", "SELJOIN")[1]
    samples = lab.sample_db("uniform-small", 0.05)
    units = lab.units("PC1")
    estimate = SelectivityEstimator(samples, executed.planned).estimate()
    fitted = CostFunctionFitter(executed.planned, estimate).fit_all()
    predictor = UncertaintyPredictor(units)
    repetitions = ctx.pick(quick=3, full=7)

    stages = {
        "sampling_pass_seconds":
            lambda: SelectivityEstimator(samples, executed.planned).estimate(),
        "fitting_seconds":
            lambda: CostFunctionFitter(executed.planned, estimate).fit_all(),
        "assembly_seconds":
            lambda: assemble_distribution_parameters(
                executed.planned, estimate, fitted, units
            ),
        "end_to_end_seconds":
            lambda: predictor.predict(executed.planned, samples),
    }
    return [
        Metric(name, ctx.best_of(func, repetitions)[0], kind="timing", unit="s")
        for name, func in stages.items()
    ]


@pytest.fixture(scope="module")
def setup(small_lab):
    executed = small_lab.executed_queries("uniform-small", "SELJOIN")[1]
    samples = small_lab.sample_db("uniform-small", 0.05)
    units = small_lab.units("PC1")
    estimate = SelectivityEstimator(samples, executed.planned).estimate()
    fitted = CostFunctionFitter(executed.planned, estimate).fit_all()
    return executed, samples, units, estimate, fitted


def test_latency_sampling_pass(setup, benchmark):
    executed, samples, _, _, _ = setup
    benchmark(
        lambda: SelectivityEstimator(samples, executed.planned).estimate()
    )


def test_latency_cost_function_fitting(setup, benchmark):
    executed, _, _, estimate, _ = setup
    benchmark(lambda: CostFunctionFitter(executed.planned, estimate).fit_all())


def test_latency_distribution_assembly(setup, benchmark):
    executed, _, units, estimate, fitted = setup
    benchmark(
        lambda: assemble_distribution_parameters(
            executed.planned, estimate, fitted, units
        )
    )


def test_latency_end_to_end_prediction(setup, small_lab, benchmark):
    executed, samples, units, _, _ = setup
    predictor = UncertaintyPredictor(units)
    result = benchmark(lambda: predictor.predict(executed.planned, samples))
    assert result.mean > 0
