"""Workload replay under load: throughput retention + bitwise stability.

The serving claim the replay subsystem exists to check (Sec. 6.3.4 and
the workload argument of the paper): putting the predictor under
sustained mixed traffic costs *latency*, never *prediction quality* —
the distributions served under concurrent load are bitwise identical to
idle ones, interval calibration does not move, and the stack retains a
usable fraction of its idle throughput.

One warmed session, one seeded mixed TPC-H/micro schedule, four
measurements:

* idle sequential serve time of the whole schedule (the baseline);
* the same schedule replayed **open-loop** in-process with compressed
  arrival pacing (thread-pool dispatch, the session lock serializes
  the engine) — ``open_loop_retained_throughput`` guards the facade's
  concurrency overhead with a hard floor;
* the same schedule replayed **closed-loop over HTTP** (4 clients
  against an 8-slot admission gate) — ``http_closed_retained_throughput``
  guards the full wire path, and ``http_503_free`` pins that a client
  count below the admission cap never sees an over-capacity refusal;
* determinism cross-checks, all hard-floored flags: rebuilt schedules
  fingerprint-identical, two in-process replays bitwise identical,
  HTTP responses bitwise identical to in-process ones.

``calibration_coverage_load`` / ``calibration_coverage_idle`` are
fidelity metrics: the fraction of simulated actual times covered by
the 90% interval, measured from responses served under load and idle —
deterministic given the seed, banded tightly by the guard.
"""

import threading

import pytest

from repro.api import HttpClient, Session, SessionConfig, build_server
from repro.benchreport import Metric, register
from repro.replay import (
    ClosedLoop,
    HttpTarget,
    InProcessTarget,
    PoissonArrivals,
    ReplayRunner,
    build_schedule,
    parse_mix,
)
from repro.replay.report import calibration_under_load

SETUP_CONFIG = SessionConfig(
    scale_factor=0.01,
    db_seed=11,
    calibration_seed=0,
    calibration_repetitions=6,
    sampling_ratio=0.05,
    sampling_seed=1,
)
SCHEDULE_SEED = 23
HTTP_CLIENTS = 4
MAX_IN_FLIGHT = 8


def _build_setup(rate: float, duration: float):
    """(session, open-loop schedule) for the scenario/test, warmed nowhere."""
    session = Session(SETUP_CONFIG)
    schedule = build_schedule(
        parse_mix("mixed"),
        session.database,
        PoissonArrivals(rate),
        seed=SCHEDULE_SEED,
        duration_seconds=duration,
    )
    return session, schedule


@register("replay_load", tags=("replay", "service", "throughput", "http"))
def scenario(ctx):
    """Mixed-workload replay: retained throughput, 503-free closed loop, bitwise stability."""
    rate = ctx.pick(quick=30.0, full=60.0)
    duration = ctx.pick(quick=1.0, full=2.5)
    session, schedule = _build_setup(rate, duration)
    rebuilt = build_schedule(
        parse_mix("mixed"),
        session.database,
        PoissonArrivals(rate),
        seed=SCHEDULE_SEED,
        duration_seconds=duration,
    )
    schedule_determinism = schedule.fingerprint() == rebuilt.fingerprint()

    # Warm every distinct query once so all measured passes replay
    # cached plans/prepares and the numbers isolate serving overhead.
    # time_scale compresses the arrival pacing to ~1ms so the measured
    # replay wall time is dispatch + serving, not schedule span.
    target = InProcessTarget(session)
    runner = ReplayRunner(target, time_scale=0.001)
    warm = runner.run(schedule)

    idle_seconds, _ = ctx.best_of(
        lambda: [target.predict(request) for request in schedule.requests], 3
    )
    open_seconds, open_run = ctx.best_of(lambda: runner.run(schedule), 3)
    bitwise_inproc = (
        warm.results_signature() == open_run.results_signature()
    )
    calibration = calibration_under_load(open_run, session)

    server = build_server(session, port=0, max_in_flight=MAX_IN_FLIGHT)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        closed = build_schedule(
            parse_mix("mixed"),
            session.database,
            ClosedLoop(
                clients=HTTP_CLIENTS,
                requests_per_client=max(len(schedule) // HTTP_CLIENTS, 2),
            ),
            seed=SCHEDULE_SEED,
        )
        http_runner = ReplayRunner(
            HttpTarget(HttpClient(server.url))
        )
        http_seconds, http_run = ctx.best_of(
            lambda: http_runner.run(closed), 2
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    http_503_free = (
        1.0 if not http_run.error_counts().get("over-capacity") else 0.0
    )
    # The closed-loop schedule replays its own queries; compare its
    # per-request idle baseline for a dimensionless retention ratio.
    http_idle_seconds, _ = ctx.best_of(
        lambda: [target.predict(request) for request in closed.requests], 2
    )

    return [
        Metric("idle_serve_seconds", idle_seconds, kind="timing", unit="s"),
        Metric("open_replay_seconds", open_seconds, kind="timing", unit="s"),
        Metric("http_closed_seconds", http_seconds, kind="timing", unit="s"),
        Metric(
            "open_loop_retained_throughput",
            idle_seconds / open_seconds,
            kind="ratio",
            floor=0.1,
        ),
        Metric(
            "http_closed_retained_throughput",
            http_idle_seconds / http_seconds,
            kind="ratio",
            floor=0.02,
        ),
        Metric("http_503_free", http_503_free, kind="ratio", floor=1.0),
        Metric(
            "schedule_determinism",
            1.0 if schedule_determinism else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "bitwise_under_load",
            1.0 if bitwise_inproc else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "http_bitwise_vs_inproc",
            1.0 if not http_run.failed and _http_matches(http_run, session) else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric("calibration_coverage_load", calibration.coverage_under_load),
        Metric("calibration_coverage_idle", calibration.coverage_idle),
        # The closed-loop invariant: N serial clients can never have
        # more than N requests in flight. A flag, not the raw gauge —
        # the gauge's lower range is timing-dependent.
        Metric(
            "closed_loop_bounded",
            1.0 if 0 < http_run.max_in_flight <= HTTP_CLIENTS else 0.0,
            kind="ratio",
            floor=1.0,
        ),
    ]


def _http_matches(http_run, session: Session) -> bool:
    """Every HTTP response bitwise-equals an idle re-serve on ``session``.

    ``session`` is the very session the server wrapped, so the check
    compares the wire round-trip (JSON floats and all) against the
    in-process result payloads. The re-serve carries the scheduled
    request's full fan-out overrides — a mix component requesting its
    own variants/mpls/confidences must be compared like for like.
    """
    from repro.api.wire import PredictRequest

    by_index = {r.index: r for r in http_run.schedule.requests}
    for observation in http_run.succeeded:
        request = by_index[observation.index]
        idle = session.predict(
            PredictRequest(
                sql=request.sql,
                variants=request.variants,
                mpls=request.mpls,
                confidences=request.confidences,
            )
        )
        if idle.results != observation.response.results:
            return False
    return True


@pytest.fixture(scope="module")
def replay_setup():
    return _build_setup(rate=25.0, duration=1.0)


def test_replay_open_loop_bitwise_and_complete(replay_setup):
    session, schedule = replay_setup
    runner = ReplayRunner(InProcessTarget(session), time_scale=0.05)
    first = runner.run(schedule)
    second = runner.run(schedule)
    assert not first.failed and not second.failed
    assert first.results_signature() == second.results_signature()
