"""The shared sub-plan sampling engine: LEC choice and batch serving.

The paper's overhead analysis (Section 6.3.4) argues the sampling pass
must be amortized to be deployable. Two serving shapes exercise the
memoization layer that does the amortizing:

* **LEC candidate evaluation** — the chooser samples up to five
  candidate plans per query whose shapes differ only in access paths,
  join algorithms, and join input order: exactly the degrees of freedom
  the engine's signatures are invariant to. Cold evaluation re-runs the
  full sample pipeline per candidate; with a shared engine the repeated
  sub-plans are served from cache. The acceptance floor is a 3x
  steady-state speedup (recurring queries whose candidate entries have
  rotated out of the chooser's small per-instance LRU — the heavy
  traffic regime).

* **a TPC-H dashboard batch** — distinct metric queries (different
  aggregates / group keys) over shared template FROM/WHERE bases. The
  prepared-artifact cache cannot help (every plan is distinct); the
  engine shares everything below the aggregates.

Both sections cross-check that engine-served estimates are *bitwise*
identical to the cold reference — same means, variances, and
per-relation variance components at every operator.
"""

import time

import pytest

from repro.benchreport import Metric, register
from repro.calibration import Calibrator
from repro.core import LeastExpectedCostChooser, UncertaintyPredictor
from repro.datagen import TpchConfig, generate_tpch
from repro.experiments.reporting import render_table
from repro.hardware import PROFILES, HardwareSimulator
from repro.optimizer import Optimizer
from repro.sampling import SampleDatabase, SamplingEngine
from repro.service import PredictionService
from repro.util import ensure_rng
from repro.workloads import seljoin_workload
from repro.workloads.tpch_templates import TPCH_TEMPLATES

#: Large enough that sampling (which the engine removes) dominates the
#: per-candidate cost over fitting (which it cannot remove).
SCALE = 0.05
SAMPLING_RATIO = 0.25
ENGINE_BYTES = 384 * 1024 * 1024
NUM_QUERIES = 8
SPEEDUP_FLOOR = 3.0

DASHBOARD_METRICS = [
    ("l_returnflag", "SUM(l_quantity) AS sum_qty"),
    ("l_linestatus", "AVG(l_extendedprice) AS avg_price"),
    ("l_shipmode", "COUNT(*) AS n"),
    ("l_returnflag", "MAX(l_discount) AS max_disc"),
    ("l_shipmode", "SUM(l_extendedprice) AS revenue"),
]


def _build_setup(scale=SCALE, num_queries=NUM_QUERIES):
    db = generate_tpch(TpchConfig(scale_factor=scale, skew_z=0.0, seed=11))
    units = Calibrator(
        HardwareSimulator(PROFILES["PC2"], rng=0), repetitions=6
    ).calibrate()
    samples = SampleDatabase(db, sampling_ratio=SAMPLING_RATIO, seed=1)
    queries = seljoin_workload(num_queries=num_queries, seed=5)
    return db, units, samples, queries


@pytest.fixture(scope="module")
def setup():
    return _build_setup()


@register("sampling_engine", tags=("caching", "throughput"))
def scenario(ctx):
    """Shared sub-plan engine: LEC steady-state and dashboard speedups."""
    db, units, samples, queries = _build_setup(
        scale=ctx.pick(quick=0.02, full=SCALE),
        num_queries=ctx.pick(quick=4, full=NUM_QUERIES),
    )
    cold, _ = ctx.best_of(
        lambda: _evaluate_round(db, units, samples, queries, None), 2
    )
    engine = SamplingEngine(max_bytes=ENGINE_BYTES)
    first = _evaluate_round(db, units, samples, queries, engine)
    steady, _ = ctx.best_of(
        lambda: _evaluate_round(db, units, samples, queries, engine), 2
    )

    lec_speedup = cold / steady
    # Release the LEC engine (up to ENGINE_BYTES of retained sample
    # intermediates) before the dashboard phase: keeping it alive
    # skews the off/on comparison below with asymmetric GC pressure.
    del engine

    batch = _dashboard_batch(ensure_rng(21))

    def serve(engine_bytes):
        # A fresh service per call: each round pays the full prepare
        # pass, so the off/on delta isolates the engine's effect.
        service = PredictionService(
            db, units, sampling_ratio=SAMPLING_RATIO, seed=1,
            sampling_engine_bytes=engine_bytes,
        )
        service.predict_batch(batch)

    off, _ = ctx.best_of(lambda: serve(0), 2)
    on, _ = ctx.best_of(lambda: serve(ENGINE_BYTES), 2)
    return [
        Metric("lec_cold_seconds", cold, kind="timing", unit="s"),
        Metric("lec_first_seconds", first, kind="timing", unit="s"),
        Metric("lec_steady_seconds", steady, kind="timing", unit="s"),
        # Floors sit well below the standalone speedups (3x+ LEC, 1.35x+
        # dashboard): scenarios sharing one process with the rest of the
        # suite see slower absolute times under memory pressure, and CI
        # boxes are noisier still. The baseline-relative ratio band is
        # the tighter guard; the floor only catches a total collapse.
        Metric(
            "lec_steady_speedup", lec_speedup, kind="ratio",
            floor=ctx.pick(quick=1.3, full=2.0),
        ),
        Metric("dashboard_off_seconds", off, kind="timing", unit="s"),
        Metric("dashboard_on_seconds", on, kind="timing", unit="s"),
        Metric(
            "dashboard_speedup", off / on, kind="ratio",
            floor=1.05,
        ),
    ]


def _evaluate_round(db, units, samples, queries, engine) -> float:
    """One full LEC evaluation of every query, on fresh chooser instances.

    Fresh choosers model the heavy-traffic regime: the per-chooser
    candidate LRU no longer holds the query, so the evaluation repeats —
    cold unless the shared engine serves the sampling.
    """
    started = time.perf_counter()
    for sql in queries:
        chooser = LeastExpectedCostChooser(db, units, engine=engine)
        if engine is None:
            chooser._engine = None  # ablation: no memoization at all
        chooser.candidates(sql, samples)
    return time.perf_counter() - started


def test_lec_candidate_evaluation_speedup(setup, benchmark):
    db, units, samples, queries = setup

    def study():
        cold = min(
            _evaluate_round(db, units, samples, queries, None) for _ in range(2)
        )
        engine = SamplingEngine(max_bytes=ENGINE_BYTES)
        first = _evaluate_round(db, units, samples, queries, engine)
        steady = min(
            _evaluate_round(db, units, samples, queries, engine) for _ in range(2)
        )
        return cold, first, steady, engine

    cold, first, steady, engine = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    print("\n## LEC candidate evaluation: shared sampling engine")
    print(render_table(
        ["round", "seconds", "speedup"],
        [
            ["cold (no engine)", f"{cold:.3f}", "1.0x"],
            ["first (intra-query sharing)", f"{first:.3f}", f"{cold / first:.2f}x"],
            ["steady state (warm engine)", f"{steady:.3f}", f"{cold / steady:.2f}x"],
        ],
    ))
    print(f"engine: {engine.describe()}")
    assert cold / steady >= SPEEDUP_FLOOR, (
        f"steady-state LEC evaluation speedup {cold / steady:.2f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )


def test_cached_estimates_bitwise_identical(setup):
    """Engine-served sampling estimates must equal the cold reference
    exactly — not approximately — at every operator of every candidate."""
    db, units, samples, queries = setup
    predictor = UncertaintyPredictor(units)
    engine = SamplingEngine(max_bytes=ENGINE_BYTES)
    optimizer = Optimizer(db)
    compared = 0
    for sql in queries:
        planned = optimizer.plan_sql(sql)
        reference = predictor.prepare(planned, samples).estimate
        predictor.prepare(planned, samples, engine=engine)  # warm the engine
        served = predictor.prepare(planned, samples, engine=engine).estimate
        for op_id, ref in reference.per_node.items():
            hot = served.per_node[op_id]
            assert ref.mean == hot.mean, (sql, op_id)
            assert ref.variance == hot.variance, (sql, op_id)
            assert ref.var_components == hot.var_components, (sql, op_id)
            assert ref.sample_sizes == hot.sample_sizes, (sql, op_id)
            compared += 1
        assert reference.sample_run_counts == served.sample_run_counts, sql
    assert engine.stats.hits > 0
    print(f"\n{compared} operator estimates bitwise identical (cold vs cached)")


def _dashboard_batch(rng) -> list[str]:
    """Distinct metric queries over shared TPC-H template bases."""
    bases = []
    for number in (3, 5, 10):
        template = next(t for t in TPCH_TEMPLATES if t.number == number)
        bases.append((template.tables, template.where(rng)))
    return [
        f"SELECT {key}, {aggregate} FROM {tables} WHERE {where} GROUP BY {key}"
        for tables, where in bases
        for key, aggregate in DASHBOARD_METRICS
    ]


def test_dashboard_batch_shares_subplans(setup, benchmark):
    db, units, _, _ = setup
    batch = _dashboard_batch(ensure_rng(21))

    def serve(engine_bytes):
        service = PredictionService(
            db,
            units,
            sampling_ratio=SAMPLING_RATIO,
            seed=1,
            sampling_engine_bytes=engine_bytes,
        )
        started = time.perf_counter()
        result = service.predict_batch(batch)
        return time.perf_counter() - started, result, service

    def study():
        off, result_off, _ = serve(0)
        off = min(off, serve(0)[0])
        on, result_on, service = serve(ENGINE_BYTES)
        return off, on, result_off, result_on, service

    off, on, result_off, result_on, service = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    report = service.report()
    print("\n## Dashboard batch (shared template bases, distinct metrics)")
    print(render_table(
        ["engine", "seconds", "q/s", "sampling hit rate"],
        [
            ["off", f"{off:.3f}", f"{len(batch) / off:.1f}", "-"],
            [
                "on",
                f"{on:.3f}",
                f"{len(batch) / on:.1f}",
                report.sampling_cache.describe(),
            ],
        ],
    ))
    print(f"speedup {off / on:.2f}x over {len(batch)} distinct queries")
    # Every plan is distinct, so the prepared cache never hits; any win
    # is the engine's. The floor is deliberately conservative.
    assert report.stats.prepare_cache_hits == 0
    assert off / on >= 1.3
    for a, b in zip(result_off, result_on):
        assert a.result().mean == b.result().mean
        assert a.result().std == b.result().std
