"""Uncertainty-aware scheduling under overload: misses, fairness, parity.

The claim the scheduler tier (``docs/scheduling.md``) exists to check:
when demand exceeds capacity, *knowing the predicted cost distribution
of every queued request* lets the serving tier hold tight latency
budgets that blind FIFO admission cannot — without changing a single
served byte.

One warmed session, one seeded two-tenant closed-loop schedule at ~2x
the admission capacity (4 serial clients against 2 slots): a
``dash`` tenant replaying a small template pool under a tight latency
budget next to an ``adhoc`` tenant issuing fresh instantiations under a
loose one. Three replays of the identical schedule, one per admission
policy, plus a deterministic queueing simulation:

* **fifo** — the stock :class:`~repro.serving.BoundedInFlight` gate via
  :func:`~repro.serving.build_admission` (pinning the factory default).
  ``fifo_bitwise_identical`` hard-floors that every response served
  through the gate equals a direct idle serve of the same request —
  admission never touches payloads.
* **edf-slack** / **budget-fair** — the deferring
  :class:`~repro.serving.SchedulingAdmission` over the same session.
  ``edf_deadline_miss_improves`` hard-floors that deadline scheduling
  never misses more budgets than FIFO admission *and* strictly beats it
  in the deterministic overload simulation below;
  ``budget_fair_all_served`` hard-floors that deficit-round-robin
  serves both tenants completely (no refusals, no timeouts) where FIFO
  sheds load.
* **simulation** — a single-server queueing sim over the schedule's
  *real predicted* ``(mean, std)`` costs with arrivals compressed to 2x
  the predicted service rate, dispatched through the actual policy
  objects. Deterministic given the seeds (predictions are bitwise
  reproducible), so the FIFO-vs-EDF miss counts are pinnable numbers,
  not timing luck.
"""

from repro.api import Session, SessionConfig
from repro.api.wire import PredictRequest
from repro.benchreport import Metric, register
from repro.replay import (
    ClosedLoop,
    ReplayReport,
    ReplayRunner,
    WireAppTarget,
    build_schedule,
)
from repro.replay.mix import MixComponent, WorkloadMix
from repro.scheduler import (
    CostEstimate,
    EdfSlackPolicy,
    FifoPolicy,
    PredictedCostQueue,
    QueueEntry,
    make_policy,
)
from repro.serving import (
    AdmissionGate,
    BoundedInFlight,
    SchedulingAdmission,
    build_admission,
)
from repro.serving.app import SessionApp

SETUP_CONFIG = SessionConfig(
    scale_factor=0.01,
    db_seed=11,
    calibration_seed=0,
    calibration_repetitions=6,
    sampling_ratio=0.05,
    sampling_seed=1,
)
SCHEDULE_SEED = 31
CLIENTS = 4
CAPACITY = 2

#: Two tenants with distinct SLOs: recurring dashboard lookups under a
#: tight budget vs always-fresh ad-hoc analytics under a loose one.
SLA_MIX = WorkloadMix(
    "sla-tenants",
    (
        MixComponent(
            "tpch", weight=0.6, pool_size=4, tenant="dash", deadline_ms=250
        ),
        MixComponent("tpch", weight=0.4, tenant="adhoc", deadline_ms=2000),
    ),
)

#: Simulated latency budgets as multiples of each job's own predicted
#: mean. The dash budget tolerates waiting behind a few other dash
#: queries but not behind one heavy ad-hoc query; adhoc books an order
#: of magnitude more. Tighter dash budgets make *every* dash job
#: unsavable under sustained overload and EDF degenerates to FIFO (or
#: worse — it burns capacity on doomed jobs), which is exactly the
#: regime boundary the factors are chosen to stay clear of.
SIM_BUDGET_FACTORS = {"dash": 6.0, "adhoc": 60.0}


def _scheduling_policy(name: str, session: Session) -> SchedulingAdmission:
    return SchedulingAdmission(
        make_policy(name),
        estimator=session.estimate,
        capacity=CAPACITY,
        max_queue=64,
        queue_timeout_seconds=30.0,
    )


def _matches_direct(run, session: Session) -> bool:
    """Every gated response bitwise-equals a direct idle serve."""
    by_index = {request.index: request for request in run.schedule.requests}
    for observation in run.succeeded:
        request = by_index[observation.index]
        direct = session.predict(
            PredictRequest(
                sql=request.sql,
                variants=request.variants,
                mpls=request.mpls,
                confidences=request.confidences,
                tenant=request.tenant,
            )
        )
        if direct.results != observation.response.results:
            return False
    return True


def _sim_jobs(schedule, session: Session):
    """(arrival, deadline, mean, std) per request — all predicted values.

    Service demands are the engine's own predicted means for the
    scheduled SQL; arrivals are evenly spaced at **half** the aggregate
    predicted service time (a deterministic 2x overload of a single
    server); each job's latency budget scales its own predicted mean by
    its tenant's factor.
    """
    estimates = {
        request.sql: session.estimate(request.sql)
        for request in schedule.requests
    }
    total_mean = sum(mean for mean, _ in estimates.values())
    spacing = total_mean / (2 * len(schedule.requests))
    jobs = []
    for position, request in enumerate(schedule.requests):
        mean, std = estimates[request.sql]
        factor = SIM_BUDGET_FACTORS[request.tenant]
        jobs.append((position * spacing, factor * mean, mean, std))
    return jobs


def _simulate_misses(policy, jobs) -> int:
    """Deadline misses of a single-server queue dispatched by ``policy``."""
    queue = PredictedCostQueue()
    pending = iter(jobs)
    upcoming = next(pending, None)
    server_free_at = 0.0
    misses = 0
    while upcoming is not None or queue.depth():
        if queue.depth() == 0:
            server_free_at = max(server_free_at, upcoming[0])
        while upcoming is not None and upcoming[0] <= server_free_at:
            arrival, deadline, mean, std = upcoming
            queue.push(
                QueueEntry(
                    arrival_seconds=arrival,
                    tenant="sim",
                    deadline_seconds=deadline,
                    priority=0,
                    estimate=CostEstimate(mean=mean, std=std),
                )
            )
            upcoming = next(pending, None)
        entry = queue.pop_next(policy)
        start = max(server_free_at, entry.arrival_seconds)
        finish = start + entry.estimate.mean
        if finish > entry.absolute_deadline():
            misses += 1
        server_free_at = finish
    return misses


@register(
    "scheduling_overload",
    tags=("scheduler", "serving", "replay", "throughput"),
)
def scenario(ctx):
    """Two-tenant closed loop at 2x capacity: fifo vs edf-slack vs budget-fair."""
    requests_per_client = ctx.pick(quick=6, full=12)
    session = Session(SETUP_CONFIG)
    schedule = build_schedule(
        SLA_MIX,
        session.database,
        ClosedLoop(
            clients=CLIENTS, requests_per_client=requests_per_client
        ),
        seed=SCHEDULE_SEED,
    )
    # Warm every distinct query once so all three measured replays see
    # identical hot caches and the comparison isolates admission policy.
    for sql in sorted({request.sql for request in schedule.requests}):
        session.predict(sql)

    app = SessionApp(session)
    fifo_gate = build_admission(session, CAPACITY)
    policies = {
        "fifo": fifo_gate,
        "edf": _scheduling_policy("edf-slack", session),
        "budget": _scheduling_policy("budget-fair", session),
    }
    reports: dict[str, ReplayReport] = {}
    runs = {}
    for name, policy in policies.items():
        runner = ReplayRunner(WireAppTarget(AdmissionGate(app, policy)))
        runs[name] = runner.run(schedule)
        reports[name] = ReplayReport.from_run(runs[name])

    fifo_bitwise = (
        type(fifo_gate) is BoundedInFlight
        and _matches_direct(runs["fifo"], session)
    )
    budget_report = reports["budget"]
    budget_all_served = (
        budget_report.requests_failed == 0
        and len(budget_report.tenants) == 2
        and all(t.error_rate == 0.0 for t in budget_report.tenants)
    )

    jobs = _sim_jobs(schedule, session)
    sim_fifo = _simulate_misses(FifoPolicy(), jobs)
    sim_edf = _simulate_misses(EdfSlackPolicy(), jobs)
    miss_improves = (
        sim_edf < sim_fifo
        and reports["edf"].deadline_miss_rate
        <= reports["fifo"].deadline_miss_rate
    )

    edf_stats = policies["edf"].scheduler_stats()
    return [
        Metric(
            "fifo_replay_seconds",
            reports["fifo"].wall_seconds,
            kind="timing",
            unit="s",
        ),
        Metric(
            "edf_replay_seconds",
            reports["edf"].wall_seconds,
            kind="timing",
            unit="s",
        ),
        Metric(
            "budget_replay_seconds",
            reports["budget"].wall_seconds,
            kind="timing",
            unit="s",
        ),
        Metric("fifo_deadline_miss_rate", reports["fifo"].deadline_miss_rate),
        Metric("edf_deadline_miss_rate", reports["edf"].deadline_miss_rate),
        Metric(
            "budget_deadline_miss_rate",
            reports["budget"].deadline_miss_rate,
        ),
        Metric("sim_fifo_misses", float(sim_fifo)),
        Metric("sim_edf_misses", float(sim_edf)),
        Metric(
            "edf_deadline_miss_improves",
            1.0 if miss_improves else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "fifo_bitwise_identical",
            1.0 if fifo_bitwise else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "budget_fair_all_served",
            1.0 if budget_all_served else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        # How often the deferring gate actually queued under 2x load —
        # a timing-dependent gauge (thread overlap decides), so no
        # floor; the simulation above pins the queue machinery
        # deterministically.
        Metric(
            "edf_dispatched_total", float(edf_stats.dispatched_total)
        ),
        Metric("edf_timeouts_total", float(edf_stats.timeouts_total)),
    ]


def test_simulation_edf_beats_fifo_under_overload():
    """Synthetic sanity: tight-budget cheap jobs jump a *queued* heavy job.

    While one heavy job runs, another heavy job (loose budget) and two
    cheap jobs (budgets that survive waiting behind each other but not
    behind a heavy) queue up. FIFO runs the queued heavy first and
    blows both cheap budgets; EDF reorders and misses nothing.
    """
    jobs = [
        (0.00, 10.0, 1.0, 0.0),  # heavy, running until t=1.0
        (0.01, 10.0, 1.0, 0.0),  # heavy, queued, loose budget
        (0.02, 1.25, 0.05, 0.01),  # cheap, due t=1.27
        (0.03, 1.25, 0.05, 0.01),  # cheap, due t=1.28
        (0.04, 10.0, 1.0, 0.0),
    ]
    fifo = _simulate_misses(FifoPolicy(), jobs)
    edf = _simulate_misses(EdfSlackPolicy(), jobs)
    assert edf < fifo
