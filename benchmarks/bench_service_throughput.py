"""Batch serving throughput: PredictionService vs the naive loop.

The service claim: batching keeps the paper's "uncertainty at
negligible overhead" promise under serving load. The naive baseline is
the straightforward per-query loop over the one-shot predictor API:
one optimizer and one sample database, each query planned once, then
``predict()`` (which runs its own sampling + fitting pass and the
scalar O(T^2) assembly) called per (variant, multiprogramming level)
combination — no sharing of the prepare pass across the fan-out and no
reuse across repeated queries. The batch path plans and prepares each
distinct query once, shares the prepared artifacts across the fan-out
and across repeats, and assembles with the vectorized matrix path.

The second regime is the warm recurring-batch path: one warmed service
serving the same batch through the scalar per-query loop vs the SoA
cross-query kernels (``batch_kernel="soa"``, docs/service.md "Batch
kernels"), including the per-result confidence-interval payload the
serving tier computes per response. ``soa_retained`` (hard floor: the
SoA kernels must stay >= 3x over the scalar loop) and ``soa_bitwise``
(hard floor 1.0: every payload float bit-identical) guard that path.

Also cross-checks the vectorized assembly against the scalar reference
on every plan the experiment lab produces (all benchmarks, all
variants) at 1e-9 relative tolerance.
"""

import struct
import time

import pytest

from repro.benchreport import Metric, register
from repro.core import UncertaintyPredictor, Variant
from repro.core.concurrency import ConcurrentPredictor
from repro.core.predictor import VARIANT_OPTIONS
from repro.core.variance import (
    assemble_distribution_parameters_reference,
)
from repro.datagen import TpchConfig, generate_tpch
from repro.hardware import PROFILES, HardwareSimulator
from repro.calibration import Calibrator
from repro.optimizer import Optimizer
from repro.sampling import SampleDatabase
from repro.service import PredictionService
from repro.util import ensure_rng
from repro.workloads.tpch_templates import TPCH_TEMPLATES

BATCH_SIZE = 50
VARIANTS = tuple(Variant)
MPLS = (1, 2, 4)
SAMPLING_RATIO = 0.05


def _build_serving_setup(batch_size=BATCH_SIZE):
    db = generate_tpch(TpchConfig(scale_factor=0.01, skew_z=0.0, seed=11))
    units = Calibrator(
        HardwareSimulator(PROFILES["PC2"], rng=0), repetitions=6
    ).calibrate()
    rng = ensure_rng(21)
    # A serving-shaped batch: template instantiations with recurring
    # parameter bindings (dashboards re-issue identical queries).
    distinct = [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(batch_size * 7 // 10)
    ]
    repeats = [distinct[int(rng.integers(len(distinct)))] for _ in
               range(batch_size - len(distinct))]
    return db, units, distinct + repeats


@pytest.fixture(scope="module")
def serving_setup():
    return _build_serving_setup()


@register("service_throughput", tags=("service", "throughput"))
def scenario(ctx):
    """Batch service vs the naive per-query loop on a serving batch."""
    db, units, queries = _build_serving_setup(
        batch_size=ctx.pick(quick=20, full=BATCH_SIZE)
    )
    # Best-of-2 on each side (a fresh service per run keeps the batch
    # path cold-cache like the naive loop it is compared against).
    service_seconds, batch = ctx.best_of(
        lambda: PredictionService(
            db, units, sampling_ratio=SAMPLING_RATIO, seed=1
        ).predict_batch(queries, variants=VARIANTS, mpls=MPLS),
        2,
    )
    naive_seconds, naive_means = ctx.best_of(
        lambda: run_naive(db, units, queries), 2
    )

    rel_diff = max(
        abs(prediction.mean - naive_mean) / abs(naive_mean)
        for prediction, naive_mean in zip(batch, naive_means)
    )

    # Warm recurring-batch regime: one warmed service, per-call kernel
    # override. The meter includes the per-result interval payload the
    # serving tier computes per response (the SoA kernel precomputes
    # those bounds in the same array pass); the payload doubles as the
    # bitwise-agreement probe.
    warm = PredictionService(db, units, sampling_ratio=SAMPLING_RATIO, seed=1)
    warm.predict_batch(queries, variants=VARIANTS, mpls=MPLS)
    reps = ctx.pick(quick=3, full=5)
    scalar_seconds, scalar_payload = ctx.best_of(
        lambda: _serve_warm(warm, queries, "scalar"), reps
    )
    soa_seconds, soa_payload = ctx.best_of(
        lambda: _serve_warm(warm, queries, "soa"), reps
    )

    return [
        Metric("batch_seconds", service_seconds, kind="timing", unit="s"),
        Metric("naive_seconds", naive_seconds, kind="timing", unit="s"),
        Metric(
            "batch_speedup", naive_seconds / service_seconds, kind="ratio",
            floor=ctx.pick(quick=2.0, full=3.0),
        ),
        Metric("prepare_hit_rate", float(batch.stats.prepare_hit_rate)),
        Metric("naive_agreement_max_rel_diff", float(rel_diff)),
        Metric("warm_scalar_seconds", scalar_seconds, kind="timing", unit="s"),
        Metric("warm_soa_seconds", soa_seconds, kind="timing", unit="s"),
        Metric(
            "soa_retained", scalar_seconds / soa_seconds, kind="ratio",
            floor=3.0,
        ),
        Metric(
            "soa_bitwise",
            1.0 if soa_payload == scalar_payload else 0.0,
            kind="ratio",
            floor=1.0,
        ),
    ]


CONFIDENCES = (0.5, 0.9, 0.99)


def _serve_warm(service, queries, kernel):
    """One warm serving pass: predict the batch, emit the full payload.

    Returns every served float — means, variances, stds, and both
    bounds of every confidence interval — as exact little-endian bytes,
    so timing and the bitwise probe share one pass.
    """
    batch = service.predict_batch(
        queries,
        variants=VARIANTS,
        mpls=MPLS,
        kernel=kernel,
        confidences=CONFIDENCES if kernel == "soa" else None,
    )
    payload = []
    for prediction in batch:
        for result in prediction.results.values():
            payload.append(struct.pack("<d", result.mean))
            payload.append(struct.pack("<d", result.breakdown.variance))
            payload.append(struct.pack("<d", result.std))
            for confidence in CONFIDENCES:
                low, high = result.confidence_interval(confidence)
                payload.append(struct.pack("<d", low))
                payload.append(struct.pack("<d", high))
    return payload


def run_naive(db, units, queries) -> list[float]:
    """The pre-service loop: one-shot ``predict()`` per combination."""
    means = []
    optimizer = Optimizer(db)
    samples = SampleDatabase(db, sampling_ratio=SAMPLING_RATIO, seed=1)
    concurrent = ConcurrentPredictor(units)
    for sql in queries:
        planned = optimizer.plan_sql(sql)
        for mpl in MPLS:
            predictor = concurrent.predictor_at(mpl)
            for variant in VARIANTS:
                prepared = predictor.prepare(planned, samples)
                breakdown = assemble_distribution_parameters_reference(
                    planned,
                    prepared.estimate,
                    prepared.fitted,
                    predictor.units,
                    VARIANT_OPTIONS[variant],
                )
                if variant is Variant.ALL and mpl == 1:
                    means.append(breakdown.mean)
    return means


def test_batch_service_3x_faster_than_naive_loop(serving_setup):
    db, units, queries = serving_setup
    service = PredictionService(
        db, units, sampling_ratio=SAMPLING_RATIO, seed=1
    )

    started = time.perf_counter()
    batch = service.predict_batch(queries, variants=VARIANTS, mpls=MPLS)
    service_seconds = time.perf_counter() - started

    started = time.perf_counter()
    naive_means = run_naive(db, units, queries)
    naive_seconds = time.perf_counter() - started

    speedup = naive_seconds / service_seconds
    print(
        f"\nbatch={service_seconds:.3f}s naive={naive_seconds:.3f}s "
        f"speedup={speedup:.1f}x hit_rate={batch.stats.prepare_hit_rate:.0%}"
    )
    # Identical sample seed and plans: the two paths must agree.
    for prediction, naive_mean in zip(batch, naive_means):
        assert prediction.mean == pytest.approx(naive_mean, rel=1e-9)
    assert speedup >= 3.0, (
        f"batch path only {speedup:.2f}x faster "
        f"(service {service_seconds:.3f}s, naive {naive_seconds:.3f}s)"
    )


def test_service_throughput(serving_setup, benchmark):
    db, units, queries = serving_setup
    service = PredictionService(
        db, units, sampling_ratio=SAMPLING_RATIO, seed=1
    )
    batch = benchmark(
        lambda: service.predict_batch(queries, variants=VARIANTS, mpls=MPLS)
    )
    assert len(batch) == BATCH_SIZE


def test_vectorized_matches_scalar_on_all_lab_plans(small_lab):
    """1e-9 relative agreement on every plan of the experiment lab."""
    units = small_lab.units("PC1")
    checked = 0
    for db_label in ("uniform-small", "skewed-small"):
        samples = small_lab.sample_db(db_label, SAMPLING_RATIO)
        for bench_name in ("MICRO", "SELJOIN", "TPCH"):
            executed = small_lab.executed_queries(db_label, bench_name)
            predictor = UncertaintyPredictor(units)
            for query in executed:
                prepared = predictor.prepare(query.planned, samples)
                assembler = prepared.assembler(query.planned)
                for variant, options in VARIANT_OPTIONS.items():
                    reference = assemble_distribution_parameters_reference(
                        query.planned,
                        prepared.estimate,
                        prepared.fitted,
                        units,
                        options,
                    )
                    vectorized = assembler.assemble(units, options)
                    assert vectorized.mean == pytest.approx(
                        reference.mean, rel=1e-9
                    ), (db_label, bench_name, variant)
                    assert vectorized.variance == pytest.approx(
                        reference.variance, rel=1e-9, abs=1e-18
                    ), (db_label, bench_name, variant)
                    checked += 1
    assert checked > 0
