"""Pre-fork pool scaling: retained throughput from cache-shard capacity.

The serving-tier claim (``docs/serving.md``): ``repro serve --workers N``
scales *retained throughput* even on a single core, because the win is
cache **capacity**, not CPU. Each worker owns a private session — a
private prepared cache and sampling-engine budget — and the consistent-
hash router pins every plan signature to one shard. A dashboard-style
working set that overflows one worker's caches (every request re-runs
Algorithm 1 sampling) partitions across four workers into shards that
fit (every request replays cached artifacts).

The scenario makes that concrete. One session whose cache budgets are
deliberately smaller than the working set: 24 distinct queries against
a 12-entry prepared cache and a 64 MiB sampling-engine budget (the full
working set's sample intermediates need ~114 MiB at this scale, a
quarter-shard ~28 MiB). The same seeded closed-loop schedule is then
replayed over HTTP against pools of 1, 2 and 4 workers — forked from
the *same* prebuilt session, so the pools differ only in sharding.

Guarded metrics:

* ``workers2_retained`` / ``workers4_retained`` — measured-pass
  throughput over the single-worker baseline, hard-floored at 1.0 and
  2.5: four shards must buy back at least 2.5x even though forwarded
  requests pay an extra local HTTP hop.
* ``error_free`` — no replayed request may fail in any pass;
* ``stats_consistent`` — the pool-wide ``/v1/stats`` aggregate must
  count every request exactly once (routing forwards must not double-
  serve or drop);
* ``clean_drain`` — every worker of every pool exits 0 after SIGTERM;
* ``http_503_retry_after_present`` — an over-capacity refusal carries
  the machine-readable ``Retry-After: 1`` hint all the way into
  :class:`~repro.api.client.ApiError.retry_after`.
"""

import threading

import pytest

from repro.api import HttpClient, Session, SessionConfig, build_server
from repro.api.client import ApiError
from repro.benchreport import Metric, register
from repro.replay import (
    ClosedLoop,
    HttpTarget,
    MixComponent,
    ReplayRunner,
    WorkloadMix,
    build_schedule,
)
from repro.serving import WorkerPool

SETUP_CONFIG = SessionConfig(
    scale_factor=0.05,
    db_seed=11,
    calibration_seed=0,
    calibration_repetitions=6,
    sampling_ratio=0.2,
    sampling_seed=1,
    # Both budgets hold a quarter-shard of the working set, not all of
    # it — the capacity gap the worker pool exists to close.
    prepared_cache_size=12,
    sampling_engine_bytes=64 * 2**20,
)
SCHEDULE_SEED = 23
CLIENTS = 2
WORKER_COUNTS = (1, 2, 4)
MAX_IN_FLIGHT = 8
PROBE_SQL = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"

#: The dashboard blend: the ``mixed`` preset's weights with bounded
#: parameter pools, so the schedule cycles a fixed 24-query working set
#: (12 TPC-H parameterizations + 6 scans + 6 joins) instead of drawing
#: always-fresh instantiations that no cache could ever hold.
SCALE_MIX = WorkloadMix(
    "serving-scale",
    (
        MixComponent("tpch", weight=0.5, pool_size=12),
        MixComponent("micro-scan", weight=0.25, pool_size=6),
        MixComponent("micro-join", weight=0.25, pool_size=6),
    ),
)


def _build_setup(requests_per_client: int, config: SessionConfig = SETUP_CONFIG):
    """(session, closed-loop schedule) shared by every pool size."""
    session = Session(config)
    schedule = build_schedule(
        SCALE_MIX,
        session.database,
        ClosedLoop(clients=CLIENTS, requests_per_client=requests_per_client),
        seed=SCHEDULE_SEED,
    )
    return session, schedule


def _retry_after_surfaces(session: Session) -> bool:
    """One refused request must carry ``Retry-After`` into the client.

    Boots the in-process single-worker server, drains its admission
    slots directly, and checks the resulting 503 is the structured
    ``over-capacity`` error with the exact 1-second hint the pre-fork
    server has always sent.
    """
    server = build_server(session, port=0, max_in_flight=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    admitted = 0
    try:
        for _ in range(2):
            if not server.admit():
                return False
            admitted += 1
        try:
            HttpClient(server.url).predict(PROBE_SQL)
        except ApiError as error:
            return (
                error.status == 503
                and error.code == "over-capacity"
                and error.retry_after == 1.0
            )
        return False
    finally:
        for _ in range(admitted):
            server.release()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@register("serving_scale", tags=("serving", "http", "throughput", "scale"))
def scenario(ctx):
    """Worker-pool scaling: sharded caches must retain >= 2.5x at 4 workers."""
    requests_per_client = ctx.pick(quick=25, full=40)
    repetitions = ctx.pick(quick=1, full=2)
    session, schedule = _build_setup(requests_per_client)

    seconds: dict[int, float] = {}
    failures = 0
    stats_consistent = True
    clean_drain = True
    for workers in WORKER_COUNTS:
        with WorkerPool(
            workers, session=session, max_in_flight=MAX_IN_FLIGHT
        ) as pool:
            runner = ReplayRunner(HttpTarget(HttpClient(pool.url)))
            runs = [runner.run(schedule)]  # warmup: populate the shards

            def measured(runner=runner, runs=runs):
                run = runner.run(schedule)
                runs.append(run)
                return run

            seconds[workers], _ = ctx.best_of(measured, repetitions)
            failures += sum(len(run.failed) for run in runs)
            # Every pass serves each request exactly once pool-wide:
            # forwarded requests must neither double-count nor vanish.
            aggregate = HttpClient(pool.url).stats()
            expected = len(runs) * len(schedule.requests)
            if aggregate.stats.queries_served != expected:
                stats_consistent = False
        if pool.exit_codes != [0] * workers:
            clean_drain = False

    retry_after_seen = _retry_after_surfaces(session)
    baseline = seconds[1]
    return [
        Metric("workers1_seconds", seconds[1], kind="timing", unit="s"),
        Metric("workers2_seconds", seconds[2], kind="timing", unit="s"),
        Metric("workers4_seconds", seconds[4], kind="timing", unit="s"),
        Metric(
            "workers2_retained",
            baseline / seconds[2],
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "workers4_retained",
            baseline / seconds[4],
            kind="ratio",
            floor=2.5,
        ),
        Metric(
            "error_free", 1.0 if failures == 0 else 0.0, kind="ratio", floor=1.0
        ),
        Metric(
            "stats_consistent",
            1.0 if stats_consistent else 0.0,
            kind="ratio",
            floor=1.0,
        ),
        Metric(
            "clean_drain", 1.0 if clean_drain else 0.0, kind="ratio", floor=1.0
        ),
        Metric(
            "http_503_retry_after_present",
            1.0 if retry_after_seen else 0.0,
            kind="ratio",
            floor=1.0,
        ),
    ]


@pytest.fixture(scope="module")
def scale_setup():
    # The cheap variant of the scenario config: the mix/schedule
    # properties under test do not depend on database scale.
    config = SETUP_CONFIG.replace(scale_factor=0.01, sampling_ratio=0.05)
    return _build_setup(requests_per_client=20, config=config)


def test_scale_mix_working_set_is_bounded_and_deterministic(scale_setup):
    session, schedule = scale_setup
    rebuilt = build_schedule(
        SCALE_MIX,
        session.database,
        ClosedLoop(clients=CLIENTS, requests_per_client=20),
        seed=SCHEDULE_SEED,
    )
    assert schedule.fingerprint() == rebuilt.fingerprint()
    distinct = {request.sql for request in schedule.requests}
    # The scenario's premise: the working set overflows one worker's
    # prepared cache but a quarter of it fits comfortably.
    assert len(distinct) <= 24
    assert len(distinct) > SETUP_CONFIG.prepared_cache_size


def test_refused_request_carries_retry_after_hint(scale_setup):
    session, _ = scale_setup
    assert _retry_after_surfaces(session)
