"""Table 4 / Figure 2: rs (rp) of the benchmark queries over the grid.

Regenerates the paper's correlation grid: for every database flavour,
benchmark, machine, and sampling ratio, the Spearman (Pearson)
correlation between predicted standard deviations and actual
prediction errors. The paper reports rs mostly above 0.7; the bench
asserts that shape.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS, MACHINES, SAMPLING_RATIOS


@register("table4_correlations", tags=("table", "fidelity"))
def scenario(ctx):
    """rs over the full grid: median and fraction above 0.5."""
    _, all_rs = _table4_rows(ctx.lab)
    return [
        Metric("rs_median", float(np.median(all_rs))),
        Metric("rs_frac_gt_05", float((all_rs > 0.5).mean())),
        Metric("rs_mean", float(all_rs.mean())),
        Metric("cells", float(len(all_rs))),
    ]


def _table4_rows(lab):
    all_rs = []
    sections = {}
    for db_label in lab.databases:
        rows = []
        for sr in SAMPLING_RATIOS:
            row = [sr]
            for benchmark in BENCHMARKS:
                for machine in MACHINES:
                    cell = lab.run_cell(db_label, benchmark, machine, sr)
                    row.append(f"{cell.rs:.4f} ({cell.rp:.4f})")
                    all_rs.append(cell.rs)
            rows.append(row)
        sections[db_label] = rows
    return sections, np.asarray(all_rs)


def test_table4_correlation_grid(lab, benchmark):
    sections, all_rs = benchmark.pedantic(
        _table4_rows, args=(lab,), rounds=1, iterations=1
    )
    headers = ["SR"] + [f"{b} {m}" for b in BENCHMARKS for m in MACHINES]
    print("\n## Table 4 / Figure 2 — rs (rp)")
    for db_label, rows in sections.items():
        print(f"\n### {db_label}")
        print(render_table(headers, rows))
    # Paper shape: strong positive correlation for most cells.
    assert np.median(all_rs) > 0.7
    assert (all_rs > 0.5).mean() > 0.8
