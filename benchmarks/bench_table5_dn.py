"""Table 5 / Figure 4: the distributional distance Dn over the grid.

The paper reports Dn mostly below 0.3 (majority below 0.2): the
predicted error likelihoods Pr(alpha) track the observed Prn(alpha).
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS, MACHINES, SAMPLING_RATIOS


@register("table5_dn", tags=("table", "fidelity"))
def scenario(ctx):
    """Distributional distance Dn over the grid: median, spread."""
    _, all_dn = _table5_rows(ctx.lab)
    return [
        Metric("dn_median", float(np.median(all_dn))),
        Metric("dn_frac_lt_04", float((all_dn < 0.4).mean())),
        Metric("dn_mean", float(all_dn.mean())),
    ]


def _table5_rows(lab):
    sections = {}
    all_dn = []
    for db_label in lab.databases:
        rows = []
        for sr in SAMPLING_RATIOS:
            row = [sr]
            for benchmark in BENCHMARKS:
                for machine in MACHINES:
                    cell = lab.run_cell(db_label, benchmark, machine, sr)
                    row.append(cell.dn)
                    all_dn.append(cell.dn)
            rows.append(row)
        sections[db_label] = rows
    return sections, np.asarray(all_dn)


def test_table5_dn_grid(lab, benchmark):
    sections, all_dn = benchmark.pedantic(
        _table5_rows, args=(lab,), rounds=1, iterations=1
    )
    headers = ["SR"] + [f"{b} {m}" for b in BENCHMARKS for m in MACHINES]
    print("\n## Table 5 / Figure 4 — Dn")
    for db_label, rows in sections.items():
        print(f"\n### {db_label}")
        print(render_table(headers, rows))
    # Paper shape: Dn mostly below 0.3.
    assert np.median(all_dn) < 0.3
    assert (all_dn < 0.4).mean() > 0.75
