"""Table 6: correlation between estimated and actual selectivity errors.

Per selective operator: the estimated standard deviation of the
selectivity estimate vs the actual estimation error. The paper finds
weaker correlations than Table 4 (errors are often tiny), which
motivates Table 9's restriction to large-error operators.
"""


import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS
from repro.mathstats import pearson, spearman

RATIOS = (0.01, 0.05, 0.1, 0.2)


@register("table6_sel_error_corr", tags=("table", "selectivity"))
def scenario(ctx):
    """Correlation of estimated vs actual selectivity errors."""
    lab = ctx.small_lab
    all_rs = []
    for db_label in lab.databases:
        for sr in RATIOS:
            for benchmark_name in BENCHMARKS:
                records = lab.selectivity_records(db_label, benchmark_name, sr)
                stds = [r.estimated_std for r in records]
                errs = [r.error for r in records]
                value = spearman(stds, errs)
                if np.isfinite(value):
                    all_rs.append(value)
    return [
        Metric("rs_mean", float(np.mean(all_rs))),
        Metric("rs_median", float(np.median(all_rs))),
        Metric("cells", float(len(all_rs))),
    ]


def _table6(lab):
    sections = {}
    for db_label in lab.databases:
        rows = []
        for sr in RATIOS:
            row = [sr]
            for benchmark_name in BENCHMARKS:
                records = lab.selectivity_records(db_label, benchmark_name, sr)
                stds = [r.estimated_std for r in records]
                errs = [r.error for r in records]
                row.append(f"{spearman(stds, errs):.4f} ({pearson(stds, errs):.4f})")
            rows.append(row)
        sections[db_label] = rows
    return sections


def test_table6_selectivity_error_correlations(small_lab, benchmark):
    sections = benchmark.pedantic(_table6, args=(small_lab,), rounds=1, iterations=1)
    headers = ["SR"] + list(BENCHMARKS)
    print("\n## Table 6 — rs (rp) of estimated vs actual selectivity errors")
    for db_label, rows in sections.items():
        print(f"\n### {db_label}")
        print(render_table(headers, rows))
    assert sections  # grid produced
