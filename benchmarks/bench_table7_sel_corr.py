"""Table 7 / Figure 12: estimated vs actual selectivities.

The paper's Table 7 shows near-perfect correlation (rs and rp close to
1): the sampling estimator nails the selectivities themselves. The
bench regenerates the grid and the Figure 12 scatter data.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS
from repro.mathstats import pearson, spearman

RATIOS = (0.01, 0.05, 0.1, 0.2)


@register("table7_sel_corr", tags=("table", "selectivity"))
def scenario(ctx):
    """Estimated vs actual selectivities hug the diagonal."""
    lab = ctx.small_lab
    all_rs = []
    for db_label in lab.databases:
        for sr in RATIOS:
            for benchmark_name in BENCHMARKS:
                records = lab.selectivity_records(db_label, benchmark_name, sr)
                value = spearman(
                    [r.estimated for r in records], [r.actual for r in records]
                )
                if np.isfinite(value):
                    all_rs.append(value)
    records = lab.selectivity_records("uniform-small", "MICRO", 0.1)
    micro_rp = pearson(
        [r.estimated for r in records], [r.actual for r in records]
    )
    return [
        Metric("rs_mean", float(np.mean(all_rs))),
        Metric("micro_pearson_sr01", float(micro_rp)),
    ]


def _table7(lab):
    sections = {}
    scatter = None
    for db_label in lab.databases:
        rows = []
        for sr in RATIOS:
            row = [sr]
            for benchmark_name in BENCHMARKS:
                records = lab.selectivity_records(db_label, benchmark_name, sr)
                est = [r.estimated for r in records]
                act = [r.actual for r in records]
                row.append(f"{spearman(est, act):.4f} ({pearson(est, act):.4f})")
                if db_label == "skewed-small" and benchmark_name == "MICRO" and sr == 0.05:
                    scatter = list(zip(est, act))
            rows.append(row)
        sections[db_label] = rows
    return sections, scatter


def test_table7_selectivity_correlations(small_lab, benchmark):
    sections, scatter = benchmark.pedantic(
        _table7, args=(small_lab,), rounds=1, iterations=1
    )
    headers = ["SR"] + list(BENCHMARKS)
    print("\n## Table 7 / Figure 12 — rs (rp) of estimated vs actual selectivities")
    for db_label, rows in sections.items():
        print(f"\n### {db_label}")
        print(render_table(headers, rows))
    if scatter:
        print("\n### Figure 12 scatter (MICRO, skewed-small, SR=0.05)")
        print(render_table(
            ["estimated", "actual"],
            [[f"{e:.4g}", f"{a:.4g}"] for e, a in scatter],
        ))
        from repro.experiments.plots import ascii_scatter

        print(ascii_scatter(
            [e for e, _ in scatter],
            [a for _, a in scatter],
            x_label="estimated selectivity",
            y_label="actual",
        ))
    # Paper shape: the MICRO estimates hug the diagonal.
    records = small_lab.selectivity_records("uniform-small", "MICRO", 0.1)
    est = np.array([r.estimated for r in records])
    act = np.array([r.actual for r in records])
    assert pearson(est, act) > 0.95
