"""Table 8: mean relative errors of the selectivity estimates.

The paper reports relative errors usually below 20% at SR >= 0.05,
shrinking as the sampling ratio grows (strong consistency).
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS

RATIOS = (0.01, 0.05, 0.1, 0.2)


@register("table8_rel_errors", tags=("table", "selectivity"))
def scenario(ctx):
    """Mean relative selectivity errors shrink as SR grows."""
    sections = _table8(ctx.small_lab)
    metrics = []
    for db_label, rows in sections.items():
        micro = [row[1] for row in rows]
        slug = db_label.replace("-", "_")
        metrics.append(Metric(f"micro_err_sr_min_{slug}", float(micro[0])))
        metrics.append(Metric(f"micro_err_sr_max_{slug}", float(micro[-1])))
        metrics.append(Metric(
            f"micro_shrink_{slug}",
            float(micro[-1] / micro[0]) if micro[0] else float("nan"),
        ))
    return metrics


def _table8(lab):
    sections = {}
    for db_label in lab.databases:
        rows = []
        for sr in RATIOS:
            row = [sr]
            for benchmark_name in BENCHMARKS:
                records = lab.selectivity_records(db_label, benchmark_name, sr)
                rels = [
                    r.relative_error
                    for r in records
                    if r.actual > 0 and not np.isnan(r.relative_error)
                ]
                row.append(float(np.mean(rels)) if rels else float("nan"))
            rows.append(row)
        sections[db_label] = rows
    return sections


def test_table8_relative_errors(small_lab, benchmark):
    sections = benchmark.pedantic(_table8, args=(small_lab,), rounds=1, iterations=1)
    headers = ["SR"] + list(BENCHMARKS)
    print("\n## Table 8 — mean relative selectivity errors")
    for db_label, rows in sections.items():
        print(f"\n### {db_label}")
        print(render_table(headers, rows))
    # Strong consistency: MICRO errors shrink as SR grows.
    for rows in sections.values():
        micro = [row[1] for row in rows]
        assert micro[-1] < micro[0]
