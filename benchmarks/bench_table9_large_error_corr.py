"""Table 9: error correlations restricted to relative errors > 0.2.

The paper's explanation for Table 6's weak spots: when the estimation
errors are actually large, the estimated standard deviations do track
them. We regenerate the restricted-population correlations.
"""

import numpy as np

from repro.benchreport import Metric, register
from repro.experiments.reporting import render_table
from repro.experiments.settings import BENCHMARKS
from repro.mathstats import pearson, spearman

RATIOS = (0.01, 0.05, 0.1, 0.2)


@register("table9_large_error_corr", tags=("table", "selectivity"))
def scenario(ctx):
    """Correlations restricted to relative errors > 0.2."""
    _, restricted_rs = _table9(ctx.small_lab)
    finite = [value for value in restricted_rs if np.isfinite(value)]
    return [
        Metric("restricted_rs_median", float(np.median(finite))),
        Metric("restricted_cells", float(len(finite))),
    ]


def _table9(lab):
    sections = {}
    restricted_rs = []
    for db_label in lab.databases:
        rows = []
        for sr in RATIOS:
            row = [sr]
            for benchmark_name in BENCHMARKS:
                records = [
                    r
                    for r in lab.selectivity_records(db_label, benchmark_name, sr)
                    if r.actual > 0 and r.relative_error > 0.2
                ]
                if len(records) < 3:
                    row.append("N/A")
                    continue
                stds = [r.estimated_std for r in records]
                errs = [r.error for r in records]
                rs = spearman(stds, errs)
                row.append(f"{rs:.4f} ({pearson(stds, errs):.4f})")
                restricted_rs.append(rs)
            rows.append(row)
        sections[db_label] = rows
    return sections, restricted_rs


def test_table9_large_error_correlations(small_lab, benchmark):
    sections, restricted_rs = benchmark.pedantic(
        _table9, args=(small_lab,), rounds=1, iterations=1
    )
    headers = ["SR"] + list(BENCHMARKS)
    print("\n## Table 9 — rs (rp) restricted to relative errors > 0.2")
    for db_label, rows in sections.items():
        print(f"\n### {db_label}")
        print(render_table(headers, rows))
    if restricted_rs:
        # Paper shape: restricted correlations are mostly positive.
        assert np.median(restricted_rs) > 0.0
