"""Shared benchmark fixtures.

One :class:`~repro.experiments.ExperimentLab` over the full database
grid (uniform/skewed x small/large) is built once per session and
shared by every bench. Query counts are reduced relative to the full
`run_all` driver so the whole suite finishes in minutes; the paper
shape (who wins, by what magnitude) is preserved.
"""

import pytest

from repro.datagen import generate_tpch
from repro.experiments import DATABASE_CONFIGS, ExperimentLab

BENCH_QUERY_COUNTS = {"MICRO": 16, "SELJOIN": 10, "TPCH": 10}


@pytest.fixture(scope="session")
def lab():
    databases = {
        label: generate_tpch(config) for label, config in DATABASE_CONFIGS.items()
    }
    return ExperimentLab(
        databases=databases,
        seed=0,
        query_counts=BENCH_QUERY_COUNTS,
        calibration_repetitions=8,
    )


@pytest.fixture(scope="session")
def small_lab():
    """Small-database-only lab for benches that sweep many settings."""
    labels = ["uniform-small", "skewed-small"]
    databases = {label: generate_tpch(DATABASE_CONFIGS[label]) for label in labels}
    return ExperimentLab(
        databases=databases,
        seed=0,
        query_counts=BENCH_QUERY_COUNTS,
        calibration_repetitions=8,
    )
