"""Admission control with probabilistic SLAs (Section 6.5.3).

A database-as-a-service gate admits a query only when the predicted
probability of finishing within the SLA is high enough. Point
estimates cannot express that policy; distributions can. The demo
compares both policies on a mixed workload and reports SLA violations.

Run:  python examples/admission_control.py
"""

import numpy as np

from repro import (
    Calibrator,
    Executor,
    HardwareSimulator,
    Optimizer,
    PC1,
    SampleDatabase,
    TpchConfig,
    UncertaintyPredictor,
    generate_tpch,
)
from repro.workloads import seljoin_workload

REQUIRED_CONFIDENCE = 0.9


def main() -> None:
    db = generate_tpch(TpchConfig(scale_factor=0.02, seed=3))
    optimizer = Optimizer(db)
    executor = Executor(db)
    simulator = HardwareSimulator(PC1, rng=1)
    units = Calibrator(simulator).calibrate()
    samples = SampleDatabase(db, sampling_ratio=0.05, seed=4)
    predictor = UncertaintyPredictor(units)

    # Predict the whole batch first; pin the SLA where it bites: just above
    # the median predicted mean, so several queries sit near the boundary.
    queries = seljoin_workload(num_queries=14, seed=9)
    predictions = []
    for sql in queries:
        planned = optimizer.plan_sql(sql)
        predictions.append((planned, predictor.predict(planned, samples)))
    sla = 1.05 * float(np.median([p.mean for _, p in predictions]))

    print(f"SLA: {sla:.3f}s; admit when P(T <= SLA) >= {REQUIRED_CONFIDENCE:.0%}\n")
    header = f"{'query':>6} {'mean':>8} {'std':>8} {'P(<=SLA)':>9} {'point':>7} {'dist':>6} {'actual':>8}"
    print(header)
    print("-" * len(header))

    point_violations = 0
    dist_violations = 0
    point_admits = 0
    dist_admits = 0
    for i, (planned, prediction) in enumerate(predictions):
        p_ok = prediction.distribution.cdf(sla)

        admit_by_point = prediction.mean <= sla
        admit_by_dist = p_ok >= REQUIRED_CONFIDENCE

        actual = simulator.run_repeated(executor.execute(planned).counts)
        print(
            f"Q{i:>5} {prediction.mean:8.3f} {prediction.std:8.3f} {p_ok:9.2%} "
            f"{'yes' if admit_by_point else 'no':>7} "
            f"{'yes' if admit_by_dist else 'no':>6} {actual:8.3f}"
        )
        if admit_by_point:
            point_admits += 1
            point_violations += actual > sla
        if admit_by_dist:
            dist_admits += 1
            dist_violations += actual > sla

    print("\nResults:")
    print(
        f"  point-estimate policy: {point_admits} admitted, "
        f"{point_violations} SLA violations"
    )
    print(
        f"  distribution policy  : {dist_admits} admitted, "
        f"{dist_violations} SLA violations"
    )
    print(
        "\nThe distribution-aware gate declines queries whose mean fits the "
        "SLA but whose uncertainty makes violations likely."
    )


if __name__ == "__main__":
    main()
