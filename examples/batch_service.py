"""Batch serving: many queries, variants, and concurrency levels at once.

Builds a TPC-H database, starts a :class:`repro.PredictionService`, and
serves a 30-query template workload (with the recurring queries a real
dashboard workload has) across two predictor variants and three
multiprogramming levels — sharing one plan/sample/fit pass per distinct
query and assembling every combination with the vectorized path.

Run:  python examples/batch_service.py
"""

from repro import (
    Calibrator,
    HardwareSimulator,
    PC2,
    PredictionService,
    TpchConfig,
    Variant,
    generate_tpch,
)
from repro.util import ensure_rng
from repro.workloads.tpch_templates import TPCH_TEMPLATES

BATCH = 30
VARIANTS = (Variant.ALL, Variant.NO_COV)
MPLS = (1, 2, 4)


def main() -> None:
    print("1. generating TPC-H (scale 0.01, uniform) ...")
    db = generate_tpch(TpchConfig(scale_factor=0.01, seed=1))

    print("2. calibrating cost units on the simulated machine PC2 ...")
    units = Calibrator(HardwareSimulator(PC2, rng=0)).calibrate()

    print("3. building the workload (30 queries, ~1/3 repeats) ...")
    rng = ensure_rng(7)
    distinct = [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(BATCH * 2 // 3)
    ]
    repeats = [
        distinct[int(rng.integers(len(distinct)))]
        for _ in range(BATCH - len(distinct))
    ]
    queries = distinct + repeats

    print("4. serving the batch ...\n")
    service = PredictionService(db, units, sampling_ratio=0.05, seed=2)
    batch = service.predict_batch(queries, variants=VARIANTS, mpls=MPLS)

    print(f"   {'#':>3} {'mean':>9} {'std':>9} {'mean@mpl4':>10}  cache")
    for index, prediction in enumerate(batch):
        unloaded = prediction.result(Variant.ALL, 1)
        loaded = prediction.result(Variant.ALL, 4)
        cache = "hit" if prediction.prepare_was_cached else "miss"
        print(
            f"   {index:>3} {unloaded.mean:>8.3f}s {unloaded.std:>8.3f}s "
            f"{loaded.mean:>9.3f}s  {cache}"
        )

    stats = batch.stats
    print(
        f"\n   {len(batch)} queries x {len(VARIANTS)} variants x "
        f"{len(MPLS)} mpls in {batch.elapsed_seconds:.3f}s "
        f"({batch.queries_per_second:.0f} q/s)"
    )
    print(
        f"   prepares: {stats.prepares_run} run, "
        f"{stats.prepare_cache_hits} served from cache "
        f"(hit rate {stats.prepare_hit_rate:.0%}); "
        f"assemblies: {stats.assemblies}"
    )


if __name__ == "__main__":
    main()
