"""Batch serving: many queries, variants, and concurrency levels at once.

Builds a :class:`repro.Session` facade whose config defaults the fan-out
to two predictor variants and three multiprogramming levels, then serves
a 30-query template workload (with the recurring queries a real
dashboard workload has). The :class:`repro.PredictionService` engine
behind the session shares one plan/sample/fit pass per distinct query
and assembles every combination with the vectorized path.

Run:  python examples/batch_service.py
"""

from repro import Session, SessionConfig
from repro.util import ensure_rng
from repro.workloads.tpch_templates import TPCH_TEMPLATES

BATCH = 30
VARIANTS = ("all", "nocov")
MPLS = (1, 2, 4)


def main() -> None:
    print("1. building the session: TPC-H (scale 0.01, uniform), machine PC2 ...")
    session = Session(
        SessionConfig(
            scale_factor=0.01,
            db_seed=1,
            calibration_seed=0,
            sampling_ratio=0.05,
            sampling_seed=2,
            default_variants=VARIANTS,
            default_mpls=MPLS,
            default_confidences=(0.9,),
        )
    )

    print("2. building the workload (30 queries, ~1/3 repeats) ...")
    rng = ensure_rng(7)
    distinct = [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(BATCH * 2 // 3)
    ]
    repeats = [
        distinct[int(rng.integers(len(distinct)))]
        for _ in range(BATCH - len(distinct))
    ]
    queries = distinct + repeats

    print("3. serving the batch ...\n")
    batch = session.predict_batch(queries)

    print(f"   {'#':>3} {'mean':>9} {'std':>9} {'mean@mpl4':>10}  cache")
    for index, response in enumerate(batch):
        unloaded = response.result("all", 1)
        loaded = response.result("all", 4)
        cache = "hit" if response.prepare_was_cached else "miss"
        print(
            f"   {index:>3} {unloaded.mean:>8.3f}s {unloaded.std:>8.3f}s "
            f"{loaded.mean:>9.3f}s  {cache}"
        )

    stats = batch.stats
    print(
        f"\n   {len(batch)} queries x {len(VARIANTS)} variants x "
        f"{len(MPLS)} mpls in {batch.elapsed_seconds:.3f}s "
        f"({batch.queries_per_second:.0f} q/s)"
    )
    print(
        f"   prepares: {stats.prepares_run} run, "
        f"{stats.prepare_cache_hits} served from cache "
        f"(hit rate {stats.describe_hit_rate()}); "
        f"assemblies: {stats.assemblies}"
    )
    session.close()


if __name__ == "__main__":
    main()
