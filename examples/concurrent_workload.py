"""Predicting under concurrency (Section 8's future-work sketch).

"The selectivities of the operators in a query are independent of
whether or not it is running with other queries" — so concurrency is
modeled purely as a change in the cost-unit distributions. This demo
sweeps the multiprogramming level for an I/O-heavy and a CPU-heavy
query and shows how the predicted distributions shift and widen.

Run:  python examples/concurrent_workload.py
"""

from repro import (
    Calibrator,
    HardwareSimulator,
    Optimizer,
    PC1,
    SampleDatabase,
    TpchConfig,
    generate_tpch,
)
from repro.core.concurrency import ConcurrentPredictor

IO_HEAVY = (
    "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-04-01'"
)  # index scan: random I/O dominated
CPU_HEAVY = (
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity), COUNT(*) "
    "FROM lineitem GROUP BY l_returnflag, l_linestatus"
)  # full scan + aggregation: CPU dominated


def main() -> None:
    db = generate_tpch(TpchConfig(scale_factor=0.02, seed=12))
    optimizer = Optimizer(db)
    units = Calibrator(HardwareSimulator(PC1, rng=5)).calibrate()
    samples = SampleDatabase(db, sampling_ratio=0.05, seed=13)
    predictor = ConcurrentPredictor(units)

    for label, sql in (("I/O-heavy", IO_HEAVY), ("CPU-heavy", CPU_HEAVY)):
        planned = optimizer.plan_sql(sql)
        sweep = predictor.sweep(planned, samples, levels=(1, 2, 4, 8))
        print(f"\n{label}: {sql[:60]}...")
        base = sweep[1].mean
        for mpl, prediction in sweep.items():
            low, high = prediction.confidence_interval(0.9)
            print(
                f"  MPL={mpl}: {prediction.mean:7.3f}s "
                f"(x{prediction.mean / base:4.2f}), 90% in "
                f"[{low:.3f}, {high:.3f}]"
            )

    print(
        "\nThe I/O-heavy query degrades faster with concurrency (shared "
        "disk) than the CPU-heavy one — and both predictions widen, since "
        "neighbour pressure is itself uncertain."
    )


if __name__ == "__main__":
    main()
