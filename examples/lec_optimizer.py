"""Least-expected-cost plan choice (Section 6.5.1, after Chu et al.).

Classic optimizers rank candidate plans by cost at their own point
cardinality estimates. With sampled selectivity *distributions*, plans
can be ranked by expected running time instead — and plans that look
cheap on paper but blow up when the estimates are uncertain (a
nested-loop join over a "tiny" inner, say) get exposed.

Run:  python examples/lec_optimizer.py
"""

from repro import (
    Calibrator,
    HardwareSimulator,
    PC1,
    SampleDatabase,
    TpchConfig,
    generate_tpch,
)
from repro.core import LeastExpectedCostChooser
from repro.workloads import seljoin_workload


def main() -> None:
    # Skewed data (Zipf z=1): exactly where histogram-based cardinality
    # estimates mislead the classic optimizer and sampling pays off.
    db = generate_tpch(TpchConfig(scale_factor=0.02, skew_z=1.0, seed=10))
    simulator = HardwareSimulator(PC1, rng=4)
    units = Calibrator(simulator).calibrate()
    samples = SampleDatabase(db, sampling_ratio=0.05, seed=11)
    chooser = LeastExpectedCostChooser(db, units)

    disagreements = 0
    queries = seljoin_workload(num_queries=10, seed=13)
    for i, sql in enumerate(queries):
        candidates = chooser.candidates(sql, samples)
        lec = min(candidates, key=lambda c: c.expected_cost)
        point = min(candidates, key=lambda c: c.point_cost)
        marker = ""
        if lec.label != point.label:
            disagreements += 1
            marker = "   <-- LEC disagrees with the classic choice"
        print(f"Q{i}: {len(candidates)} distinct candidate plans{marker}")
        for candidate in sorted(candidates, key=lambda c: c.expected_cost):
            chosen = []
            if candidate is lec:
                chosen.append("LEC")
            if candidate is point:
                chosen.append("classic")
            tag = f"  [{', '.join(chosen)}]" if chosen else ""
            print(f"    {candidate}{tag}")

    print(f"\n{disagreements} of {len(queries)} queries rank differently under LEC.")
    print(
        "LEC hedges toward plans whose cost degrades gracefully when the "
        "optimizer's estimates turn out optimistic; a risk-averse variant "
        "(mean + lambda*sigma) is available via choose_risk_averse()."
    )


if __name__ == "__main__":
    main()
