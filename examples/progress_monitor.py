"""An uncertainty-aware query progress indicator (Section 6.5.2).

Chaudhuri et al. showed that in the worst case no progress indicator
beats "between 0% and 100%" — so honest indicators should carry error
bars. This demo predicts a query's running-time distribution, then
replays a simulated execution and prints the progress estimate with its
confidence band at regular intervals.

Run:  python examples/progress_monitor.py
"""

from repro import (
    Calibrator,
    Executor,
    HardwareSimulator,
    Optimizer,
    PC1,
    ProgressIndicator,
    SampleDatabase,
    TpchConfig,
    UncertaintyPredictor,
    generate_tpch,
)

SQL = (
    "SELECT COUNT(*) FROM part, lineitem, orders "
    "WHERE p_partkey = l_partkey AND o_orderkey = l_orderkey "
    "AND p_size BETWEEN 1 AND 15"
)


def main() -> None:
    db = generate_tpch(TpchConfig(scale_factor=0.02, seed=8))
    planned = Optimizer(db).plan_sql(SQL)

    simulator = HardwareSimulator(PC1, rng=3)
    units = Calibrator(simulator).calibrate()
    samples = SampleDatabase(db, sampling_ratio=0.05, seed=9)
    prediction = UncertaintyPredictor(units).predict(planned, samples)

    print(f"prediction: {prediction.mean:.2f}s +- {prediction.std:.2f}s")
    indicator = ProgressIndicator(prediction.distribution, confidence=0.9)

    actual = simulator.run_repeated(Executor(db).execute(planned).counts)
    print(f"(simulated true running time: {actual:.2f}s)\n")

    steps = 8
    for step in range(steps + 1):
        elapsed = actual * step / steps
        estimate = indicator.at(elapsed)
        bar = "#" * int(30 * estimate.fraction) + "-" * (30 - int(30 * estimate.fraction))
        print(f"t={elapsed:6.2f}s |{bar}| {estimate.describe()}")

    print(
        "\nWide bands early in a risky query are the honest answer the "
        "paper argues for — a point percentage would overstate certainty."
    )


if __name__ == "__main__":
    main()
