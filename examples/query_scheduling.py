"""Distribution-based query scheduling (Section 6.5.3, after Chi et al.).

A batch of queries with deadlines must be ordered on one worker. With
point estimates a scheduler can only apply ordering heuristics (EDF,
slack). With predicted *distributions* it can score any candidate
schedule — completion times are sums of independent normals, so the
expected number of deadlines met has a closed form — and then search
for a better one. The demo scores classic heuristics, runs a local
search on the expected-deadlines-met objective, and validates all of
them against repeated simulated executions.

Run:  python examples/query_scheduling.py
"""

import numpy as np

from repro import (
    Calibrator,
    Executor,
    HardwareSimulator,
    Optimizer,
    PC2,
    SampleDatabase,
    TpchConfig,
    UncertaintyPredictor,
    generate_tpch,
)
from repro.mathstats import NormalDistribution
from repro.workloads import micro_join_queries


def expected_met(order, jobs, deadlines):
    """E[#deadlines met] when jobs run in ``order`` (normal convolution)."""
    mean = 0.0
    variance = 0.0
    total = 0.0
    for index in order:
        mean += jobs[index]["mean"]
        variance += jobs[index]["var"]
        completion = NormalDistribution(mean, variance)
        total += completion.cdf(deadlines[index])
    return total


def local_search(order, jobs, deadlines):
    """Pairwise-swap hill climbing on the expected-met objective."""
    best = list(order)
    best_score = expected_met(best, jobs, deadlines)
    improved = True
    while improved:
        improved = False
        for i in range(len(best) - 1):
            candidate = best.copy()
            candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
            score = expected_met(candidate, jobs, deadlines)
            if score > best_score + 1e-12:
                best, best_score = candidate, score
                improved = True
    return best, best_score


def main() -> None:
    db = generate_tpch(TpchConfig(scale_factor=0.02, seed=6))
    optimizer = Optimizer(db)
    executor = Executor(db)
    simulator = HardwareSimulator(PC2, rng=2)
    units = Calibrator(simulator).calibrate()
    samples = SampleDatabase(db, sampling_ratio=0.02, seed=7)
    predictor = UncertaintyPredictor(units)

    jobs = []
    for sql in micro_join_queries(db, grid=2)[:12]:
        planned = optimizer.plan_sql(sql)
        prediction = predictor.predict(planned, samples)
        jobs.append(
            {
                "mean": prediction.mean,
                "var": prediction.distribution.variance,
                "counts": executor.execute(planned).counts,
            }
        )
    n = len(jobs)

    # Tight deadlines spread over the predicted makespan.
    rng = np.random.default_rng(20)
    horizon = sum(job["mean"] for job in jobs)
    deadlines = [
        job["mean"] + float(rng.uniform(0.05, 0.7)) * horizon for job in jobs
    ]

    orders = {
        "EDF (deadline)": sorted(range(n), key=lambda i: deadlines[i]),
        "SPT (mean)": sorted(range(n), key=lambda i: jobs[i]["mean"]),
        "mean slack": sorted(range(n), key=lambda i: deadlines[i] - jobs[i]["mean"]),
    }
    start = orders["mean slack"]
    searched, _ = local_search(start, jobs, deadlines)
    orders["distribution search"] = searched

    print(f"{'policy':>20} {'E[met] (predicted)':>20} {'met (simulated)':>17}")
    trials = 300
    for label, order in orders.items():
        predicted = expected_met(order, jobs, deadlines)
        met_total = 0
        for _ in range(trials):
            clock = 0.0
            for index in order:
                clock += simulator.run_once(jobs[index]["counts"])
                met_total += clock <= deadlines[index]
        print(f"{label:>20} {predicted:20.2f} {met_total / trials:17.2f}")

    print(
        f"\nOut of {n} queries: the distribution-based scheduler optimizes "
        "the closed-form expected-deadlines-met objective — something no "
        "point estimate can even evaluate — and its predicted score tracks "
        "the simulated outcome."
    )


if __name__ == "__main__":
    main()
