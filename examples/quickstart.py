"""Quickstart: predict a query's running time *distribution*.

Builds a small TPC-H database, calibrates the (simulated) machine,
and predicts the running time of a join query — mean, standard
deviation, and confidence intervals — then compares against the
"actual" (simulated) execution, the paper's measurement protocol.

Run:  python examples/quickstart.py
"""

from repro import (
    Calibrator,
    Executor,
    HardwareSimulator,
    Optimizer,
    PC2,
    SampleDatabase,
    TpchConfig,
    UncertaintyPredictor,
    generate_tpch,
)

SQL = (
    "SELECT COUNT(*) FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND o_totalprice > 150000 AND c_acctbal > 0"
)


def main() -> None:
    print("1. generating TPC-H (scale 0.02, uniform) ...")
    db = generate_tpch(TpchConfig(scale_factor=0.02, seed=1))

    print("2. planning:")
    planned = Optimizer(db).plan_sql(SQL)
    print(planned.explain())

    print("\n3. calibrating cost units on the simulated machine PC2 ...")
    simulator = HardwareSimulator(PC2, rng=0)
    units = Calibrator(simulator).calibrate()
    for name, dist in units.distributions.items():
        print(f"   {name}: {dist.mean:.3e} s (std {dist.std:.1e})")

    print("\n4. sampling pass (SR = 5%) + prediction ...")
    samples = SampleDatabase(db, sampling_ratio=0.05, seed=2)
    prediction = UncertaintyPredictor(units).predict(planned, samples)

    print(f"   predicted mean : {prediction.mean:.3f} s")
    print(f"   predicted std  : {prediction.std:.3f} s")
    for confidence in (0.5, 0.9, 0.99):
        low, high = prediction.confidence_interval(confidence)
        print(f"   {confidence:.0%} interval  : [{low:.3f} s, {high:.3f} s]")

    print("\n5. executing for ground truth (mean of 5 simulated runs) ...")
    result = Executor(db).execute(planned)
    actual = simulator.run_repeated(result.counts)
    z = abs(actual - prediction.mean) / max(prediction.std, 1e-12)
    print(f"   actual time    : {actual:.3f} s")
    print(f"   |error| / std  : {z:.2f}  (the paper's normalized error E')")
    print(
        "   the predictor believes P(T within the 90% interval) = 0.90; "
        f"this run {'landed inside' if z < 1.645 else 'fell outside'}."
    )


if __name__ == "__main__":
    main()
