"""Quickstart: predict a query's running time *distribution*.

One declarative :class:`repro.SessionConfig` builds the whole stack —
a small TPC-H database, a calibrated (simulated) machine, and the
sampling-based estimator — behind a :class:`repro.Session` facade. The
session predicts the running time of a join query (mean, standard
deviation, confidence intervals), then the example compares against the
"actual" (simulated) execution, the paper's measurement protocol.

Run:  python examples/quickstart.py
"""

from repro import Executor, PredictRequest, Session, SessionConfig

SQL = (
    "SELECT COUNT(*) FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND o_totalprice > 150000 AND c_acctbal > 0"
)


def main() -> None:
    print("1. building the session: TPC-H (scale 0.02, uniform), machine PC2,")
    print("   sampling estimator at SR = 5% ...")
    session = Session(
        SessionConfig(
            scale_factor=0.02,
            db_seed=1,
            machine="PC2",
            calibration_seed=0,
            sampling_ratio=0.05,
            sampling_seed=2,
        )
    )
    for name, dist in session.units.distributions.items():
        print(f"   {name}: {dist.mean:.3e} s (std {dist.std:.1e})")

    print("\n2. planning:")
    print(session.explain(SQL))

    print("\n3. predicting (one typed request -> one typed response) ...")
    response = session.predict(
        PredictRequest(sql=SQL, confidences=(0.5, 0.9, 0.99))
    )
    result = response.results[0]
    print(f"   predicted mean : {result.mean:.3f} s")
    print(f"   predicted std  : {result.std:.3f} s")
    for interval in result.intervals:
        print(
            f"   {interval.confidence:.0%} interval  : "
            f"[{interval.low:.3f} s, {interval.high:.3f} s]"
        )

    print("\n4. executing for ground truth (mean of 5 simulated runs) ...")
    executed = Executor(session.database).execute(session.plan(SQL))
    actual = session.simulator.run_repeated(executed.counts)
    z = abs(actual - result.mean) / max(result.std, 1e-12)
    print(f"   actual time    : {actual:.3f} s")
    print(f"   |error| / std  : {z:.2f}  (the paper's normalized error E')")
    print(
        "   the predictor believes P(T within the 90% interval) = 0.90; "
        f"this run {'landed inside' if z < 1.645 else 'fell outside'}."
    )
    session.close()


if __name__ == "__main__":
    main()
