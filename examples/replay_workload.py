"""Workload replay: drive the serving stack with sustained mixed traffic.

Builds one session, then replays a seeded multi-tenant workload three
ways and prints the full load reports:

1. open-loop Poisson arrivals against the in-process session, with the
   under-load calibration check (interval coverage vs simulated ground
   truth, and the bitwise predictions-match-idle flag);
2. the same schedule replayed again — bitwise-identical by contract;
3. closed-loop clients against an ephemeral HTTP server with bounded
   admission — zero 503s while clients stay below the cap.

Run:  python examples/replay_workload.py
"""

import threading

from repro import HttpClient, Session, SessionConfig
from repro.api import build_server
from repro.replay import (
    ClosedLoop,
    HttpTarget,
    InProcessTarget,
    PoissonArrivals,
    ReplayReport,
    ReplayRunner,
    build_schedule,
    parse_mix,
)
from repro.replay.report import calibration_under_load


def main() -> None:
    print("1. building the session (TPC-H scale 0.01, machine PC2) ...")
    session = Session(
        SessionConfig(scale_factor=0.01, db_seed=5, calibration_repetitions=6)
    )

    mix = parse_mix("multitenant")
    schedule = build_schedule(
        mix, session.database, PoissonArrivals(rate=30.0),
        seed=17, duration_seconds=2.0,
    )
    print("\n2. the schedule (deterministic given the seed):")
    print(schedule.describe())

    print("\n3. open-loop replay against the in-process session ...")
    runner = ReplayRunner(InProcessTarget(session), time_scale=0.25)
    run = runner.run(schedule)
    calibration = calibration_under_load(run, session, confidence=0.9)
    print(ReplayReport.from_run(run, calibration=calibration).render())

    print("\n4. replaying the identical schedule again ...")
    again = runner.run(schedule)
    identical = run.results_signature() == again.results_signature()
    print(f"   bitwise-identical predictions across replays: {identical}")

    print("\n5. closed-loop clients against an HTTP server (admission cap 8) ...")
    server = build_server(session, port=0, max_in_flight=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        closed = build_schedule(
            mix, session.database,
            ClosedLoop(clients=4, requests_per_client=8, think_seconds=0.005),
            seed=17,
        )
        http_run = ReplayRunner(HttpTarget(HttpClient(server.url))).run(closed)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    print(ReplayReport.from_run(http_run).render())
    refused = http_run.error_counts().get("over-capacity", 0)
    print(
        f"   503 refusals with 4 clients under an 8-slot cap: {refused} "
        f"(max observed in flight: {http_run.max_in_flight})"
    )


if __name__ == "__main__":
    main()
