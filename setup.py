"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 660 editable installs (which need bdist_wheel) fail.
Keeping a setup.py lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Uncertainty-aware query execution time prediction "
        "(Wu et al., VLDB 2014) — full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
