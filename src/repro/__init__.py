"""repro — Uncertainty Aware Query Execution Time Prediction.

A full reproduction of Wu, Wu, Hacıgümüş, Naughton (VLDB/arXiv 2014):
predicting a *distribution* of likely query running times instead of a
point estimate, by treating cost units and selectivities as random
variables.

Quick start::

    from repro import (
        TpchConfig, generate_tpch, Optimizer, Executor, SampleDatabase,
        HardwareSimulator, PC2, Calibrator, UncertaintyPredictor,
    )

    db = generate_tpch(TpchConfig(scale_factor=0.01))
    planned = Optimizer(db).plan_sql(
        "SELECT COUNT(*) FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_totalprice > 100000"
    )
    simulator = HardwareSimulator(PC2, rng=0)
    units = Calibrator(simulator).calibrate()
    samples = SampleDatabase(db, sampling_ratio=0.05)
    prediction = UncertaintyPredictor(units).predict(planned, samples)
    print(prediction.mean, prediction.std, prediction.confidence_interval())
"""

from .calibration import CalibratedUnits, Calibrator
from .core import (
    PredictionResult,
    ProgressIndicator,
    UncertaintyPredictor,
    Variant,
)
from .datagen import TpchConfig, generate_tpch
from .executor import ExecutionResult, Executor
from .hardware import PC1, PC2, PROFILES, HardwareProfile, HardwareSimulator
from .mathstats import NormalDistribution, pearson, spearman
from .optimizer import Optimizer, OptimizerConfig, PlannedQuery
from .sampling import SampleDatabase, SamplingEngine
from .service import BatchPrediction, PredictionService, QueryPrediction
from .sql import parse_query
from .storage import Database, Table

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TpchConfig",
    "generate_tpch",
    "Database",
    "Table",
    "parse_query",
    "Optimizer",
    "OptimizerConfig",
    "PlannedQuery",
    "Executor",
    "ExecutionResult",
    "HardwareProfile",
    "HardwareSimulator",
    "PC1",
    "PC2",
    "PROFILES",
    "Calibrator",
    "CalibratedUnits",
    "SampleDatabase",
    "SamplingEngine",
    "UncertaintyPredictor",
    "PredictionResult",
    "PredictionService",
    "BatchPrediction",
    "QueryPrediction",
    "Variant",
    "ProgressIndicator",
    "NormalDistribution",
    "pearson",
    "spearman",
]
