"""repro — Uncertainty Aware Query Execution Time Prediction.

A full reproduction of Wu, Wu, Hacıgümüş, Naughton (VLDB/arXiv 2014):
predicting a *distribution* of likely query running times instead of a
point estimate, by treating cost units and selectivities as random
variables.

Quick start — the session facade owns the whole predictor stack::

    from repro import Session, SessionConfig

    session = Session(SessionConfig(scale_factor=0.01))
    response = session.predict(
        "SELECT COUNT(*) FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_totalprice > 100000"
    )
    print(response.mean, response.std, response.result().intervals)

The assembled parts stay public for advanced use (see docs/api.md):
``Optimizer``, ``Calibrator``, ``SampleDatabase``,
``UncertaintyPredictor``, and the ``PredictionService`` engine the
session drives. ``python -m repro serve`` exposes a session over
HTTP/JSON; ``repro.HttpClient`` is the matching client.
"""

from .api import (
    HttpClient,
    PredictRequest,
    PredictResponse,
    Session,
    SessionConfig,
)
from .calibration import CalibratedUnits, Calibrator
from .core import (
    PredictionResult,
    ProgressIndicator,
    UncertaintyPredictor,
    Variant,
)
from .datagen import TpchConfig, generate_tpch
from .executor import ExecutionResult, Executor
from .hardware import PC1, PC2, PROFILES, HardwareProfile, HardwareSimulator
from .mathstats import NormalDistribution, pearson, spearman
from .optimizer import Optimizer, OptimizerConfig, PlannedQuery
from .sampling import SampleDatabase, SamplingEngine
from .service import BatchPrediction, PredictionService, QueryPrediction
from .sql import parse_query
from .storage import Database, Table

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Session",
    "SessionConfig",
    "PredictRequest",
    "PredictResponse",
    "HttpClient",
    "TpchConfig",
    "generate_tpch",
    "Database",
    "Table",
    "parse_query",
    "Optimizer",
    "OptimizerConfig",
    "PlannedQuery",
    "Executor",
    "ExecutionResult",
    "HardwareProfile",
    "HardwareSimulator",
    "PC1",
    "PC2",
    "PROFILES",
    "Calibrator",
    "CalibratedUnits",
    "SampleDatabase",
    "SamplingEngine",
    "UncertaintyPredictor",
    "PredictionResult",
    "PredictionService",
    "BatchPrediction",
    "QueryPrediction",
    "Variant",
    "ProgressIndicator",
    "NormalDistribution",
    "pearson",
    "spearman",
]
