"""The public serving API: session facade, wire schema, HTTP front-end.

This package is the front door everything else is built against:

* :class:`Session` + :class:`SessionConfig` — the transport-agnostic
  facade owning the whole predictor stack
  (:class:`~repro.service.PredictionService` is the engine behind it);
* :mod:`repro.api.wire` — the versioned JSON wire schema
  (:data:`SCHEMA_VERSION`, typed requests/responses, error bodies);
* :mod:`repro.api.http` / :mod:`repro.api.client` — the stdlib HTTP
  server (``repro serve``) and the matching :class:`HttpClient`.
"""

from .client import ApiError, HttpClient
from .config import ESTIMATOR_BACKENDS, SessionConfig
from .http import ApiHTTPServer, build_server
from .session import Session
from .wire import (
    SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    IntervalPayload,
    PredictRequest,
    PredictResponse,
    ResultPayload,
)

__all__ = [
    "SCHEMA_VERSION",
    "ESTIMATOR_BACKENDS",
    "ApiError",
    "ApiHTTPServer",
    "BatchRequest",
    "BatchResponse",
    "HttpClient",
    "IntervalPayload",
    "PredictRequest",
    "PredictResponse",
    "ResultPayload",
    "Session",
    "SessionConfig",
    "build_server",
]
