"""The public serving API: session facade, wire schema, HTTP front-end.

This package is the front door everything else is built against:

* :class:`Session` + :class:`SessionConfig` — the transport-agnostic
  facade owning the whole predictor stack
  (:class:`~repro.service.PredictionService` is the engine behind it);
* :mod:`repro.api.wire` — the versioned JSON wire schema
  (:data:`SCHEMA_VERSION`, typed requests/responses, error bodies,
  the v2 observation vocabulary and sectioned stats snapshot);
* :mod:`repro.api.http` / :mod:`repro.api.client` — the stdlib HTTP
  server (``repro serve``) and the matching :class:`HttpClient`
  (configured by one declarative :class:`ClientConfig`).
"""

from typing import TYPE_CHECKING

from .client import ApiError, HttpClient
from .config import ESTIMATOR_BACKENDS, ClientConfig, SessionConfig
from .session import Session

if TYPE_CHECKING:  # resolved lazily at runtime — see __getattr__ below
    from .http import ApiHTTPServer, build_server
from .wire import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    AdmissionStats,
    BatchRequest,
    BatchResponse,
    FeedbackApplied,
    IntervalPayload,
    Observation,
    ObserveResponse,
    PredictRequest,
    PredictResponse,
    ResultPayload,
    StatsSnapshot,
)

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "ESTIMATOR_BACKENDS",
    "AdmissionStats",
    "ApiError",
    "ApiHTTPServer",
    "BatchRequest",
    "BatchResponse",
    "ClientConfig",
    "FeedbackApplied",
    "HttpClient",
    "IntervalPayload",
    "Observation",
    "ObserveResponse",
    "PredictRequest",
    "PredictResponse",
    "ResultPayload",
    "Session",
    "SessionConfig",
    "StatsSnapshot",
    "build_server",
]


def __getattr__(name: str):
    # The HTTP server names resolve lazily: repro.api.http composes the
    # repro.serving layers, and those import the wire schema from this
    # package — an eager import here would be a circular import. Lazy
    # resolution keeps ``from repro.api import build_server`` working
    # whatever the import order.
    if name in ("ApiHTTPServer", "build_server"):
        from . import http

        return getattr(http, name)
    # staticcheck: disable=error-taxonomy — the module-__getattr__
    # protocol requires AttributeError (hasattr/getattr semantics);
    # this never crosses the wire.
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
