"""A small stdlib HTTP client for the serving front-end.

:class:`HttpClient` speaks the versioned wire schema against a running
``repro serve`` (or any :class:`~repro.api.http.ApiHTTPServer`), so a
second process can drive predictions with the same typed objects the
in-process :class:`~repro.api.session.Session` returns::

    client = HttpClient("http://127.0.0.1:8080")
    client.healthz()
    response = client.predict("SELECT COUNT(*) FROM orders ...")
    batch = client.predict_batch(["SELECT ...", "SELECT ..."])

Structured server errors surface as :class:`ApiError` carrying the HTTP
status and the stable wire ``code`` (``"sql-parse"``,
``"schema-version"``, ``"over-capacity"``, ...).

Admission refusals (503 ``over-capacity``) are retryable by
construction — the server sheds load instead of queueing, and
predictions are pure reads — so the client can absorb them:
``retries_503=N`` re-sends a refused request up to N times behind a
jittered exponential backoff drawn from a **seeded** generator
(deterministic delay sequences; replay runs stay reproducible). The
default is 0 retries: surfacing the 503 is the honest default for
load tests measuring shed traffic.
"""

from __future__ import annotations

import random
import threading
import time
import urllib.error
import urllib.request
from typing import Sequence

from ..errors import ReproError
from ..service.service import ServiceReport
from .wire import (
    BatchRequest,
    BatchResponse,
    PredictRequest,
    PredictResponse,
    dumps,
    loads,
    service_report_from_dict,
)

__all__ = ["ApiError", "HttpClient"]


class ApiError(ReproError):
    """A structured error answer from the serving front-end."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.remote_message = message


class HttpClient:
    """Typed wire-schema requests against one serving base URL.

    ``retries_503`` bounds how many times an admission-refused request
    (503, code ``over-capacity``) is re-sent; ``backoff_seconds`` is the
    first retry's base delay, doubled per attempt and jittered to
    50–100% of the base by a generator seeded with ``backoff_seed``.
    The jitter draws and the retry counter are lock-protected, so the
    client is safe to share across threads; the delay *sequence* is
    deterministic — a serial (closed-loop) caller retries on the
    identical schedule every run, while concurrent callers interleave
    draws in arrival order.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        *,
        retries_503: int = 0,
        backoff_seconds: float = 0.05,
        backoff_seed: int = 0,
    ):
        if retries_503 < 0:
            raise ApiError(0, "bad-request", f"retries_503 must be >= 0, got {retries_503}")
        if backoff_seconds <= 0:
            raise ApiError(
                0, "bad-request",
                f"backoff_seconds must be positive, got {backoff_seconds}",
            )
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._retries_503 = retries_503
        self._backoff_seconds = backoff_seconds
        self._backoff_rng = random.Random(backoff_seed)
        self._backoff_lock = threading.Lock()
        self._retries_performed = 0

    @property
    def base_url(self) -> str:
        return self._base_url

    @property
    def retries_performed(self) -> int:
        """Total 503 retries this client has issued (monitoring aid)."""
        return self._retries_performed

    # -- transport ---------------------------------------------------------
    def request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP exchange; returns the decoded JSON body.

        Error statuses with a structured body raise :class:`ApiError`;
        transport failures raise it with code ``"transport"``. A 503
        ``over-capacity`` answer is retried up to ``retries_503`` times
        behind the seeded jittered backoff before it propagates.
        """
        attempt = 0
        while True:
            try:
                return self._exchange(method, path, payload)
            except ApiError as error:
                retryable = error.status == 503 and error.code == "over-capacity"
                if not retryable or attempt >= self._retries_503:
                    raise
                time.sleep(self._backoff_delay(attempt))
                attempt += 1

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential base doubled per attempt, jittered to 50–100%.

        The draw and the retry counter update are one atomic step, so
        threads sharing a client neither lose counter increments nor
        tear the generator's state.
        """
        base = self._backoff_seconds * (2.0 ** attempt)
        with self._backoff_lock:
            self._retries_performed += 1
            return base * (0.5 + 0.5 * self._backoff_rng.random())

    def _exchange(self, method: str, path: str, payload: dict | None) -> dict:
        url = f"{self._base_url}{path}"
        data = dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as reply:
                return loads(reply.read())
        except urllib.error.HTTPError as error:
            raise self._structured(error) from None
        except urllib.error.URLError as error:
            raise ApiError(0, "transport", f"cannot reach {url}: {error.reason}") from None

    @staticmethod
    def _structured(error: urllib.error.HTTPError) -> ApiError:
        try:
            record = loads(error.read())
            body = record["error"]
            return ApiError(error.code, str(body["code"]), str(body["message"]))
        except Exception:  # noqa: BLE001 — non-JSON error page
            return ApiError(error.code, "http", f"{error.code} {error.reason}")

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /v1/healthz`` — liveness, schema version, uptime."""
        return self.request_json("GET", "/v1/healthz")

    def stats(self) -> ServiceReport:
        """``GET /v1/stats`` — the serving counters and cache stats."""
        return service_report_from_dict(self.request_json("GET", "/v1/stats"))

    def predict(self, request: PredictRequest | str) -> PredictResponse:
        """``POST /v1/predict`` — one query (a bare SQL string is accepted)."""
        if isinstance(request, str):
            request = PredictRequest(sql=request)
        record = self.request_json("POST", "/v1/predict", request.to_dict())
        return PredictResponse.from_dict(record)

    def predict_batch(
        self, batch: BatchRequest | Sequence[str]
    ) -> BatchResponse:
        """``POST /v1/predict-batch`` — a batch with one shared fan-out."""
        if not isinstance(batch, BatchRequest):
            batch = BatchRequest(queries=tuple(batch))
        record = self.request_json("POST", "/v1/predict-batch", batch.to_dict())
        return BatchResponse.from_dict(record)
