"""A small stdlib HTTP client for the serving front-end.

:class:`HttpClient` speaks the versioned wire schema against a running
``repro serve`` (or any :class:`~repro.api.http.ApiHTTPServer`), so a
second process can drive predictions with the same typed objects the
in-process :class:`~repro.api.session.Session` returns::

    client = HttpClient("http://127.0.0.1:8080")
    client.healthz()
    response = client.predict("SELECT COUNT(*) FROM orders ...")
    batch = client.predict_batch(["SELECT ...", "SELECT ..."])

Structured server errors surface as :class:`ApiError` carrying the HTTP
status and the stable wire ``code`` (``"sql-parse"``,
``"schema-version"``, ``"over-capacity"``, ...).

Admission refusals (503 ``over-capacity``) are retryable by
construction — the server sheds load instead of queueing, and
predictions are pure reads — so the client can absorb them:
``retries_503=N`` re-sends a refused request up to N times behind a
jittered exponential backoff drawn from a **seeded** generator
(deterministic delay sequences; replay runs stay reproducible). When
the refusal carries the server's ``Retry-After`` hint, the backoff
base is raised to honor it (capped at
:data:`RETRY_AFTER_CAP_SECONDS`). The default is 0 retries: surfacing
the 503 is the honest default for load tests measuring shed traffic.

All client knobs live on one declarative
:class:`~repro.api.config.ClientConfig` (``HttpClient(url,
config=ClientConfig(retries_503=3))``). The pre-v2 keyword arguments
(``retries_503``/``backoff_seconds``/``backoff_seed``) keep working as
deprecation shims that fold into the config.
"""

from __future__ import annotations

import random
import threading
import time
import urllib.error
import urllib.request
import warnings
from typing import Sequence

from ..errors import ReproError, SessionError
from .config import ClientConfig
from .wire import (
    BatchRequest,
    BatchResponse,
    Observation,
    ObserveResponse,
    PredictRequest,
    PredictResponse,
    StatsSnapshot,
    dumps,
    loads,
)

__all__ = ["RETRY_AFTER_CAP_SECONDS", "ApiError", "HttpClient"]

#: Upper bound on a server-suggested retry delay. An aggressive or
#: buggy ``Retry-After`` must not park a replay client for minutes.
RETRY_AFTER_CAP_SECONDS = 5.0


class ApiError(ReproError):
    """A structured error answer from the serving front-end.

    ``retry_after`` carries the server's ``Retry-After`` hint in
    seconds when the refusal had one (admission 503s do), ``None``
    otherwise.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
    ):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.remote_message = message
        self.retry_after = retry_after


class HttpClient:
    """Typed wire-schema requests against one serving base URL.

    ``retries_503`` bounds how many times an admission-refused request
    (503, code ``over-capacity``) is re-sent; ``backoff_seconds`` is the
    first retry's base delay, doubled per attempt and jittered to
    50–100% of the base by a generator seeded with ``backoff_seed``.
    The jitter draws and the retry counter are lock-protected, so the
    client is safe to share across threads; the delay *sequence* is
    deterministic — a serial (closed-loop) caller retries on the
    identical schedule every run, while concurrent callers interleave
    draws in arrival order.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float | None = None,
        *,
        config: ClientConfig | None = None,
        retries_503: int | None = None,
        backoff_seconds: float | None = None,
        backoff_seed: int | None = None,
    ):
        legacy = {
            name: value
            for name, value in (
                ("retries_503", retries_503),
                ("backoff_seconds", backoff_seconds),
                ("backoff_seed", backoff_seed),
            )
            if value is not None
        }
        if legacy and config is not None:
            raise ApiError(
                0, "bad-request",
                "pass either config=ClientConfig(...) or the legacy "
                f"keyword arguments, not both ({', '.join(sorted(legacy))})",
            )
        if legacy:
            warnings.warn(
                f"HttpClient({', '.join(sorted(legacy))}=...) is deprecated; "
                "pass config=ClientConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is None:
            config = ClientConfig()
        changes = dict(legacy)
        if timeout is not None:
            changes["timeout"] = timeout
        try:
            if changes:
                config = config.replace(**changes)
        except SessionError as error:
            # The pre-ClientConfig constructor reported bad knobs as
            # ApiError(bad-request); keep that contract for the shims.
            raise ApiError(0, "bad-request", str(error)) from None
        self._config = config
        self._base_url = base_url.rstrip("/")
        self._timeout = config.timeout
        self._retries_503 = config.retries_503
        self._backoff_seconds = config.backoff_seconds
        self._retry_after_cap = config.retry_after_cap_seconds
        self._wire_version = config.wire_version
        self._backoff_rng = random.Random(config.backoff_seed)
        self._backoff_lock = threading.Lock()
        self._retries_performed = 0

    @property
    def base_url(self) -> str:
        return self._base_url

    @property
    def config(self) -> ClientConfig:
        """The resolved declarative configuration this client runs with."""
        return self._config

    @property
    def retries_performed(self) -> int:
        """Total 503 retries this client has issued (monitoring aid)."""
        return self._retries_performed

    # -- transport ---------------------------------------------------------
    def request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP exchange; returns the decoded JSON body.

        Error statuses with a structured body raise :class:`ApiError`;
        transport failures raise it with code ``"transport"``. A 503
        ``over-capacity`` answer is retried up to ``retries_503`` times
        behind the seeded jittered backoff before it propagates.
        """
        attempt = 0
        while True:
            try:
                return self._exchange(method, path, payload)
            except ApiError as error:
                retryable = error.status == 503 and error.code == "over-capacity"
                if not retryable or attempt >= self._retries_503:
                    raise
                time.sleep(self._backoff_delay(attempt, error.retry_after))
                attempt += 1

    def _backoff_delay(
        self, attempt: int, retry_after: float | None = None
    ) -> float:
        """Exponential base doubled per attempt, jittered to 50–100%.

        A server ``Retry-After`` hint raises the base to at least the
        suggested delay (capped at :data:`RETRY_AFTER_CAP_SECONDS`) —
        the server knows its queue depth better than our schedule does —
        but never shortens an already-longer exponential base, so
        repeated refusals still back off. The jitter draw and the retry
        counter update are one atomic step, so threads sharing a client
        neither lose counter increments nor tear the generator's state.
        """
        base = self._backoff_seconds * (2.0 ** attempt)
        if retry_after is not None:
            base = min(max(base, retry_after), self._retry_after_cap)
        with self._backoff_lock:
            self._retries_performed += 1
            return base * (0.5 + 0.5 * self._backoff_rng.random())

    def _exchange(self, method: str, path: str, payload: dict | None) -> dict:
        url = f"{self._base_url}{path}"
        data = dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as reply:
                return loads(reply.read())
        except urllib.error.HTTPError as error:
            raise self._structured(error) from None
        except urllib.error.URLError as error:
            raise ApiError(0, "transport", f"cannot reach {url}: {error.reason}") from None

    @staticmethod
    def _structured(error: urllib.error.HTTPError) -> ApiError:
        retry_after = None
        try:
            retry_after = float(error.headers.get("Retry-After"))
        except (TypeError, ValueError):
            pass  # absent or non-numeric (HTTP dates are not sent by us)
        try:
            record = loads(error.read())
            body = record["error"]
            return ApiError(
                error.code, str(body["code"]), str(body["message"]),
                retry_after=retry_after,
            )
        except Exception:  # noqa: BLE001 — non-JSON error page
            return ApiError(
                error.code, "http", f"{error.code} {error.reason}",
                retry_after=retry_after,
            )

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /v1/healthz`` — liveness, schema version, uptime."""
        return self.request_json("GET", "/v1/healthz")

    def stats(self) -> StatsSnapshot:
        """``GET /v1/stats`` — the typed stats snapshot.

        Speaking wire v2 the client asks for the sectioned form
        (``?schema_version=2``: admission + feedback alongside the
        service report); at v1 it fetches the bare path, whose answer
        is the flat v1 report, and wraps it in a section-less snapshot.
        """
        path = "/v1/stats"
        if self._wire_version >= 2:
            path = f"/v1/stats?schema_version={self._wire_version}"
        return StatsSnapshot.from_dict(self.request_json("GET", path))

    def predict(self, request: PredictRequest | str) -> PredictResponse:
        """``POST /v1/predict`` — one query (a bare SQL string is accepted)."""
        if isinstance(request, str):
            request = PredictRequest(sql=request)
        record = self.request_json(
            "POST", "/v1/predict", request.to_dict(self._wire_version)
        )
        return PredictResponse.from_dict(record)

    def predict_batch(
        self, batch: BatchRequest | Sequence[str]
    ) -> BatchResponse:
        """``POST /v1/predict-batch`` — a batch with one shared fan-out."""
        if not isinstance(batch, BatchRequest):
            batch = BatchRequest(queries=tuple(batch))
        record = self.request_json(
            "POST", "/v1/predict-batch", batch.to_dict(self._wire_version)
        )
        return BatchResponse.from_dict(record)

    def observe(
        self,
        observation: Observation | str,
        actual_seconds: float | None = None,
    ) -> ObserveResponse:
        """``POST /v1/observe`` — feed one actual runtime back (v2).

        Accepts a full :class:`~repro.api.wire.Observation`, or the
        ``(sql, actual_seconds)`` convenience pair, attributed to the
        config's ``observe_tenant``.
        """
        if isinstance(observation, str):
            if actual_seconds is None:
                raise ApiError(
                    0, "bad-request",
                    "observe(sql, actual_seconds) needs the actual runtime",
                )
            observation = Observation(
                sql=observation,
                actual_seconds=actual_seconds,
                tenant=self._config.observe_tenant,
            )
        # Observations are inherently v2 — a genuine v1 server has no
        # /v1/observe and answers 404, which is the honest failure.
        record = self.request_json("POST", "/v1/observe", observation.to_dict(2))
        return ObserveResponse.from_dict(record)
