"""A small stdlib HTTP client for the serving front-end.

:class:`HttpClient` speaks the versioned wire schema against a running
``repro serve`` (or any :class:`~repro.api.http.ApiHTTPServer`), so a
second process can drive predictions with the same typed objects the
in-process :class:`~repro.api.session.Session` returns::

    client = HttpClient("http://127.0.0.1:8080")
    client.healthz()
    response = client.predict("SELECT COUNT(*) FROM orders ...")
    batch = client.predict_batch(["SELECT ...", "SELECT ..."])

Structured server errors surface as :class:`ApiError` carrying the HTTP
status and the stable wire ``code`` (``"sql-parse"``,
``"schema-version"``, ``"over-capacity"``, ...).
"""

from __future__ import annotations

import urllib.error
import urllib.request
from typing import Sequence

from ..errors import ReproError
from ..service.service import ServiceReport
from .wire import (
    BatchRequest,
    BatchResponse,
    PredictRequest,
    PredictResponse,
    dumps,
    loads,
    service_report_from_dict,
)

__all__ = ["ApiError", "HttpClient"]


class ApiError(ReproError):
    """A structured error answer from the serving front-end."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.remote_message = message


class HttpClient:
    """Typed wire-schema requests against one serving base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        return self._base_url

    # -- transport ---------------------------------------------------------
    def request_json(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP exchange; returns the decoded JSON body.

        Error statuses with a structured body raise :class:`ApiError`;
        transport failures raise it with code ``"transport"``.
        """
        url = f"{self._base_url}{path}"
        data = dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as reply:
                return loads(reply.read())
        except urllib.error.HTTPError as error:
            raise self._structured(error) from None
        except urllib.error.URLError as error:
            raise ApiError(0, "transport", f"cannot reach {url}: {error.reason}") from None

    @staticmethod
    def _structured(error: urllib.error.HTTPError) -> ApiError:
        try:
            record = loads(error.read())
            body = record["error"]
            return ApiError(error.code, str(body["code"]), str(body["message"]))
        except Exception:  # noqa: BLE001 — non-JSON error page
            return ApiError(error.code, "http", f"{error.code} {error.reason}")

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /v1/healthz`` — liveness, schema version, uptime."""
        return self.request_json("GET", "/v1/healthz")

    def stats(self) -> ServiceReport:
        """``GET /v1/stats`` — the serving counters and cache stats."""
        return service_report_from_dict(self.request_json("GET", "/v1/stats"))

    def predict(self, request: PredictRequest | str) -> PredictResponse:
        """``POST /v1/predict`` — one query (a bare SQL string is accepted)."""
        if isinstance(request, str):
            request = PredictRequest(sql=request)
        record = self.request_json("POST", "/v1/predict", request.to_dict())
        return PredictResponse.from_dict(record)

    def predict_batch(
        self, batch: BatchRequest | Sequence[str]
    ) -> BatchResponse:
        """``POST /v1/predict-batch`` — a batch with one shared fan-out."""
        if not isinstance(batch, BatchRequest):
            batch = BatchRequest(queries=tuple(batch))
        record = self.request_json("POST", "/v1/predict-batch", batch.to_dict())
        return BatchResponse.from_dict(record)
