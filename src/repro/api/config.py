"""The declarative session configuration.

One :class:`SessionConfig` describes everything a
:class:`~repro.api.session.Session` owns: the database source (TPC-H
generation parameters), the calibration profile (machine + seed +
repetitions), the selectivity-estimator backend chosen **by name**
("sampling" — the paper's Algorithm 1 — or "histogram", the
catalog-statistics alternative), both cache budgets, and the default
variant/multiprogramming/confidence fan-out applied to requests that do
not spell their own.

The config is itself a wire object: :meth:`to_dict`/:meth:`from_dict`
round-trip through JSON with unknown-field tolerance, so a serving
deployment can keep its predictor configuration in a plain JSON file.

:class:`ClientConfig` is the client-side twin: one declarative object
folding :class:`~repro.api.client.HttpClient`'s retry/backoff/observe
knobs, with the same JSON round-trip policy.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields, replace

from ..core.predictor import Variant
from ..costfuncs.fitting import DEFAULT_GRID_W
from ..errors import FeedbackError, PredictionError, SessionError
from ..feedback import DEFAULT_TENANT, FeedbackConfig
from ..hardware import PROFILES
from ..sampling.engine import DEFAULT_ENGINE_BUDGET_BYTES
from ..scheduler import SCHEDULER_POLICIES
from ..service.kernels import BATCH_KERNELS

__all__ = ["ESTIMATOR_BACKENDS", "ClientConfig", "SessionConfig"]

#: The selectivity-estimator backends selectable by name.
ESTIMATOR_BACKENDS = ("sampling", "histogram")


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to build a predictor stack, declaratively."""

    # -- database source (TPC-H generation is deterministic and fast) --
    scale_factor: float = 0.02
    skew_z: float = 0.0
    db_seed: int = 0
    # -- calibration profile ------------------------------------------
    machine: str = "PC2"
    calibration_seed: int = 0
    calibration_repetitions: int = 10
    # -- estimator backend --------------------------------------------
    estimator: str = "sampling"
    sampling_ratio: float = 0.05
    num_copies: int = 2
    sampling_seed: int = 1
    use_gee: bool = False
    grid_w: int = DEFAULT_GRID_W
    # -- cache budgets ------------------------------------------------
    prepared_cache_size: int = 256
    sampling_engine_bytes: int = DEFAULT_ENGINE_BUDGET_BYTES
    # -- batch execution (docs/service.md "Batch kernels") ------------
    batch_kernel: str = "scalar"
    # -- request defaults ---------------------------------------------
    default_variants: tuple[str, ...] = ("all",)
    default_mpls: tuple[int, ...] = (1,)
    default_confidences: tuple[float, ...] = (0.5, 0.9, 0.99)
    # -- online feedback (docs/feedback.md) ---------------------------
    feedback_window: int = 128
    feedback_min_observations: int = 20
    feedback_fast_window: int = 16
    feedback_drift_delta: float = 0.25
    feedback_drift_threshold: float = 12.0
    # -- uncertainty-aware scheduling (docs/scheduling.md) ------------
    scheduler_policy: str = "fifo"
    scheduler_slack: float = 1.645
    scheduler_default_deadline_ms: int = 1000
    scheduler_max_queue: int = 64
    scheduler_quantum_seconds: float = 0.05
    scheduler_queue_timeout_seconds: float = 30.0

    def __post_init__(self):
        if self.scale_factor <= 0:
            raise SessionError(
                f"scale_factor must be positive, got {self.scale_factor}"
            )
        if self.machine not in PROFILES:
            raise SessionError(
                f"unknown machine {self.machine!r}; "
                f"known profiles: {', '.join(sorted(PROFILES))}"
            )
        if self.calibration_repetitions < 2:
            raise SessionError(
                "calibration needs at least 2 repetitions for a variance, "
                f"got {self.calibration_repetitions}"
            )
        if self.estimator not in ESTIMATOR_BACKENDS:
            raise SessionError(
                f"unknown estimator backend {self.estimator!r}; "
                f"expected one of {', '.join(ESTIMATOR_BACKENDS)}"
            )
        if not 0.0 < self.sampling_ratio <= 1.0:
            raise SessionError(
                f"sampling_ratio must be in (0, 1], got {self.sampling_ratio}"
            )
        if self.batch_kernel not in BATCH_KERNELS:
            raise SessionError(
                f"unknown batch kernel {self.batch_kernel!r}; "
                f"expected one of {', '.join(BATCH_KERNELS)}"
            )
        if not self.default_variants:
            raise SessionError("default_variants must name at least one variant")
        try:
            for name in self.default_variants:
                Variant.from_name(name)
        except PredictionError as error:
            raise SessionError(str(error)) from None
        if not self.default_mpls or any(mpl < 1 for mpl in self.default_mpls):
            raise SessionError(
                "default_mpls needs at least one level, all >= 1; "
                f"got {self.default_mpls!r}"
            )
        if not self.default_confidences or any(
            not 0.0 < c < 1.0 for c in self.default_confidences
        ):
            raise SessionError(
                "default_confidences must all lie in (0, 1); "
                f"got {self.default_confidences!r}"
            )
        try:
            self.feedback()
        except FeedbackError as error:
            raise SessionError(str(error)) from None
        if self.scheduler_policy not in SCHEDULER_POLICIES:
            raise SessionError(
                f"unknown scheduler policy {self.scheduler_policy!r}; "
                f"expected one of {', '.join(SCHEDULER_POLICIES)}"
            )
        if not (
            math.isfinite(self.scheduler_slack) and self.scheduler_slack >= 0
        ):
            raise SessionError(
                f"scheduler_slack must be >= 0, got {self.scheduler_slack}"
            )
        if self.scheduler_default_deadline_ms < 1:
            raise SessionError(
                "scheduler_default_deadline_ms must be >= 1, "
                f"got {self.scheduler_default_deadline_ms}"
            )
        if self.scheduler_max_queue < 1:
            raise SessionError(
                f"scheduler_max_queue must be >= 1, "
                f"got {self.scheduler_max_queue}"
            )
        if not (
            math.isfinite(self.scheduler_quantum_seconds)
            and self.scheduler_quantum_seconds > 0
        ):
            raise SessionError(
                "scheduler_quantum_seconds must be > 0, "
                f"got {self.scheduler_quantum_seconds}"
            )
        if not (
            math.isfinite(self.scheduler_queue_timeout_seconds)
            and self.scheduler_queue_timeout_seconds > 0
        ):
            raise SessionError(
                "scheduler_queue_timeout_seconds must be > 0, "
                f"got {self.scheduler_queue_timeout_seconds}"
            )

    def variants(self) -> tuple[Variant, ...]:
        """The default variants resolved to :class:`Variant` members."""
        return tuple(Variant.from_name(name) for name in self.default_variants)

    def feedback(self) -> FeedbackConfig:
        """The ``feedback_*`` fields as one :class:`FeedbackConfig`."""
        return FeedbackConfig(
            window=self.feedback_window,
            min_observations=self.feedback_min_observations,
            fast_window=self.feedback_fast_window,
            drift_delta=self.feedback_drift_delta,
            drift_threshold=self.feedback_drift_threshold,
        )

    def replace(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """A JSON-ready mapping of every field."""
        record = asdict(self)
        for name in ("default_variants", "default_mpls", "default_confidences"):
            record[name] = list(record[name])
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SessionConfig":
        """Rebuild from a mapping, ignoring unknown fields.

        Tolerating unknown keys keeps old servers able to read configs
        written by newer ones — the same policy as the wire schema.
        """
        if not isinstance(record, dict):
            raise SessionError(
                f"session config must be a mapping, got {type(record).__name__}"
            )
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for name, value in record.items():
            if name not in known:
                continue
            if name in ("default_variants", "default_mpls", "default_confidences"):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class ClientConfig:
    """Everything an :class:`~repro.api.client.HttpClient` needs, declaratively.

    Folds the client's retry/backoff knobs (grown one kwarg at a time)
    and the v2 behavior — which wire version to speak, and which tenant
    convenience observations are attributed to — into one JSON
    round-trippable object, mirroring :class:`SessionConfig`.
    """

    # -- transport ----------------------------------------------------
    timeout: float = 60.0
    # -- 503 retry policy (docs/api.md "Client") ----------------------
    retries_503: int = 0
    backoff_seconds: float = 0.05
    backoff_seed: int = 0
    retry_after_cap_seconds: float = 5.0
    # -- v2 behavior --------------------------------------------------
    wire_version: int = 2
    observe_tenant: str = DEFAULT_TENANT

    def __post_init__(self):
        if not (math.isfinite(self.timeout) and self.timeout > 0):
            raise SessionError(f"timeout must be > 0, got {self.timeout}")
        if self.retries_503 < 0:
            raise SessionError(
                f"retries_503 must be >= 0, got {self.retries_503}"
            )
        if not (
            math.isfinite(self.backoff_seconds) and self.backoff_seconds > 0
        ):
            raise SessionError(
                f"backoff_seconds must be > 0, got {self.backoff_seconds}"
            )
        if not (
            math.isfinite(self.retry_after_cap_seconds)
            and self.retry_after_cap_seconds > 0
        ):
            raise SessionError(
                "retry_after_cap_seconds must be > 0, "
                f"got {self.retry_after_cap_seconds}"
            )
        # Local import: wire pulls in the service layer, which config
        # otherwise does not need.
        from .wire import SUPPORTED_SCHEMA_VERSIONS

        if self.wire_version not in SUPPORTED_SCHEMA_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
            raise SessionError(
                f"wire_version must be one of {supported}, "
                f"got {self.wire_version!r}"
            )
        if not isinstance(self.observe_tenant, str) or not self.observe_tenant:
            raise SessionError(
                "observe_tenant must be a non-empty string, "
                f"got {self.observe_tenant!r}"
            )

    def replace(self, **changes) -> "ClientConfig":
        """A copy with ``changes`` applied (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """A JSON-ready mapping of every field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "ClientConfig":
        """Rebuild from a mapping, ignoring unknown fields."""
        if not isinstance(record, dict):
            raise SessionError(
                f"client config must be a mapping, got {type(record).__name__}"
            )
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})
