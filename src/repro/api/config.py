"""The declarative session configuration.

One :class:`SessionConfig` describes everything a
:class:`~repro.api.session.Session` owns: the database source (TPC-H
generation parameters), the calibration profile (machine + seed +
repetitions), the selectivity-estimator backend chosen **by name**
("sampling" — the paper's Algorithm 1 — or "histogram", the
catalog-statistics alternative), both cache budgets, and the default
variant/multiprogramming/confidence fan-out applied to requests that do
not spell their own.

The config is itself a wire object: :meth:`to_dict`/:meth:`from_dict`
round-trip through JSON with unknown-field tolerance, so a serving
deployment can keep its predictor configuration in a plain JSON file.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

from ..core.predictor import Variant
from ..costfuncs.fitting import DEFAULT_GRID_W
from ..errors import PredictionError, SessionError
from ..hardware import PROFILES
from ..sampling.engine import DEFAULT_ENGINE_BUDGET_BYTES

__all__ = ["ESTIMATOR_BACKENDS", "SessionConfig"]

#: The selectivity-estimator backends selectable by name.
ESTIMATOR_BACKENDS = ("sampling", "histogram")


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to build a predictor stack, declaratively."""

    # -- database source (TPC-H generation is deterministic and fast) --
    scale_factor: float = 0.02
    skew_z: float = 0.0
    db_seed: int = 0
    # -- calibration profile ------------------------------------------
    machine: str = "PC2"
    calibration_seed: int = 0
    calibration_repetitions: int = 10
    # -- estimator backend --------------------------------------------
    estimator: str = "sampling"
    sampling_ratio: float = 0.05
    num_copies: int = 2
    sampling_seed: int = 1
    use_gee: bool = False
    grid_w: int = DEFAULT_GRID_W
    # -- cache budgets ------------------------------------------------
    prepared_cache_size: int = 256
    sampling_engine_bytes: int = DEFAULT_ENGINE_BUDGET_BYTES
    # -- request defaults ---------------------------------------------
    default_variants: tuple[str, ...] = ("all",)
    default_mpls: tuple[int, ...] = (1,)
    default_confidences: tuple[float, ...] = (0.5, 0.9, 0.99)

    def __post_init__(self):
        if self.scale_factor <= 0:
            raise SessionError(
                f"scale_factor must be positive, got {self.scale_factor}"
            )
        if self.machine not in PROFILES:
            raise SessionError(
                f"unknown machine {self.machine!r}; "
                f"known profiles: {', '.join(sorted(PROFILES))}"
            )
        if self.calibration_repetitions < 2:
            raise SessionError(
                "calibration needs at least 2 repetitions for a variance, "
                f"got {self.calibration_repetitions}"
            )
        if self.estimator not in ESTIMATOR_BACKENDS:
            raise SessionError(
                f"unknown estimator backend {self.estimator!r}; "
                f"expected one of {', '.join(ESTIMATOR_BACKENDS)}"
            )
        if not 0.0 < self.sampling_ratio <= 1.0:
            raise SessionError(
                f"sampling_ratio must be in (0, 1], got {self.sampling_ratio}"
            )
        if not self.default_variants:
            raise SessionError("default_variants must name at least one variant")
        try:
            for name in self.default_variants:
                Variant.from_name(name)
        except PredictionError as error:
            raise SessionError(str(error)) from None
        if not self.default_mpls or any(mpl < 1 for mpl in self.default_mpls):
            raise SessionError(
                "default_mpls needs at least one level, all >= 1; "
                f"got {self.default_mpls!r}"
            )
        if not self.default_confidences or any(
            not 0.0 < c < 1.0 for c in self.default_confidences
        ):
            raise SessionError(
                "default_confidences must all lie in (0, 1); "
                f"got {self.default_confidences!r}"
            )

    def variants(self) -> tuple[Variant, ...]:
        """The default variants resolved to :class:`Variant` members."""
        return tuple(Variant.from_name(name) for name in self.default_variants)

    def replace(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """A JSON-ready mapping of every field."""
        record = asdict(self)
        for name in ("default_variants", "default_mpls", "default_confidences"):
            record[name] = list(record[name])
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SessionConfig":
        """Rebuild from a mapping, ignoring unknown fields.

        Tolerating unknown keys keeps old servers able to read configs
        written by newer ones — the same policy as the wire schema.
        """
        if not isinstance(record, dict):
            raise SessionError(
                f"session config must be a mapping, got {type(record).__name__}"
            )
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for name, value in record.items():
            if name not in known:
                continue
            if name in ("default_variants", "default_mpls", "default_confidences"):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)
