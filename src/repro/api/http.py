"""The stdlib-only HTTP/JSON serving front-end.

``repro serve`` binds one :class:`~repro.api.session.Session` behind a
threaded HTTP server speaking the versioned wire schema
(:mod:`repro.api.wire`):

* ``POST /v1/predict``        — one :class:`PredictRequest` body
* ``POST /v1/predict-batch``  — one :class:`BatchRequest` body
* ``GET  /v1/healthz``        — liveness + schema version
* ``GET  /v1/stats``          — the serving :class:`ServiceReport`

Since the layered-serving refactor this module is the single-process
*composition* of the :mod:`repro.serving` layers — a
:class:`~repro.serving.transport.HttpTransport` dispatching into
``AdmissionGate(SessionApp(session))`` — kept as the stable import
surface (``build_server`` / :class:`ApiHTTPServer`) and bitwise
response-compatible with the pre-refactor monolithic server. The
layers themselves (transport, admission policies, consistent-hash
routing, the pre-fork :class:`~repro.serving.pool.WorkerPool`) are
documented in ``docs/serving.md``.

Error taxonomy: library errors map to structured JSON bodies with a
stable ``code`` field (:func:`repro.errors.error_code`). Malformed SQL
is a **400** carrying the parser's message, other library failures are
422, malformed payloads/versions are 400, and anything escaping the
hierarchy is a 500 — the server never answers a prediction request with
a bare traceback.

Admission is bounded: at most ``max_in_flight`` predictions may be in
progress at once; excess requests are refused immediately with 503
(code ``"over-capacity"``) and a queue-depth-derived ``Retry-After``
header rather than queued without bound. A slot covers reading the
body and computing the prediction, and is released *before* the
response is written — so N serial (closed-loop) clients are never
spuriously refused under an N-slot cap. Health/stats probes are never
metered.
"""

from __future__ import annotations

from ..serving.admission import (
    DEFAULT_MAX_IN_FLIGHT,
    AdmissionGate,
    build_admission,
)
from ..serving.app import SessionApp
from ..serving.transport import HttpTransport, status_for_error
from .session import Session

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "ApiHTTPServer",
    "build_server",
    "status_for_error",
]


class ApiHTTPServer(HttpTransport):
    """A threaded HTTP server bound to one session, with admission.

    The single-process serving stack: ``AdmissionGate(SessionApp)``
    behind one :class:`~repro.serving.transport.HttpTransport`. The
    pre-refactor server's surface — ``session``, ``max_in_flight``,
    :meth:`admit`/:meth:`release`, :meth:`health`, ``url`` — is
    preserved for callers and tests that poke the layers directly.
    """

    def __init__(
        self,
        session: Session,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    ):
        self.session = session
        self.max_in_flight = max_in_flight
        self._policy = build_admission(session, max_in_flight)
        super().__init__(
            AdmissionGate(SessionApp(session), self._policy), address
        )

    def admit(self) -> bool:
        """Try to claim one in-flight slot; False when at capacity."""
        return self._policy.admit()

    def release(self) -> None:
        """Give back an in-flight slot claimed by :meth:`admit`."""
        self._policy.release()

    def health(self) -> dict:
        """The liveness payload: schema version, uptime, traffic counter."""
        return self.app.health()


def build_server(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
) -> ApiHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks an ephemeral one.

    Call ``serve_forever()`` on the result (typically from a dedicated
    thread) and ``shutdown()`` + ``server_close()`` to stop.
    """
    return ApiHTTPServer(session, (host, port), max_in_flight=max_in_flight)
