"""The stdlib-only HTTP/JSON serving front-end.

``repro serve`` binds one :class:`~repro.api.session.Session` behind a
threaded HTTP server speaking the versioned wire schema
(:mod:`repro.api.wire`):

* ``POST /v1/predict``        — one :class:`PredictRequest` body
* ``POST /v1/predict-batch``  — one :class:`BatchRequest` body
* ``GET  /v1/healthz``        — liveness + schema version
* ``GET  /v1/stats``          — the serving :class:`ServiceReport`

Error taxonomy: library errors map to structured JSON bodies with a
stable ``code`` field (:func:`repro.errors.error_code`). Malformed SQL
is a **400** carrying the parser's message, other library failures are
422, malformed payloads/versions are 400, and anything escaping the
hierarchy is a 500 — the server never answers a prediction request with
a bare traceback.

Admission is bounded: at most ``max_in_flight`` predictions may be in
progress at once; excess requests are refused immediately with 503
(code ``"over-capacity"``) rather than queued without bound. A slot
covers reading the body and computing the prediction, and is released
*before* the response is written — so N serial (closed-loop) clients
are never spuriously refused under an N-slot cap. Health/stats probes
are never metered.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError, SqlError, WireError
from .session import Session
from .wire import (
    SCHEMA_VERSION,
    BatchRequest,
    PredictRequest,
    dumps,
    error_body,
    loads,
    service_report_to_dict,
)

__all__ = ["ApiHTTPServer", "build_server", "status_for_error"]

DEFAULT_MAX_IN_FLIGHT = 8


def status_for_error(error: BaseException) -> int:
    """The HTTP status for a failed request, per the error taxonomy."""
    if isinstance(error, (SqlError, WireError)):
        return 400
    if isinstance(error, ReproError):
        return 422
    return 500


class ApiHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one session, with admission."""

    daemon_threads = True

    def __init__(
        self,
        session: Session,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    ):
        if max_in_flight < 1:
            raise WireError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        super().__init__(address, _ApiRequestHandler)
        self.session = session
        self.max_in_flight = max_in_flight
        self._admission = threading.BoundedSemaphore(max_in_flight)
        self._started = time.monotonic()

    @property
    def url(self) -> str:
        """The base URL the server is reachable at."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def admit(self) -> bool:
        """Try to claim one in-flight slot; False when at capacity."""
        return self._admission.acquire(blocking=False)

    def release(self) -> None:
        """Give back an in-flight slot claimed by :meth:`admit`."""
        self._admission.release()

    def health(self) -> dict:
        """The liveness payload: schema version, uptime, traffic counter."""
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "queries_served": self.session.service.stats.queries_served,
            "max_in_flight": self.max_in_flight,
        }


def build_server(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
) -> ApiHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks an ephemeral one.

    Call ``serve_forever()`` on the result (typically from a dedicated
    thread) and ``shutdown()`` + ``server_close()`` to stop.
    """
    return ApiHTTPServer(session, (host, port), max_in_flight=max_in_flight)


class _ApiRequestHandler(BaseHTTPRequestHandler):
    """Routes the four ``/v1`` endpoints onto the bound session."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    # Bounds every socket read/write. Without it a client declaring a
    # Content-Length it never delivers would block rfile.read() forever
    # *while holding an admission slot* — max_in_flight such clients
    # would wedge the server permanently.
    timeout = 60

    # The default handler logs every request line to stderr; serving
    # benchmarks would drown in it.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    # -- plumbing ----------------------------------------------------------
    def _send_json(self, status: int, record: dict, retry_after: bool = False):
        body = dumps(record).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, error: BaseException):
        # Any error path may leave declared body bytes unread; under
        # HTTP/1.1 keep-alive those would be parsed as the next request
        # line and desync the connection. Closing is always safe.
        self.close_connection = True
        self._send_json(status_for_error(error), error_body(error))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise WireError("request needs a JSON body with Content-Length")
        return loads(self.rfile.read(length))

    def _not_found(self):
        self.close_connection = True  # request body (if any) was not drained
        self._send_json(404, {
            "schema_version": SCHEMA_VERSION,
            "error": {
                "code": "not-found",
                "type": "NotFound",
                "message": f"unknown endpoint {self.path!r}; known: "
                "/v1/predict, /v1/predict-batch, /v1/healthz, /v1/stats",
            },
        })

    def _over_capacity(self):
        self.close_connection = True  # refused before reading the body
        self._send_json(503, {
            "schema_version": SCHEMA_VERSION,
            "error": {
                "code": "over-capacity",
                "type": "OverCapacity",
                "message": f"server is at its in-flight limit "
                f"({self.server.max_in_flight}); retry shortly",
            },
        }, retry_after=True)

    # -- routes ------------------------------------------------------------
    def do_GET(self):  # noqa: N802 — stdlib naming
        try:
            if self.path == "/v1/healthz":
                self._send_json(200, self.server.health())
            elif self.path == "/v1/stats":
                report = self.server.session.stats()
                self._send_json(200, service_report_to_dict(report))
            else:
                self._not_found()
        except Exception as error:  # noqa: BLE001 — HTTP boundary
            self._send_error_body(error)

    def do_POST(self):  # noqa: N802 — stdlib naming
        if self.path not in ("/v1/predict", "/v1/predict-batch"):
            self._not_found()
            return
        if not self.server.admit():
            self._over_capacity()
            return
        # The slot covers body read + prediction, and is released
        # *before* the response is written: a client cannot issue its
        # next request until it has read this response, so releasing
        # first guarantees N serial clients never see a spurious 503
        # under an N-slot cap. Releasing after the write (the old
        # order) left a window where the finished handler still held
        # the slot while the client's next request was already being
        # admitted — closed-loop replay at clients == max_in_flight
        # flushed that race out.
        try:
            try:
                record = self._read_body()
                if self.path == "/v1/predict":
                    response = self.server.session.predict(
                        PredictRequest.from_dict(record)
                    )
                else:
                    response = self.server.session.predict_batch(
                        BatchRequest.from_dict(record)
                    )
            finally:
                self.server.release()
            self._send_json(200, response.to_dict())
        except Exception as error:  # noqa: BLE001 — HTTP boundary
            self._send_error_body(error)

    def do_PUT(self):  # noqa: N802 — stdlib naming
        self._method_not_allowed()

    def do_DELETE(self):  # noqa: N802 — stdlib naming
        self._method_not_allowed()

    def _method_not_allowed(self):
        self.close_connection = True  # request body (if any) was not drained
        self._send_json(405, {
            "schema_version": SCHEMA_VERSION,
            "error": {
                "code": "method-not-allowed",
                "type": "MethodNotAllowed",
                "message": f"{self.command} is not supported on {self.path!r}",
            },
        })

