"""The session facade: one object that owns the whole predictor stack.

A :class:`Session` is built from one declarative
:class:`~repro.api.config.SessionConfig` and assembles everything the
hand-wired consumers used to stitch together themselves — database,
hardware simulator, calibrated cost units, and the
:class:`~repro.service.PredictionService` engine with both cache layers.
It exposes the typed wire objects
(:class:`~repro.api.wire.PredictRequest` →
:class:`~repro.api.wire.PredictResponse`) plus lifecycle:
``warmup()``, ``stats()``, ``close()``, and context-manager use.

The facade is thread-safe (one lock serializes predictions — the engine
below shares mutable caches), which is what lets the HTTP front-end
(:mod:`repro.api.http`) drive one session from a threaded server.
``PredictionService`` remains fully usable directly; it is the internal
engine, the session is the front door.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..calibration import Calibrator
from ..calibration.calibrator import CalibratedUnits
from ..core.predictor import Variant
from ..datagen import TpchConfig, generate_tpch
from ..errors import SessionError, WireError
from ..feedback import DEFAULT_TENANT, FeedbackRecalibrator
from ..hardware import PROFILES, HardwareSimulator
from ..service.service import (
    BatchPrediction,
    PredictionService,
    QueryPrediction,
)
from ..storage import Database
from .config import SessionConfig
from .wire import (
    BatchRequest,
    BatchResponse,
    FeedbackApplied,
    IntervalPayload,
    Observation,
    ObserveResponse,
    PredictRequest,
    PredictResponse,
    ResultPayload,
    StatsSnapshot,
    _validate_fanout,
)

__all__ = ["Session"]


class Session:
    """The transport-agnostic front door to the predictor stack."""

    def __init__(self, config: SessionConfig | None = None):
        """Build the full stack from ``config`` (defaults when omitted).

        Generation and calibration are deterministic given the config,
        so constructing a session twice yields bitwise-identical
        predictors.
        """
        self._config = config or SessionConfig()
        self._database = generate_tpch(
            TpchConfig(
                scale_factor=self._config.scale_factor,
                skew_z=self._config.skew_z,
                seed=self._config.db_seed,
            )
        )
        self._simulator = HardwareSimulator(
            PROFILES[self._config.machine], rng=self._config.calibration_seed
        )
        self._units = Calibrator(
            self._simulator, repetitions=self._config.calibration_repetitions
        ).calibrate()
        self._finish_init()

    @classmethod
    def from_components(
        cls,
        database: Database,
        units: CalibratedUnits,
        config: SessionConfig | None = None,
        simulator: HardwareSimulator | None = None,
    ) -> "Session":
        """Wrap an existing database + calibration in a session.

        The bridge from the hand-wired era: callers that already hold a
        :class:`~repro.storage.Database` and
        :class:`~repro.calibration.CalibratedUnits` (tests, experiment
        labs) get the facade without regenerating either. The config's
        database/calibration fields are ignored; its estimator, cache,
        and default-fan-out fields still apply.
        """
        session = cls.__new__(cls)
        session._config = config or SessionConfig()
        session._database = database
        session._simulator = simulator
        session._units = units
        session._finish_init()
        return session

    def _finish_init(self) -> None:
        config = self._config
        # staticcheck: disable=lock-discipline — construction path: runs
        # before the session object is published to any other thread, so
        # these writes happen-before every locked access.
        self._service = PredictionService(
            self._database,
            self._units,
            sampling_ratio=config.sampling_ratio,
            num_copies=config.num_copies,
            seed=config.sampling_seed,
            grid_w=config.grid_w,
            use_gee=config.use_gee,
            method=config.estimator,
            cache_size=config.prepared_cache_size,
            sampling_engine_bytes=config.sampling_engine_bytes,
            batch_kernel=config.batch_kernel,
        )
        self._feedback = FeedbackRecalibrator(config.feedback())
        self._lock = threading.RLock()
        self._closed = False  # staticcheck: disable=lock-discipline — construction happens-before sharing

    # -- introspection -----------------------------------------------------
    @property
    def config(self) -> SessionConfig:
        return self._config

    @property
    def database(self) -> Database:
        return self._database

    @property
    def units(self) -> CalibratedUnits:
        return self._units

    @property
    def simulator(self) -> HardwareSimulator:
        """The calibration simulator (ground-truth executions reuse it)."""
        if self._simulator is None:
            raise SessionError(
                "this session was built from components without a simulator"
            )
        return self._simulator

    @property
    def service(self) -> PredictionService:
        """The internal serving engine (advanced/diagnostic use)."""
        return self._service

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ---------------------------------------------------------
    def warmup(self, queries: Iterable[str] | None = None) -> int:
        """Pre-plan and pre-prepare queries so first requests serve warm.

        With ``queries=None``, one instantiation of every TPC-H template
        is pushed through the engine. Returns the number of queries that
        warmed successfully (failures are skipped, not raised).
        """
        if queries is None:
            from ..util import ensure_rng
            from ..workloads.tpch_templates import TPCH_TEMPLATES

            rng = ensure_rng(self._config.db_seed)
            queries = [
                template.instantiate(rng) for template in TPCH_TEMPLATES
            ]
        with self._lock:
            self._ensure_open()
            batch = self._service.predict_batch(
                queries,
                variants=self._config.variants(),
                mpls=self._config.default_mpls,
                skip_failures=True,
            )
        return len(batch)

    def stats(self) -> StatsSnapshot:
        """A point-in-time snapshot of serving counters and cache stats.

        Returns the typed :class:`~repro.api.wire.StatsSnapshot`: the
        engine's :class:`~repro.service.ServiceReport` (whose attribute
        surface the snapshot delegates, so pre-v2 callers keep working)
        plus the feedback loop's per-tenant calibration state.

        Safe — and non-blocking — to call concurrently with traffic:
        the engine copies each layer's counters atomically under that
        layer's own lock (see :meth:`PredictionService.report
        <repro.service.PredictionService.report>`), so a monitoring
        probe neither observes torn :class:`~repro.caching.CacheStats`
        nor waits behind an in-flight batch holding the session lock.
        The feedback snapshot likewise copies under the recalibrator's
        own short-held lock.
        """
        return StatsSnapshot(
            report=self._service.report(),
            feedback=self._feedback.stats(),
        )

    def close(self) -> None:
        """Release cached artifacts; further predictions raise.

        Idempotent. The session holds no OS resources — closing exists
        so pooled deployments can drop the (potentially large) sample
        and prepared-artifact caches deterministically.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._service.prepared_cache.clear()
            engine = self._service.sampling_engine
            if engine is not None:
                engine.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    # -- planning ----------------------------------------------------------
    def plan(self, sql: str):
        """Plan one SQL string through the engine's memoized optimizer."""
        with self._lock:
            self._ensure_open()
            return self._service.plan(sql)

    def explain(self, sql: str) -> str:
        """The optimized plan of ``sql``, rendered for humans."""
        return self.plan(sql).explain()

    # -- serving -----------------------------------------------------------
    def predict(self, request: PredictRequest | str) -> PredictResponse:
        """Serve one prediction request (a bare SQL string is accepted)."""
        if isinstance(request, str):
            request = PredictRequest(sql=request)
        variants, mpls, confidences = self._fanout(
            request.variants, request.mpls, request.confidences
        )
        with self._lock:
            self._ensure_open()
            prediction = self._service.predict_query(
                request.sql, variants=variants, mpls=mpls
            )
        tenant = request.tenant if request.tenant is not None else DEFAULT_TENANT
        return self._response(prediction, request.sql, confidences, tenant)

    def predict_batch(
        self, batch: BatchRequest | Sequence[str]
    ) -> BatchResponse:
        """Serve a whole batch (a sequence of SQL strings is accepted).

        With the default ``skip_failures=True`` a query that cannot be
        planned or predicted becomes a coded
        :class:`~repro.service.QueryFailure` in the response instead of
        failing the batch.

        The engine runs the batch with its configured ``batch_kernel``
        (:attr:`SessionConfig.batch_kernel`); the resolved confidence
        fan-out is passed down so the SoA kernel can precompute every
        interval bound in the same array pass. Both kernels serve
        bitwise-identical responses.
        """
        if not isinstance(batch, BatchRequest):
            batch = BatchRequest(queries=tuple(batch))
        variants, mpls, confidences = self._fanout(
            batch.variants, batch.mpls, batch.confidences
        )
        with self._lock:
            self._ensure_open()
            served: BatchPrediction = self._service.predict_batch(
                batch.queries,
                variants=variants,
                mpls=mpls,
                skip_failures=batch.skip_failures,
                confidences=confidences,
            )
        tenant = batch.tenant if batch.tenant is not None else DEFAULT_TENANT
        responses = []
        successes = iter(served.predictions)
        failed_indexes = {failure.index for failure in served.failures}
        for index, sql in enumerate(batch.queries):
            if index in failed_indexes:
                continue
            responses.append(
                self._response(next(successes), sql, confidences, tenant)
            )
        return BatchResponse(
            responses=tuple(responses),
            failures=tuple(served.failures),
            elapsed_seconds=served.elapsed_seconds,
            stats=served.stats,
        )

    def estimate(self, sql: str) -> tuple[float, float]:
        """Predicted ``(mean, std)`` seconds for ``sql`` — the scheduler's ticket.

        Runs the engine's cached prepare path for the first default
        variant at MPL 1: behind the prepared caches this is a hash
        lookup plus convolution, cheap enough to run at *enqueue* time
        for every deferred request. It does bump the serving counters
        (the scheduler's estimates are real predictions); the FIFO
        admission path never calls it, so counter parity with the
        pre-scheduler stack is preserved there.
        """
        variant = Variant.from_name(self._config.default_variants[0])
        with self._lock:
            self._ensure_open()
            prediction = self._service.predict_query(
                sql, variants=(variant,), mpls=(1,)
            )
        result = prediction.results[(variant, 1)]
        return result.mean, result.std

    # -- feedback ----------------------------------------------------------
    def observe(self, observation: Observation) -> ObserveResponse:
        """Feed one actual runtime back into the calibration loop.

        When the observation carries ``predicted_mean``/``predicted_std``
        (the distribution the caller was served) the residual is formed
        directly; otherwise the session re-predicts ``sql`` at the
        observation's ``(variant, mpl)`` to recover them — cheap behind
        the prepared caches, but it does bump the serving counters.

        Observations move only their own tenant's calibration window;
        a session that never observes serves bitwise-identical responses
        to the pre-feedback stack.
        """
        if not isinstance(observation, Observation):
            raise WireError(
                "observe() needs a repro.api.Observation, "
                f"got {type(observation).__name__}"
            )
        mean = observation.predicted_mean
        std = observation.predicted_std
        if mean is None:
            variant = Variant.from_name(observation.variant)
            with self._lock:
                self._ensure_open()
                prediction = self._service.predict_query(
                    observation.sql,
                    variants=(variant,),
                    mpls=(observation.mpl,),
                )
            result = prediction.results[(variant, observation.mpl)]
            mean, std = result.mean, result.std
        outcome = self._feedback.observe(
            observation.tenant, mean, std, observation.actual_seconds
        )
        return ObserveResponse(
            tenant=outcome.tenant,
            observations=outcome.observations,
            window_fill=outcome.window_fill,
            active=outcome.active,
            drift_detected=outcome.drift_detected,
            drifts_total=outcome.drifts_total,
            scale=outcome.scale,
        )

    # -- internals ---------------------------------------------------------
    def _fanout(self, variants, mpls, confidences):
        """Resolve request-level overrides against the config defaults.

        Validation delegates to the one wire-schema validator
        (:func:`repro.api.wire._validate_fanout`), so callers bypassing
        the typed request objects hit the same rules and the same error
        taxonomy (WireError -> HTTP 400) as everyone else.
        """
        names = variants if variants is not None else self._config.default_variants
        mpls = tuple(mpls) if mpls is not None else self._config.default_mpls
        confidences = (
            tuple(confidences)
            if confidences is not None
            else self._config.default_confidences
        )
        _validate_fanout(names, mpls, confidences)
        resolved = tuple(Variant.from_name(name) for name in names)
        return resolved, mpls, confidences

    def _response(
        self,
        prediction: QueryPrediction,
        sql: str,
        confidences: tuple[float, ...],
        tenant: str,
    ) -> PredictResponse:
        # The conformal correction: while the tenant's feedback window
        # is inactive this is None and the static-profile path below is
        # untouched — observe-free serving stays bitwise-identical to
        # the pre-feedback stack.
        correction = self._feedback.scales_for(tenant, confidences)
        applied = False
        payloads = []
        for (variant, mpl), result in prediction.results.items():
            intervals = []
            for index, confidence in enumerate(confidences):
                scale = None if correction is None else correction[1][index]
                if scale is None:
                    low, high = result.confidence_interval(confidence)
                else:
                    # Same clamping contract as confidence_interval():
                    # predicted times are nonnegative.
                    low = max(result.mean - scale * result.std, 0.0)
                    high = max(result.mean + scale * result.std, 0.0)
                    applied = True
                intervals.append(IntervalPayload(confidence, low, high))
            payloads.append(
                ResultPayload(
                    variant=variant.wire_name,
                    mpl=mpl,
                    mean=result.mean,
                    variance=result.distribution.variance,
                    std=result.std,
                    intervals=tuple(intervals),
                )
            )
        feedback = None
        if applied:
            feedback = FeedbackApplied(
                tenant=tenant,
                observations=correction[0],
                scales=tuple(zip(confidences, correction[1])),
            )
        return PredictResponse(
            sql=sql,
            results=tuple(payloads),
            prepare_was_cached=prediction.prepare_was_cached,
            feedback=feedback,
        )
