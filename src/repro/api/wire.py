"""The versioned wire schema: typed request/response objects + JSON.

Every object that crosses a process boundary lives here: requests,
responses, per-(variant, mpl) result payloads, confidence intervals,
per-query failures, serving stats, and structured error bodies. Each has
``to_dict``/``from_dict`` and round-trips **bitwise** through JSON
(Python's float repr is exact), which is what lets the HTTP front-end
promise byte-identical means/variances/interval bounds to an in-process
:class:`~repro.api.session.Session`.

Versioning policy:

* every top-level payload carries ``schema_version`` (currently
  :data:`SCHEMA_VERSION`);
* readers accept every version in :data:`SUPPORTED_SCHEMA_VERSIONS`
  and **reject** anything else (:class:`~repro.errors.WireError`, code
  ``"schema-version"``);
* writers can **down-convert**: every top-level ``to_dict`` takes a
  ``version`` argument and emits exactly that version's shape — v2
  emits the feedback/admission extensions, v1 drops them and restamps,
  byte-identical to what a v1-era server wrote. This is how a v2
  server answers a v1 client without the client noticing anything;
* readers **tolerate unknown fields** (ignored on decode), so additive
  evolution does not break deployed clients;
* a payload without ``schema_version`` is assumed current — friendlier
  to hand-written curl bodies.

Version 2 adds the online-feedback surface: :class:`Observation` /
:class:`ObserveResponse` (the ``/v1/observe`` exchange), an optional
``tenant`` on requests, an optional ``feedback`` annotation on
responses whose intervals were conformally corrected, and the typed
:class:`StatsSnapshot` whose v2 wire form carries ``admission`` and
``feedback`` sections alongside the v1 report keys. Observation-family
payloads are v2-only: asking for their v1 form raises rather than
silently dropping data.

Serialization refuses NaN/inf (``allow_nan=False``): a variance-0 point
mass serializes as ``std == 0`` with degenerate interval bounds, never
as a non-finite JSON extension token.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from ..caching import CacheStats
from ..core.predictor import Variant
from ..errors import PredictionError, WireError, error_code
from ..feedback.recalibrator import DEFAULT_TENANT, FeedbackStats, TenantFeedback
from ..service.service import QueryFailure, ServiceReport, ServiceStats

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "PredictRequest",
    "BatchRequest",
    "IntervalPayload",
    "ResultPayload",
    "PredictResponse",
    "BatchResponse",
    "Observation",
    "ObserveResponse",
    "FeedbackApplied",
    "AdmissionStats",
    "SchedulerStats",
    "StatsSnapshot",
    "dumps",
    "loads",
    "check_schema_version",
    "check_emit_version",
    "error_body",
    "query_failure_to_dict",
    "query_failure_from_dict",
    "service_stats_to_dict",
    "service_stats_from_dict",
    "cache_stats_to_dict",
    "cache_stats_from_dict",
    "service_report_to_dict",
    "service_report_from_dict",
    "feedback_stats_to_dict",
    "feedback_stats_from_dict",
    "admission_stats_to_dict",
    "admission_stats_from_dict",
    "scheduler_stats_to_dict",
    "scheduler_stats_from_dict",
]

#: The current wire schema version. Bump on any incompatible change.
SCHEMA_VERSION = 2

#: Versions this checkout can read and write. v1 is the pre-feedback
#: schema; v2 adds observations, tenants, and sectioned stats.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

_COUNTER_FIELDS = (
    "queries_served",
    "queries_failed",
    "plans_built",
    "prepares_run",
    "prepare_cache_hits",
    "assemblies",
)

_CACHE_FIELDS = ("hits", "misses", "evictions", "oversized")


# ---------------------------------------------------------------------------
# envelope helpers


def dumps(record: dict, *, indent: int | None = None) -> str:
    """Serialize a wire dict as strict JSON (no NaN/inf extension tokens).

    ``indent`` pretty-prints for human-facing surfaces (the CLI's
    ``--json`` output) while keeping the same NaN/inf rejection as the
    compact wire form.
    """
    try:
        return json.dumps(record, allow_nan=False, sort_keys=True, indent=indent)
    except ValueError as error:
        raise WireError(f"payload is not strict-JSON serializable: {error}") from None


def loads(text: str | bytes) -> dict:
    """Parse a JSON body into a mapping, or raise a structured WireError."""
    try:
        record = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireError(f"body is not valid JSON: {error}", code="bad-json") from None
    if not isinstance(record, dict):
        raise WireError(
            f"expected a JSON object, got {type(record).__name__}"
        )
    return record


def check_schema_version(record: dict) -> int:
    """Reject a payload declaring an unsupported schema version.

    Returns the **declared** version (a missing field is assumed
    current) so readers can branch on it — e.g. serve a v1-shaped
    response to a v1-shaped request.
    """
    version = record.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise WireError(
            f"unsupported schema_version {version!r}; "
            f"this endpoint speaks versions {supported}",
            code="schema-version",
        )
    return version


def check_emit_version(version: int) -> int:
    """Validate a requested *output* version (the ``to_dict`` argument)."""
    if not isinstance(version, int) or isinstance(version, bool) \
            or version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise WireError(
            f"unsupported schema_version {version!r}; "
            f"this endpoint speaks versions {supported}",
            code="schema-version",
        )
    return version


def _finite(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise WireError(f"{what} must be finite, got {value!r}")
    return value


def error_body(error: BaseException, version: int = SCHEMA_VERSION) -> dict:
    """The structured JSON error body for any exception.

    ``code`` is the stable machine-readable field
    (:func:`repro.errors.error_code`); ``type`` names the Python class
    for humans; ``message`` is the exception text (for a parse error,
    the parser's own message). ``version`` stamps the body at the
    requester's negotiated schema version — the error shape itself is
    identical across versions.
    """
    return {
        "schema_version": check_emit_version(version),
        "error": {
            "code": error_code(error),
            "type": type(error).__name__,
            "message": str(error),
        },
    }


# ---------------------------------------------------------------------------
# requests


@dataclass(frozen=True)
class PredictRequest:
    """One query's prediction request.

    ``variants``/``mpls``/``confidences`` left as ``None`` defer to the
    serving session's configured defaults. ``tenant`` (v2) selects the
    per-tenant calibration profile the feedback loop maintains; ``None``
    means the default tenant. ``deadline_ms``/``priority`` (v2) are the
    scheduling hints the uncertainty-aware admission tier dispatches on
    (``docs/scheduling.md``); absent, the request schedules exactly as
    pre-scheduler traffic did.
    """

    sql: str
    variants: tuple[str, ...] | None = None
    mpls: tuple[int, ...] | None = None
    confidences: tuple[float, ...] | None = None
    tenant: str | None = None
    deadline_ms: int | None = None
    priority: int | None = None

    def __post_init__(self):
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise WireError("request needs a non-empty 'sql' string")
        _validate_fanout(self.variants, self.mpls, self.confidences)
        _validate_tenant(self.tenant)
        _validate_scheduling(self.deadline_ms, self.priority)

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form; omitted fan-out fields stay absent (server defaults)."""
        check_emit_version(version)
        record = {"schema_version": version, "sql": self.sql}
        if self.variants is not None:
            record["variants"] = list(self.variants)
        if self.mpls is not None:
            record["mpls"] = [int(mpl) for mpl in self.mpls]
        if self.confidences is not None:
            record["confidences"] = [float(c) for c in self.confidences]
        if self.tenant is not None:
            if version < 2:
                raise WireError(
                    "per-tenant requests need schema_version >= 2; "
                    "drop the tenant or raise the wire version",
                    code="schema-version",
                )
            record["tenant"] = self.tenant
        _emit_scheduling(record, self.deadline_ms, self.priority, version)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "PredictRequest":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        version = check_schema_version(record)
        if "sql" not in record:
            raise WireError("request needs a non-empty 'sql' string")
        return cls(
            sql=record["sql"],
            variants=_optional_tuple(record.get("variants"), str, "variants"),
            mpls=_optional_tuple(record.get("mpls"), int, "mpls"),
            confidences=_optional_tuple(
                record.get("confidences"), float, "confidences"
            ),
            tenant=record.get("tenant") if version >= 2 else None,
            deadline_ms=record.get("deadline_ms") if version >= 2 else None,
            priority=record.get("priority") if version >= 2 else None,
        )


@dataclass(frozen=True)
class BatchRequest:
    """A batch of SQL strings with one shared fan-out.

    ``deadline_ms``/``priority`` (v2) apply to the batch as a whole —
    the scheduler admits a batch as one unit of work.
    """

    queries: tuple[str, ...]
    variants: tuple[str, ...] | None = None
    mpls: tuple[int, ...] | None = None
    confidences: tuple[float, ...] | None = None
    skip_failures: bool = True
    tenant: str | None = None
    deadline_ms: int | None = None
    priority: int | None = None

    def __post_init__(self):
        if not self.queries:
            raise WireError("batch request needs at least one query")
        for sql in self.queries:
            if not isinstance(sql, str) or not sql.strip():
                raise WireError("every batch query must be a non-empty string")
        _validate_fanout(self.variants, self.mpls, self.confidences)
        _validate_tenant(self.tenant)
        _validate_scheduling(self.deadline_ms, self.priority)

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form; omitted fan-out fields stay absent (server defaults)."""
        check_emit_version(version)
        record = {
            "schema_version": version,
            "queries": list(self.queries),
            "skip_failures": self.skip_failures,
        }
        if self.variants is not None:
            record["variants"] = list(self.variants)
        if self.mpls is not None:
            record["mpls"] = [int(mpl) for mpl in self.mpls]
        if self.confidences is not None:
            record["confidences"] = [float(c) for c in self.confidences]
        if self.tenant is not None:
            if version < 2:
                raise WireError(
                    "per-tenant requests need schema_version >= 2; "
                    "drop the tenant or raise the wire version",
                    code="schema-version",
                )
            record["tenant"] = self.tenant
        _emit_scheduling(record, self.deadline_ms, self.priority, version)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "BatchRequest":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        version = check_schema_version(record)
        queries = record.get("queries")
        if not isinstance(queries, (list, tuple)):
            raise WireError("batch request needs a 'queries' list")
        return cls(
            queries=tuple(queries),
            variants=_optional_tuple(record.get("variants"), str, "variants"),
            mpls=_optional_tuple(record.get("mpls"), int, "mpls"),
            confidences=_optional_tuple(
                record.get("confidences"), float, "confidences"
            ),
            skip_failures=bool(record.get("skip_failures", True)),
            tenant=record.get("tenant") if version >= 2 else None,
            deadline_ms=record.get("deadline_ms") if version >= 2 else None,
            priority=record.get("priority") if version >= 2 else None,
        )


def _validate_fanout(variants, mpls, confidences) -> None:
    """Reject an invalid requested fan-out as a payload error.

    Raising :class:`WireError` here (not the engine's PredictionError /
    SessionError deeper down) is what keeps the HTTP contract honest:
    a client sending an unknown variant or ``mpl: 0`` gets a 400
    ``bad-request``, not a 422 internal-looking failure.
    """
    if variants is not None:
        try:
            for name in variants:
                Variant.from_name(name)
        except PredictionError as error:
            raise WireError(str(error)) from None
    if mpls is not None and any(mpl < 1 for mpl in mpls):
        raise WireError(
            f"multiprogramming levels must all be >= 1, got {list(mpls)}"
        )
    if confidences is not None and any(
        not 0.0 < c < 1.0 for c in confidences
    ):
        raise WireError(
            f"confidences must all lie in (0, 1), got {list(confidences)}"
        )


def _validate_tenant(tenant) -> None:
    if tenant is None:
        return
    if not isinstance(tenant, str) or not tenant.strip():
        raise WireError(f"tenant must be a non-empty string, got {tenant!r}")


def _validate_scheduling(deadline_ms, priority) -> None:
    """Reject malformed scheduling hints as payload errors (HTTP 400)."""
    if deadline_ms is not None:
        if (
            not isinstance(deadline_ms, int)
            or isinstance(deadline_ms, bool)
            or deadline_ms < 1
        ):
            raise WireError(
                f"deadline_ms must be a positive integer, got {deadline_ms!r}"
            )
    if priority is not None:
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise WireError(
                f"priority must be an integer, got {priority!r}"
            )


def _emit_scheduling(record, deadline_ms, priority, version) -> None:
    """Stamp the v2-only scheduling hints; refuse them on a v1 wire."""
    if deadline_ms is None and priority is None:
        return
    if version < 2:
        raise WireError(
            "deadline/priority scheduling hints need schema_version >= 2; "
            "drop them or raise the wire version",
            code="schema-version",
        )
    if deadline_ms is not None:
        record["deadline_ms"] = int(deadline_ms)
    if priority is not None:
        record["priority"] = int(priority)


def _optional_tuple(value, convert, what):
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise WireError(f"{what!r} must be a list")
    try:
        return tuple(convert(item) for item in value)
    except (TypeError, ValueError) as error:
        raise WireError(f"bad {what!r} entry: {error}") from None


# ---------------------------------------------------------------------------
# responses


@dataclass(frozen=True)
class IntervalPayload:
    """One central confidence interval, clamped to nonnegative times."""

    confidence: float
    low: float
    high: float

    def to_dict(self) -> dict:
        """Wire form (finite floats enforced)."""
        return {
            "confidence": _finite(self.confidence, "confidence"),
            "low": _finite(self.low, "interval low"),
            "high": _finite(self.high, "interval high"),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "IntervalPayload":
        """Decode one interval record."""
        return cls(
            confidence=float(record["confidence"]),
            low=float(record["low"]),
            high=float(record["high"]),
        )


@dataclass(frozen=True)
class ResultPayload:
    """One (variant, mpl) cell of a prediction fan-out.

    ``std`` is carried redundantly (``sqrt(variance)``) for consumers
    that never want to touch math; the distribution is fully determined
    by ``mean``/``variance``.
    """

    variant: str
    mpl: int
    mean: float
    variance: float
    std: float
    intervals: tuple[IntervalPayload, ...]

    def interval(self, confidence: float) -> IntervalPayload:
        """The requested-confidence interval carried by this result."""
        for interval in self.intervals:
            if interval.confidence == confidence:
                return interval
        raise WireError(
            f"no {confidence!r} interval in this result; carried: "
            f"{sorted(i.confidence for i in self.intervals)}"
        )

    def to_dict(self) -> dict:
        """Wire form of one fan-out cell (finite floats enforced)."""
        return {
            "variant": self.variant,
            "mpl": int(self.mpl),
            "mean": _finite(self.mean, "mean"),
            "variance": _finite(self.variance, "variance"),
            "std": _finite(self.std, "std"),
            "intervals": [interval.to_dict() for interval in self.intervals],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ResultPayload":
        """Decode one fan-out cell."""
        return cls(
            variant=str(record["variant"]),
            mpl=int(record["mpl"]),
            mean=float(record["mean"]),
            variance=float(record["variance"]),
            std=float(record["std"]),
            intervals=tuple(
                IntervalPayload.from_dict(item)
                for item in record.get("intervals", [])
            ),
        )


@dataclass(frozen=True)
class FeedbackApplied:
    """The v2 annotation on a response whose intervals were corrected.

    ``scales`` pairs each requested confidence with the conformal scale
    (multiplier on the predicted std) that replaced the static normal
    quantile — ``None`` entries mean that confidence fell back to the
    static profile (window too small to certify it).
    """

    tenant: str
    observations: int
    scales: tuple[tuple[float, float | None], ...]

    def to_dict(self) -> dict:
        """Wire form (nested inside a v2 response, no version stamp)."""
        return {
            "tenant": self.tenant,
            "observations": int(self.observations),
            "scales": [
                {
                    "confidence": _finite(confidence, "confidence"),
                    "scale": None if scale is None else _finite(scale, "scale"),
                }
                for confidence, scale in self.scales
            ],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "FeedbackApplied":
        """Rebuild the annotation, tolerating unknown fields."""
        return cls(
            tenant=str(record.get("tenant", DEFAULT_TENANT)),
            observations=int(record.get("observations", 0)),
            scales=tuple(
                (
                    float(item["confidence"]),
                    None if item.get("scale") is None else float(item["scale"]),
                )
                for item in record.get("scales", [])
            ),
        )


@dataclass(frozen=True)
class PredictResponse:
    """All requested distributions for one query.

    ``feedback`` (v2) is present only when the serving session's
    feedback loop actually corrected the carried intervals; it is
    dropped in the v1 wire form (the numbers themselves survive).
    """

    sql: str
    results: tuple[ResultPayload, ...]
    prepare_was_cached: bool = False
    feedback: FeedbackApplied | None = None

    def result(self, variant: str = "all", mpl: int = 1) -> ResultPayload:
        """The cell for ``(variant, mpl)``; raises when not requested."""
        key = Variant.from_name(variant).wire_name
        for payload in self.results:
            if payload.variant == key and payload.mpl == mpl:
                return payload
        raise WireError(
            f"no result for variant={variant!r}, mpl={mpl}; carried: "
            f"{sorted((r.variant, r.mpl) for r in self.results)}"
        )

    @property
    def mean(self) -> float:
        return self.results[0].mean

    @property
    def std(self) -> float:
        return self.results[0].std

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form with the schema version stamped."""
        check_emit_version(version)
        record = {
            "schema_version": version,
            "sql": self.sql,
            "prepare_was_cached": self.prepare_was_cached,
            "results": [payload.to_dict() for payload in self.results],
        }
        if version >= 2 and self.feedback is not None:
            record["feedback"] = self.feedback.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "PredictResponse":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        version = check_schema_version(record)
        feedback = None
        if version >= 2 and record.get("feedback") is not None:
            feedback = FeedbackApplied.from_dict(record["feedback"])
        return cls(
            sql=str(record.get("sql", "")),
            results=tuple(
                ResultPayload.from_dict(item)
                for item in record.get("results", [])
            ),
            prepare_was_cached=bool(record.get("prepare_was_cached", False)),
            feedback=feedback,
        )


@dataclass(frozen=True)
class BatchResponse:
    """The serving answer for one batch: responses, failures, counters."""

    responses: tuple[PredictResponse, ...]
    failures: tuple[QueryFailure, ...]
    elapsed_seconds: float
    stats: ServiceStats

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    @property
    def queries_per_second(self) -> float:
        return len(self.responses) / max(self.elapsed_seconds, 1e-12)

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form with the schema version stamped."""
        check_emit_version(version)
        return {
            "schema_version": version,
            "responses": [
                response.to_dict(version) for response in self.responses
            ],
            "failures": [
                query_failure_to_dict(failure) for failure in self.failures
            ],
            "elapsed_seconds": _finite(self.elapsed_seconds, "elapsed_seconds"),
            "stats": service_stats_to_dict(self.stats),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "BatchResponse":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        check_schema_version(record)
        return cls(
            responses=tuple(
                PredictResponse.from_dict(item)
                for item in record.get("responses", [])
            ),
            failures=tuple(
                query_failure_from_dict(item)
                for item in record.get("failures", [])
            ),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            stats=service_stats_from_dict(record.get("stats", {})),
        )


# ---------------------------------------------------------------------------
# service-layer records (failures, counters, reports)


def query_failure_to_dict(failure: QueryFailure) -> dict:
    """Wire form of one per-query failure."""
    return {
        "index": failure.index,
        "sql": failure.sql,
        "error": failure.error,
        "code": failure.code,
    }


def query_failure_from_dict(record: dict) -> QueryFailure:
    """Rebuild a :class:`~repro.service.QueryFailure` from its wire form."""
    return QueryFailure(
        index=int(record["index"]),
        sql=record.get("sql"),
        error=str(record.get("error", "")),
        code=str(record.get("code", "internal")),
    )


def service_stats_to_dict(stats: ServiceStats) -> dict:
    """Wire form of the cumulative serving counters.

    ``prepare_hit_rate`` is included as a derived convenience field,
    ``null`` when there was no prepare traffic (matching the in-process
    ``None``).
    """
    record = {name: getattr(stats, name) for name in _COUNTER_FIELDS}
    record["prepare_hit_rate"] = stats.prepare_hit_rate
    return record


def service_stats_from_dict(record: dict) -> ServiceStats:
    """Rebuild :class:`~repro.service.ServiceStats` (derived fields ignored)."""
    return ServiceStats(
        **{name: int(record.get(name, 0)) for name in _COUNTER_FIELDS}
    )


def cache_stats_to_dict(stats: CacheStats) -> dict:
    """Wire form of one cache layer's hit/miss counters."""
    record = {name: getattr(stats, name) for name in _CACHE_FIELDS}
    record["hit_rate"] = stats.hit_rate
    return record


def cache_stats_from_dict(record: dict) -> CacheStats:
    """Rebuild :class:`~repro.caching.CacheStats` (derived fields ignored)."""
    return CacheStats(
        **{name: int(record.get(name, 0)) for name in _CACHE_FIELDS}
    )


def service_report_to_dict(
    report: ServiceReport, version: int = SCHEMA_VERSION
) -> dict:
    """Wire form of a point-in-time :class:`~repro.service.ServiceReport`."""
    return {
        "schema_version": check_emit_version(version),
        "stats": service_stats_to_dict(report.stats),
        "prepared_cache": cache_stats_to_dict(report.prepared_cache),
        "prepared_entries": report.prepared_entries,
        "sampling_cache": cache_stats_to_dict(report.sampling_cache),
        "sampling_entries": report.sampling_entries,
        "sampling_bytes_used": report.sampling_bytes_used,
        "sampling_bytes_budget": report.sampling_bytes_budget,
    }


def service_report_from_dict(record: dict) -> ServiceReport:
    """Rebuild a :class:`~repro.service.ServiceReport` from its wire form."""
    check_schema_version(record)
    return ServiceReport(
        stats=service_stats_from_dict(record.get("stats", {})),
        prepared_cache=cache_stats_from_dict(record.get("prepared_cache", {})),
        prepared_entries=int(record.get("prepared_entries", 0)),
        sampling_cache=cache_stats_from_dict(record.get("sampling_cache", {})),
        sampling_entries=int(record.get("sampling_entries", 0)),
        sampling_bytes_used=int(record.get("sampling_bytes_used", 0)),
        sampling_bytes_budget=int(record.get("sampling_bytes_budget", 0)),
    )


# ---------------------------------------------------------------------------
# v2: observations and the sectioned stats snapshot


def _require_v2(version: int, what: str) -> int:
    check_emit_version(version)
    if version < 2:
        raise WireError(
            f"{what} require schema_version >= 2", code="schema-version"
        )
    return version


@dataclass(frozen=True)
class Observation:
    """One piece of ground truth fed back into the calibration loop.

    ``predicted_mean``/``predicted_std`` carry the distribution the
    caller was served (both or neither — the residual needs a matched
    pair). When absent the serving session re-predicts ``sql`` at
    ``(variant, mpl)`` to recover them, which is cheap behind the
    prepared-plan caches but does bump the serving counters.
    """

    sql: str
    actual_seconds: float
    tenant: str = DEFAULT_TENANT
    predicted_mean: float | None = None
    predicted_std: float | None = None
    variant: str = "all"
    mpl: int = 1

    def __post_init__(self):
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise WireError("observation needs a non-empty 'sql' string")
        if not isinstance(self.tenant, str) or not self.tenant.strip():
            raise WireError(
                f"tenant must be a non-empty string, got {self.tenant!r}"
            )
        actual = _finite(self.actual_seconds, "actual_seconds")
        if actual < 0:
            raise WireError(f"actual_seconds must be >= 0, got {actual}")
        if (self.predicted_mean is None) != (self.predicted_std is None):
            raise WireError(
                "predicted_mean and predicted_std must be given together"
            )
        if self.predicted_std is not None:
            _finite(self.predicted_mean, "predicted_mean")
            if _finite(self.predicted_std, "predicted_std") < 0:
                raise WireError(
                    f"predicted_std must be >= 0, got {self.predicted_std}"
                )
        _validate_fanout((self.variant,), (self.mpl,), None)

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form (v2-only — v1 has no observation vocabulary)."""
        _require_v2(version, "observations")
        record = {
            "schema_version": version,
            "sql": self.sql,
            "actual_seconds": _finite(self.actual_seconds, "actual_seconds"),
            "tenant": self.tenant,
            "variant": self.variant,
            "mpl": int(self.mpl),
        }
        if self.predicted_mean is not None:
            record["predicted_mean"] = _finite(
                self.predicted_mean, "predicted_mean"
            )
            record["predicted_std"] = _finite(
                self.predicted_std, "predicted_std"
            )
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Observation":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        version = check_schema_version(record)
        if version < 2:
            raise WireError(
                "observations require schema_version >= 2",
                code="schema-version",
            )
        if "sql" not in record:
            raise WireError("observation needs a non-empty 'sql' string")
        if "actual_seconds" not in record:
            raise WireError("observation needs 'actual_seconds'")
        mean = record.get("predicted_mean")
        std = record.get("predicted_std")
        return cls(
            sql=record["sql"],
            actual_seconds=float(record["actual_seconds"]),
            tenant=str(record.get("tenant", DEFAULT_TENANT)),
            predicted_mean=None if mean is None else float(mean),
            predicted_std=None if std is None else float(std),
            variant=str(record.get("variant", "all")),
            mpl=int(record.get("mpl", 1)),
        )


@dataclass(frozen=True)
class ObserveResponse:
    """The ``/v1/observe`` ack: what the observation did to its tenant."""

    tenant: str
    observations: int
    window_fill: int
    active: bool
    drift_detected: bool
    drifts_total: int
    scale: float | None = None

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form (v2-only)."""
        _require_v2(version, "observe acks")
        return {
            "schema_version": version,
            "tenant": self.tenant,
            "observations": int(self.observations),
            "window_fill": int(self.window_fill),
            "active": bool(self.active),
            "drift_detected": bool(self.drift_detected),
            "drifts_total": int(self.drifts_total),
            "scale": None if self.scale is None else _finite(self.scale, "scale"),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ObserveResponse":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        version = check_schema_version(record)
        if version < 2:
            raise WireError(
                "observe acks require schema_version >= 2",
                code="schema-version",
            )
        scale = record.get("scale")
        return cls(
            tenant=str(record.get("tenant", DEFAULT_TENANT)),
            observations=int(record.get("observations", 0)),
            window_fill=int(record.get("window_fill", 0)),
            active=bool(record.get("active", False)),
            drift_detected=bool(record.get("drift_detected", False)),
            drifts_total=int(record.get("drifts_total", 0)),
            scale=None if scale is None else float(scale),
        )


def feedback_stats_to_dict(stats: FeedbackStats) -> dict:
    """Wire form of the feedback section (nested, no version stamp)."""
    return {
        "observations": int(stats.observations),
        "drifts_detected": int(stats.drifts_detected),
        "tenants": [
            {
                "tenant": tenant.tenant,
                "observations": int(tenant.observations),
                "window_fill": int(tenant.window_fill),
                "active": bool(tenant.active),
                "drifts_detected": int(tenant.drifts_detected),
                "last_drift_observation": tenant.last_drift_observation,
                "scale": (
                    None
                    if tenant.scale is None
                    else _finite(tenant.scale, "scale")
                ),
            }
            for tenant in stats.tenants
        ],
    }


def feedback_stats_from_dict(record: dict) -> FeedbackStats:
    """Rebuild a :class:`~repro.feedback.FeedbackStats` section."""
    tenants = []
    for item in record.get("tenants", []):
        last = item.get("last_drift_observation")
        scale = item.get("scale")
        tenants.append(
            TenantFeedback(
                tenant=str(item.get("tenant", DEFAULT_TENANT)),
                observations=int(item.get("observations", 0)),
                window_fill=int(item.get("window_fill", 0)),
                active=bool(item.get("active", False)),
                drifts_detected=int(item.get("drifts_detected", 0)),
                last_drift_observation=None if last is None else int(last),
                scale=None if scale is None else float(scale),
            )
        )
    return FeedbackStats(
        observations=int(record.get("observations", 0)),
        drifts_detected=int(record.get("drifts_detected", 0)),
        tenants=tuple(tenants),
    )


@dataclass(frozen=True)
class AdmissionStats:
    """The admission layer's counters, as a stats section."""

    capacity: int
    in_flight: int
    admitted_total: int
    refused_total: int


def admission_stats_to_dict(stats: AdmissionStats) -> dict:
    """Wire form of the admission section (nested, no version stamp)."""
    return {
        "capacity": int(stats.capacity),
        "in_flight": int(stats.in_flight),
        "admitted_total": int(stats.admitted_total),
        "refused_total": int(stats.refused_total),
    }


def admission_stats_from_dict(record: dict) -> AdmissionStats:
    """Rebuild an :class:`AdmissionStats` section."""
    return AdmissionStats(
        capacity=int(record.get("capacity", 0)),
        in_flight=int(record.get("in_flight", 0)),
        admitted_total=int(record.get("admitted_total", 0)),
        refused_total=int(record.get("refused_total", 0)),
    )


@dataclass(frozen=True)
class SchedulerStats:
    """The scheduling tier's counters, as a stats section (v2).

    ``dispatched_total`` counts requests that waited in the queue
    before getting a slot (the fast path — a free slot with an empty
    queue — admits without dispatching); ``timeouts_total`` counts
    requests that aged out of the queue and were refused.
    """

    policy: str
    queue_depth: int
    queued_predicted_seconds: float
    dispatched_total: int
    timeouts_total: int


def scheduler_stats_to_dict(stats: SchedulerStats) -> dict:
    """Wire form of the scheduler section (nested, no version stamp)."""
    return {
        "policy": str(stats.policy),
        "queue_depth": int(stats.queue_depth),
        "queued_predicted_seconds": _finite(
            stats.queued_predicted_seconds, "queued_predicted_seconds"
        ),
        "dispatched_total": int(stats.dispatched_total),
        "timeouts_total": int(stats.timeouts_total),
    }


def scheduler_stats_from_dict(record: dict) -> SchedulerStats:
    """Rebuild a :class:`SchedulerStats` section."""
    return SchedulerStats(
        policy=str(record.get("policy", "fifo")),
        queue_depth=int(record.get("queue_depth", 0)),
        queued_predicted_seconds=float(
            record.get("queued_predicted_seconds", 0.0)
        ),
        dispatched_total=int(record.get("dispatched_total", 0)),
        timeouts_total=int(record.get("timeouts_total", 0)),
    )


@dataclass(frozen=True)
class StatsSnapshot:
    """The typed stats surface every layer renders from.

    One object carries the engine's :class:`~repro.service.ServiceReport`
    plus the optional v2 sections: the serving tier's admission counters
    and the feedback loop's per-tenant calibration state. Its v1 wire
    form is exactly the flat pre-feedback report (sections dropped,
    version restamped) — byte-identical to what a v1 server wrote — so
    v1 monitors keep parsing ``/v1/stats`` unmodified.

    The :class:`~repro.service.ServiceReport` attribute surface is
    delegated (``stats``, ``prepared_cache``, ...), so existing callers
    of ``Session.stats()`` / ``HttpClient.stats()`` keep working.
    """

    report: ServiceReport
    admission: AdmissionStats | None = None
    feedback: FeedbackStats | None = None
    scheduler: SchedulerStats | None = None

    @property
    def stats(self) -> ServiceStats:
        return self.report.stats

    @property
    def prepared_cache(self) -> CacheStats:
        return self.report.prepared_cache

    @property
    def prepared_entries(self) -> int:
        return self.report.prepared_entries

    @property
    def sampling_cache(self) -> CacheStats:
        return self.report.sampling_cache

    @property
    def sampling_entries(self) -> int:
        return self.report.sampling_entries

    @property
    def sampling_bytes_used(self) -> int:
        return self.report.sampling_bytes_used

    @property
    def sampling_bytes_budget(self) -> int:
        return self.report.sampling_bytes_budget

    def cache_lines(self) -> list[str]:
        """The report's human-readable cache lines (delegated)."""
        return self.report.cache_lines()

    def render(self) -> str:
        """Human-readable rendering: the report plus the v2 sections."""
        lines = [self.report.render()]
        if self.admission is not None:
            lines.append(
                f"admission: capacity {self.admission.capacity}, "
                f"in-flight {self.admission.in_flight}, "
                f"admitted {self.admission.admitted_total}, "
                f"refused {self.admission.refused_total}"
            )
        if self.scheduler is not None:
            lines.append(
                f"scheduler: policy {self.scheduler.policy}, "
                f"queue {self.scheduler.queue_depth} "
                f"({self.scheduler.queued_predicted_seconds:.3f} predicted s), "
                f"dispatched {self.scheduler.dispatched_total}, "
                f"timeouts {self.scheduler.timeouts_total}"
            )
        if self.feedback is not None:
            lines.append(
                f"feedback: {self.feedback.observations} observations, "
                f"{self.feedback.drifts_detected} drifts, "
                f"{len(self.feedback.tenants)} tenant(s)"
            )
            for tenant in self.feedback.tenants:
                scale = (
                    "static" if tenant.scale is None else f"{tenant.scale:.3f}"
                )
                lines.append(
                    f"  tenant {tenant.tenant}: {tenant.observations} obs, "
                    f"window {tenant.window_fill}, scale@0.9 {scale}, "
                    f"{tenant.drifts_detected} drift(s)"
                )
        return "\n".join(lines)

    def to_dict(self, version: int = SCHEMA_VERSION) -> dict:
        """Wire form at ``version``; v1 drops the sections entirely."""
        record = service_report_to_dict(self.report, version=version)
        if version >= 2:
            if self.admission is not None:
                record["admission"] = admission_stats_to_dict(self.admission)
            if self.feedback is not None:
                record["feedback"] = feedback_stats_to_dict(self.feedback)
            if self.scheduler is not None:
                record["scheduler"] = scheduler_stats_to_dict(self.scheduler)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "StatsSnapshot":
        """Decode either version; v1 records yield section-less snapshots."""
        version = check_schema_version(record)
        admission = None
        feedback = None
        scheduler = None
        if version >= 2:
            if record.get("admission") is not None:
                admission = admission_stats_from_dict(record["admission"])
            if record.get("feedback") is not None:
                feedback = feedback_stats_from_dict(record["feedback"])
            if record.get("scheduler") is not None:
                scheduler = scheduler_stats_from_dict(record["scheduler"])
        return cls(
            report=service_report_from_dict(record),
            admission=admission,
            feedback=feedback,
            scheduler=scheduler,
        )
