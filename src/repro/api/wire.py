"""The versioned wire schema: typed request/response objects + JSON.

Every object that crosses a process boundary lives here: requests,
responses, per-(variant, mpl) result payloads, confidence intervals,
per-query failures, serving stats, and structured error bodies. Each has
``to_dict``/``from_dict`` and round-trips **bitwise** through JSON
(Python's float repr is exact), which is what lets the HTTP front-end
promise byte-identical means/variances/interval bounds to an in-process
:class:`~repro.api.session.Session`.

Versioning policy:

* every top-level payload carries ``schema_version`` (currently
  :data:`SCHEMA_VERSION`);
* readers **reject** a different declared version
  (:class:`~repro.errors.WireError`, code ``"schema-version"``) — the
  schema is too young for cross-version adaptation;
* readers **tolerate unknown fields** (ignored on decode), so additive
  evolution does not break deployed clients;
* a payload without ``schema_version`` is assumed current — friendlier
  to hand-written curl bodies.

Serialization refuses NaN/inf (``allow_nan=False``): a variance-0 point
mass serializes as ``std == 0`` with degenerate interval bounds, never
as a non-finite JSON extension token.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from ..caching import CacheStats
from ..core.predictor import Variant
from ..errors import PredictionError, WireError, error_code
from ..service.service import QueryFailure, ServiceReport, ServiceStats

__all__ = [
    "SCHEMA_VERSION",
    "PredictRequest",
    "BatchRequest",
    "IntervalPayload",
    "ResultPayload",
    "PredictResponse",
    "BatchResponse",
    "dumps",
    "loads",
    "check_schema_version",
    "error_body",
    "query_failure_to_dict",
    "query_failure_from_dict",
    "service_stats_to_dict",
    "service_stats_from_dict",
    "cache_stats_to_dict",
    "cache_stats_from_dict",
    "service_report_to_dict",
    "service_report_from_dict",
]

#: The current wire schema version. Bump on any incompatible change.
SCHEMA_VERSION = 1

_COUNTER_FIELDS = (
    "queries_served",
    "queries_failed",
    "plans_built",
    "prepares_run",
    "prepare_cache_hits",
    "assemblies",
)

_CACHE_FIELDS = ("hits", "misses", "evictions", "oversized")


# ---------------------------------------------------------------------------
# envelope helpers


def dumps(record: dict, *, indent: int | None = None) -> str:
    """Serialize a wire dict as strict JSON (no NaN/inf extension tokens).

    ``indent`` pretty-prints for human-facing surfaces (the CLI's
    ``--json`` output) while keeping the same NaN/inf rejection as the
    compact wire form.
    """
    try:
        return json.dumps(record, allow_nan=False, sort_keys=True, indent=indent)
    except ValueError as error:
        raise WireError(f"payload is not strict-JSON serializable: {error}") from None


def loads(text: str | bytes) -> dict:
    """Parse a JSON body into a mapping, or raise a structured WireError."""
    try:
        record = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireError(f"body is not valid JSON: {error}", code="bad-json") from None
    if not isinstance(record, dict):
        raise WireError(
            f"expected a JSON object, got {type(record).__name__}"
        )
    return record


def check_schema_version(record: dict) -> None:
    """Reject a payload declaring a schema version other than ours."""
    version = record.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise WireError(
            f"unsupported schema_version {version!r}; "
            f"this endpoint speaks version {SCHEMA_VERSION}",
            code="schema-version",
        )


def _finite(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise WireError(f"{what} must be finite, got {value!r}")
    return value


def error_body(error: BaseException) -> dict:
    """The structured JSON error body for any exception.

    ``code`` is the stable machine-readable field
    (:func:`repro.errors.error_code`); ``type`` names the Python class
    for humans; ``message`` is the exception text (for a parse error,
    the parser's own message).
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "error": {
            "code": error_code(error),
            "type": type(error).__name__,
            "message": str(error),
        },
    }


# ---------------------------------------------------------------------------
# requests


@dataclass(frozen=True)
class PredictRequest:
    """One query's prediction request.

    ``variants``/``mpls``/``confidences`` left as ``None`` defer to the
    serving session's configured defaults.
    """

    sql: str
    variants: tuple[str, ...] | None = None
    mpls: tuple[int, ...] | None = None
    confidences: tuple[float, ...] | None = None

    def __post_init__(self):
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise WireError("request needs a non-empty 'sql' string")
        _validate_fanout(self.variants, self.mpls, self.confidences)

    def to_dict(self) -> dict:
        """Wire form; omitted fan-out fields stay absent (server defaults)."""
        record = {"schema_version": SCHEMA_VERSION, "sql": self.sql}
        if self.variants is not None:
            record["variants"] = list(self.variants)
        if self.mpls is not None:
            record["mpls"] = [int(mpl) for mpl in self.mpls]
        if self.confidences is not None:
            record["confidences"] = [float(c) for c in self.confidences]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "PredictRequest":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        check_schema_version(record)
        if "sql" not in record:
            raise WireError("request needs a non-empty 'sql' string")
        return cls(
            sql=record["sql"],
            variants=_optional_tuple(record.get("variants"), str, "variants"),
            mpls=_optional_tuple(record.get("mpls"), int, "mpls"),
            confidences=_optional_tuple(
                record.get("confidences"), float, "confidences"
            ),
        )


@dataclass(frozen=True)
class BatchRequest:
    """A batch of SQL strings with one shared fan-out."""

    queries: tuple[str, ...]
    variants: tuple[str, ...] | None = None
    mpls: tuple[int, ...] | None = None
    confidences: tuple[float, ...] | None = None
    skip_failures: bool = True

    def __post_init__(self):
        if not self.queries:
            raise WireError("batch request needs at least one query")
        for sql in self.queries:
            if not isinstance(sql, str) or not sql.strip():
                raise WireError("every batch query must be a non-empty string")
        _validate_fanout(self.variants, self.mpls, self.confidences)

    def to_dict(self) -> dict:
        """Wire form; omitted fan-out fields stay absent (server defaults)."""
        record = {
            "schema_version": SCHEMA_VERSION,
            "queries": list(self.queries),
            "skip_failures": self.skip_failures,
        }
        if self.variants is not None:
            record["variants"] = list(self.variants)
        if self.mpls is not None:
            record["mpls"] = [int(mpl) for mpl in self.mpls]
        if self.confidences is not None:
            record["confidences"] = [float(c) for c in self.confidences]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "BatchRequest":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        check_schema_version(record)
        queries = record.get("queries")
        if not isinstance(queries, (list, tuple)):
            raise WireError("batch request needs a 'queries' list")
        return cls(
            queries=tuple(queries),
            variants=_optional_tuple(record.get("variants"), str, "variants"),
            mpls=_optional_tuple(record.get("mpls"), int, "mpls"),
            confidences=_optional_tuple(
                record.get("confidences"), float, "confidences"
            ),
            skip_failures=bool(record.get("skip_failures", True)),
        )


def _validate_fanout(variants, mpls, confidences) -> None:
    """Reject an invalid requested fan-out as a payload error.

    Raising :class:`WireError` here (not the engine's PredictionError /
    SessionError deeper down) is what keeps the HTTP contract honest:
    a client sending an unknown variant or ``mpl: 0`` gets a 400
    ``bad-request``, not a 422 internal-looking failure.
    """
    if variants is not None:
        try:
            for name in variants:
                Variant.from_name(name)
        except PredictionError as error:
            raise WireError(str(error)) from None
    if mpls is not None and any(mpl < 1 for mpl in mpls):
        raise WireError(
            f"multiprogramming levels must all be >= 1, got {list(mpls)}"
        )
    if confidences is not None and any(
        not 0.0 < c < 1.0 for c in confidences
    ):
        raise WireError(
            f"confidences must all lie in (0, 1), got {list(confidences)}"
        )


def _optional_tuple(value, convert, what):
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise WireError(f"{what!r} must be a list")
    try:
        return tuple(convert(item) for item in value)
    except (TypeError, ValueError) as error:
        raise WireError(f"bad {what!r} entry: {error}") from None


# ---------------------------------------------------------------------------
# responses


@dataclass(frozen=True)
class IntervalPayload:
    """One central confidence interval, clamped to nonnegative times."""

    confidence: float
    low: float
    high: float

    def to_dict(self) -> dict:
        """Wire form (finite floats enforced)."""
        return {
            "confidence": _finite(self.confidence, "confidence"),
            "low": _finite(self.low, "interval low"),
            "high": _finite(self.high, "interval high"),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "IntervalPayload":
        """Decode one interval record."""
        return cls(
            confidence=float(record["confidence"]),
            low=float(record["low"]),
            high=float(record["high"]),
        )


@dataclass(frozen=True)
class ResultPayload:
    """One (variant, mpl) cell of a prediction fan-out.

    ``std`` is carried redundantly (``sqrt(variance)``) for consumers
    that never want to touch math; the distribution is fully determined
    by ``mean``/``variance``.
    """

    variant: str
    mpl: int
    mean: float
    variance: float
    std: float
    intervals: tuple[IntervalPayload, ...]

    def interval(self, confidence: float) -> IntervalPayload:
        """The requested-confidence interval carried by this result."""
        for interval in self.intervals:
            if interval.confidence == confidence:
                return interval
        raise WireError(
            f"no {confidence!r} interval in this result; carried: "
            f"{sorted(i.confidence for i in self.intervals)}"
        )

    def to_dict(self) -> dict:
        """Wire form of one fan-out cell (finite floats enforced)."""
        return {
            "variant": self.variant,
            "mpl": int(self.mpl),
            "mean": _finite(self.mean, "mean"),
            "variance": _finite(self.variance, "variance"),
            "std": _finite(self.std, "std"),
            "intervals": [interval.to_dict() for interval in self.intervals],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ResultPayload":
        """Decode one fan-out cell."""
        return cls(
            variant=str(record["variant"]),
            mpl=int(record["mpl"]),
            mean=float(record["mean"]),
            variance=float(record["variance"]),
            std=float(record["std"]),
            intervals=tuple(
                IntervalPayload.from_dict(item)
                for item in record.get("intervals", [])
            ),
        )


@dataclass(frozen=True)
class PredictResponse:
    """All requested distributions for one query."""

    sql: str
    results: tuple[ResultPayload, ...]
    prepare_was_cached: bool = False

    def result(self, variant: str = "all", mpl: int = 1) -> ResultPayload:
        """The cell for ``(variant, mpl)``; raises when not requested."""
        key = Variant.from_name(variant).wire_name
        for payload in self.results:
            if payload.variant == key and payload.mpl == mpl:
                return payload
        raise WireError(
            f"no result for variant={variant!r}, mpl={mpl}; carried: "
            f"{sorted((r.variant, r.mpl) for r in self.results)}"
        )

    @property
    def mean(self) -> float:
        return self.results[0].mean

    @property
    def std(self) -> float:
        return self.results[0].std

    def to_dict(self) -> dict:
        """Wire form with the schema version stamped."""
        return {
            "schema_version": SCHEMA_VERSION,
            "sql": self.sql,
            "prepare_was_cached": self.prepare_was_cached,
            "results": [payload.to_dict() for payload in self.results],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "PredictResponse":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        check_schema_version(record)
        return cls(
            sql=str(record.get("sql", "")),
            results=tuple(
                ResultPayload.from_dict(item)
                for item in record.get("results", [])
            ),
            prepare_was_cached=bool(record.get("prepare_was_cached", False)),
        )


@dataclass(frozen=True)
class BatchResponse:
    """The serving answer for one batch: responses, failures, counters."""

    responses: tuple[PredictResponse, ...]
    failures: tuple[QueryFailure, ...]
    elapsed_seconds: float
    stats: ServiceStats

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    @property
    def queries_per_second(self) -> float:
        return len(self.responses) / max(self.elapsed_seconds, 1e-12)

    def to_dict(self) -> dict:
        """Wire form with the schema version stamped."""
        return {
            "schema_version": SCHEMA_VERSION,
            "responses": [response.to_dict() for response in self.responses],
            "failures": [
                query_failure_to_dict(failure) for failure in self.failures
            ],
            "elapsed_seconds": _finite(self.elapsed_seconds, "elapsed_seconds"),
            "stats": service_stats_to_dict(self.stats),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "BatchResponse":
        """Decode, tolerating unknown fields, rejecting foreign versions."""
        check_schema_version(record)
        return cls(
            responses=tuple(
                PredictResponse.from_dict(item)
                for item in record.get("responses", [])
            ),
            failures=tuple(
                query_failure_from_dict(item)
                for item in record.get("failures", [])
            ),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            stats=service_stats_from_dict(record.get("stats", {})),
        )


# ---------------------------------------------------------------------------
# service-layer records (failures, counters, reports)


def query_failure_to_dict(failure: QueryFailure) -> dict:
    """Wire form of one per-query failure."""
    return {
        "index": failure.index,
        "sql": failure.sql,
        "error": failure.error,
        "code": failure.code,
    }


def query_failure_from_dict(record: dict) -> QueryFailure:
    """Rebuild a :class:`~repro.service.QueryFailure` from its wire form."""
    return QueryFailure(
        index=int(record["index"]),
        sql=record.get("sql"),
        error=str(record.get("error", "")),
        code=str(record.get("code", "internal")),
    )


def service_stats_to_dict(stats: ServiceStats) -> dict:
    """Wire form of the cumulative serving counters.

    ``prepare_hit_rate`` is included as a derived convenience field,
    ``null`` when there was no prepare traffic (matching the in-process
    ``None``).
    """
    record = {name: getattr(stats, name) for name in _COUNTER_FIELDS}
    record["prepare_hit_rate"] = stats.prepare_hit_rate
    return record


def service_stats_from_dict(record: dict) -> ServiceStats:
    """Rebuild :class:`~repro.service.ServiceStats` (derived fields ignored)."""
    return ServiceStats(
        **{name: int(record.get(name, 0)) for name in _COUNTER_FIELDS}
    )


def cache_stats_to_dict(stats: CacheStats) -> dict:
    """Wire form of one cache layer's hit/miss counters."""
    record = {name: getattr(stats, name) for name in _CACHE_FIELDS}
    record["hit_rate"] = stats.hit_rate
    return record


def cache_stats_from_dict(record: dict) -> CacheStats:
    """Rebuild :class:`~repro.caching.CacheStats` (derived fields ignored)."""
    return CacheStats(
        **{name: int(record.get(name, 0)) for name in _CACHE_FIELDS}
    )


def service_report_to_dict(report: ServiceReport) -> dict:
    """Wire form of a point-in-time :class:`~repro.service.ServiceReport`."""
    return {
        "schema_version": SCHEMA_VERSION,
        "stats": service_stats_to_dict(report.stats),
        "prepared_cache": cache_stats_to_dict(report.prepared_cache),
        "prepared_entries": report.prepared_entries,
        "sampling_cache": cache_stats_to_dict(report.sampling_cache),
        "sampling_entries": report.sampling_entries,
        "sampling_bytes_used": report.sampling_bytes_used,
        "sampling_bytes_budget": report.sampling_bytes_budget,
    }


def service_report_from_dict(record: dict) -> ServiceReport:
    """Rebuild a :class:`~repro.service.ServiceReport` from its wire form."""
    check_schema_version(record)
    return ServiceReport(
        stats=service_stats_from_dict(record.get("stats", {})),
        prepared_cache=cache_stats_from_dict(record.get("prepared_cache", {})),
        prepared_entries=int(record.get("prepared_entries", 0)),
        sampling_cache=cache_stats_from_dict(record.get("sampling_cache", {})),
        sampling_entries=int(record.get("sampling_entries", 0)),
        sampling_bytes_used=int(record.get("sampling_bytes_used", 0)),
        sampling_bytes_budget=int(record.get("sampling_bytes_budget", 0)),
    )
