"""benchreport — the unified benchmark registry and regression guard.

Every ``benchmarks/bench_*.py`` file registers named scenarios that
return structured :class:`Metric` records; ``repro bench`` runs them
(quick or full tier), stamps each :class:`BenchResult` with a
deterministic seed and an environment fingerprint, and emits
``BENCH_<scenario>.json`` plus a ``BENCH_summary.json`` trajectory.
``tools/benchguard.py`` diffs fresh results against committed
baselines with per-kind tolerance bands. See ``docs/benchmarks.md``.
"""

from .context import BenchContext, TIER_QUERY_COUNTS
from .environment import environment_fingerprint, fingerprints_comparable
from .registry import (
    REGISTRY,
    BenchRegistry,
    BenchScenario,
    default_bench_dir,
    load_scenarios,
    register,
)
from .result import BenchResult, Metric
from .runner import SUMMARY_FILENAME, run_scenarios, write_artifacts

__all__ = [
    "BenchContext",
    "BenchRegistry",
    "BenchResult",
    "BenchScenario",
    "Metric",
    "REGISTRY",
    "SUMMARY_FILENAME",
    "TIER_QUERY_COUNTS",
    "default_bench_dir",
    "environment_fingerprint",
    "fingerprints_comparable",
    "load_scenarios",
    "register",
    "run_scenarios",
    "write_artifacts",
]
