"""The shared execution context handed to every scenario.

Mirrors what ``benchmarks/conftest.py`` gives the pytest entry points:
one :class:`~repro.experiments.ExperimentLab` over the full database
grid and one over the small databases only, built lazily and shared by
every scenario of a run. The tier scales the workload: ``full``
reproduces the historical bench-suite numbers, ``quick`` shrinks the
query counts and calibration repetitions so the whole quick tier fits
in a CI smoke budget (a couple of minutes).

Scenarios pick tier-dependent parameters explicitly::

    batch = ctx.pick(quick=16, full=50)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..datagen import generate_tpch
from ..experiments import DATABASE_CONFIGS, ExperimentLab

__all__ = ["BenchContext", "TIER_QUERY_COUNTS"]

#: Per-tier workload shape for the shared labs. The full tier matches
#: the pytest bench suite (benchmarks/conftest.py); quick trades
#: statistical tightness for wall-clock.
TIER_QUERY_COUNTS = {
    "full": {"MICRO": 16, "SELJOIN": 10, "TPCH": 10},
    "quick": {"MICRO": 8, "SELJOIN": 5, "TPCH": 5},
}

TIER_CALIBRATION_REPETITIONS = {"full": 8, "quick": 5}

_SMALL_LABELS = ("uniform-small", "skewed-small")


@dataclass
class BenchContext:
    """Tier, seed, and lazily-built shared labs for one bench run."""

    tier: str = "full"
    seed: int = 0
    _labs: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.tier not in TIER_QUERY_COUNTS:
            raise ValueError(
                f"unknown tier {self.tier!r}; expected one of "
                f"{tuple(TIER_QUERY_COUNTS)}"
            )

    @property
    def quick(self) -> bool:
        return self.tier == "quick"

    def pick(self, *, quick, full):
        """The tier-appropriate one of two parameter values."""
        return quick if self.quick else full

    @property
    def query_counts(self) -> dict[str, int]:
        return dict(TIER_QUERY_COUNTS[self.tier])

    @property
    def calibration_repetitions(self) -> int:
        return TIER_CALIBRATION_REPETITIONS[self.tier]

    def _lab(self, labels: tuple[str, ...]) -> ExperimentLab:
        key = labels
        if key not in self._labs:
            databases = {
                label: generate_tpch(DATABASE_CONFIGS[label]) for label in labels
            }
            self._labs[key] = ExperimentLab(
                databases=databases,
                seed=self.seed,
                query_counts=self.query_counts,
                calibration_repetitions=self.calibration_repetitions,
            )
        return self._labs[key]

    @property
    def lab(self) -> ExperimentLab:
        """The full database grid (uniform/skewed x small/large)."""
        return self._lab(tuple(DATABASE_CONFIGS))

    @property
    def small_lab(self) -> ExperimentLab:
        """Small databases only, for scenarios that sweep many settings."""
        return self._lab(_SMALL_LABELS)

    def best_of(self, func, repetitions: int):
        """``(best wall seconds, last result)`` over N timed calls.

        The shared noise-damping idiom for timing metrics: scenario
        speedups feed tight trajectory bands, so scheduler noise is
        taken out with a min over repeated runs before it reaches the
        guard.
        """
        best = float("inf")
        value = None
        for _ in range(repetitions):
            started = time.perf_counter()
            value = func()
            best = min(best, time.perf_counter() - started)
        return best, value
