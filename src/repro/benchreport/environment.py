"""Environment fingerprinting for benchmark artifacts.

Every :class:`~repro.benchreport.BenchResult` is stamped with the
fingerprint of the machine and toolchain that produced it, so a
baseline diff across machines (different CPU count, different numpy)
is explainable instead of mysterious: the regression guard uses the
fingerprint to decide which tolerance policy applies (wall-clock
timings are only comparable on a matching fingerprint; fidelity
metrics are seed-deterministic and compared everywhere).
"""

from __future__ import annotations

import os
import platform
import sys

__all__ = ["environment_fingerprint", "fingerprints_comparable"]

#: Keys that must match for wall-clock timings to be comparable.
TIMING_KEYS = ("machine", "cpu_count", "python")


def environment_fingerprint() -> dict:
    """The toolchain + hardware identity stamped into every result."""
    import numpy

    from repro import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def fingerprints_comparable(a: dict, b: dict) -> bool:
    """Whether wall-clock timings from ``a`` and ``b`` may be diffed.

    Fidelity metrics are deterministic functions of the seed and are
    always comparable; timings only mean anything on the same class of
    machine. Missing keys count as a mismatch: don't guess.
    """
    return all(a.get(key) is not None and a.get(key) == b.get(key)
               for key in TIMING_KEYS)
