"""The benchmark scenario registry.

Every ``benchmarks/bench_*.py`` file registers one (or more) named
scenarios with the module-level :data:`REGISTRY` at import time::

    from repro.benchreport import Metric, register

    @register("fig3_outliers", quick=True, tags=("figure", "fidelity"))
    def scenario(ctx):
        cell, trimmed = _outlier_study(ctx.small_lab)
        return [Metric("rs_full", cell.rs), Metric("rs_trimmed", trimmed.rs)]

A scenario receives a :class:`~repro.benchreport.context.BenchContext`
(tier, seed, shared lazily-built labs) and returns its metrics; the
runner times the call, stamps the environment fingerprint, and emits
the structured ``BenchResult``.

Bench files are plain pytest files, not an importable package, so the
registry discovers them by importing each ``bench_*.py`` from disk
under a private module prefix. Registration is idempotent by name
(re-importing a file replaces its scenarios) so pytest and the CLI can
coexist in one process.
"""

from __future__ import annotations

import fnmatch
import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = [
    "BenchScenario",
    "BenchRegistry",
    "REGISTRY",
    "register",
    "load_scenarios",
    "default_bench_dir",
]

TIERS = ("quick", "full")

#: sys.modules prefix for bench files imported from disk.
_MODULE_PREFIX = "repro_bench_scenario_files"


@dataclass(frozen=True)
class BenchScenario:
    """A named, registered benchmark."""

    name: str
    func: Callable
    #: Whether the scenario is part of the fast CI tier.
    quick: bool = True
    tags: tuple[str, ...] = ()
    description: str = ""

    def runs_in(self, tier: str) -> bool:
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        return self.quick if tier == "quick" else True


@dataclass
class BenchRegistry:
    """An ordered collection of :class:`BenchScenario`."""

    _scenarios: dict[str, BenchScenario] = field(default_factory=dict)

    def add(self, scenario: BenchScenario) -> None:
        # Idempotent by name: a re-imported bench file replaces its own
        # earlier registration instead of erroring.
        self._scenarios[scenario.name] = scenario

    def register(self, name: str, *, quick: bool = True,
                 tags: tuple[str, ...] = ()) -> Callable:
        """Decorator form: ``@registry.register("lec", quick=True)``."""
        def decorate(func: Callable) -> Callable:
            doc_lines = (func.__doc__ or "").strip().splitlines()
            self.add(BenchScenario(
                name=name,
                func=func,
                quick=quick,
                tags=tuple(tags),
                description=doc_lines[0] if doc_lines else "",
            ))
            return func
        return decorate

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def get(self, name: str) -> BenchScenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._scenarios)

    def scenarios(self) -> list[BenchScenario]:
        return [self._scenarios[name] for name in self.names()]

    def select(self, tier: str = "full", names: list[str] | None = None,
               pattern: str | None = None) -> list[BenchScenario]:
        """Scenarios for ``tier``, optionally restricted.

        ``names`` are exact scenario names (errors on unknowns, and
        overrides the tier gate — an explicitly requested scenario runs
        even in the quick tier). ``pattern`` is an ``fnmatch`` glob /
        substring filter on names and tags.
        """
        if names:
            return [self.get(name) for name in names]
        selected = [s for s in self.scenarios() if s.runs_in(tier)]
        if pattern:
            glob = pattern if any(c in pattern for c in "*?[") else f"*{pattern}*"
            selected = [
                s for s in selected
                if fnmatch.fnmatch(s.name, glob)
                or any(fnmatch.fnmatch(tag, glob) for tag in s.tags)
            ]
        return selected

    def clear(self) -> None:
        self._scenarios.clear()


#: The process-wide registry all bench files register into.
REGISTRY = BenchRegistry()

#: Where `register(...)` currently lands; `load_scenarios` rebinds it
#: temporarily when a caller (tests) supplies its own registry.
_active_registry = REGISTRY


def register(name: str, *, quick: bool = True,
             tags: tuple[str, ...] = ()) -> Callable:
    """Register a scenario with the active registry (normally REGISTRY)."""
    return _active_registry.register(name, quick=quick, tags=tags)


def default_bench_dir() -> Path:
    """Locate ``benchmarks/`` — cwd first, then relative to the package.

    The CLI normally runs from the repo root; the package-relative
    fallback covers invocations from elsewhere in the tree.
    """
    cwd_dir = Path.cwd() / "benchmarks"
    if cwd_dir.is_dir():
        return cwd_dir
    return Path(__file__).resolve().parents[3] / "benchmarks"


def load_scenarios(directory: Path | None = None,
                   registry: BenchRegistry | None = None) -> BenchRegistry:
    """Import every ``bench_*.py`` in ``directory`` so it registers.

    Returns the registry the files registered into (the module-level
    one unless tests inject their own via ``registry``).
    """
    global _active_registry
    directory = Path(directory) if directory is not None else default_bench_dir()
    if not directory.is_dir():
        raise FileNotFoundError(f"benchmark directory not found: {directory}")
    target = registry if registry is not None else REGISTRY

    previous = _active_registry
    _active_registry = target
    try:
        for path in sorted(directory.glob("bench_*.py")):
            module_name = f"{_MODULE_PREFIX}.{path.stem}"
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:  # pragma: no cover
                raise ImportError(f"cannot load benchmark file {path}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            finally:
                if registry is not None:
                    sys.modules.pop(module_name, None)
    finally:
        _active_registry = previous
    return target
