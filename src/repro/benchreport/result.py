"""Structured benchmark records.

A scenario returns :class:`Metric` values; the runner wraps them in a
:class:`BenchResult` together with the wall time, tier, seed, and the
environment fingerprint, and serializes the lot as ``BENCH_<name>.json``.
The regression guard (``tools/benchguard.py``) consumes these records,
applying a per-kind tolerance policy:

* ``fidelity`` — paper-shape numbers (correlations, errors, fractions).
  Deterministic given the seed; guarded with a tight two-sided band.
* ``ratio`` — speedups and hit rates where higher is better; guarded
  one-sided with a loose band (plus an optional hard ``floor``).
* ``timing`` — wall-clock seconds; guarded one-sided with the loosest
  band, and only against baselines from a comparable machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Metric", "BenchResult", "METRIC_KINDS"]

METRIC_KINDS = ("fidelity", "ratio", "timing")


@dataclass(frozen=True)
class Metric:
    """One named benchmark measurement."""

    name: str
    value: float
    kind: str = "fidelity"
    unit: str = ""
    #: Hard lower bound (ratio metrics): the guard fails when the fresh
    #: value falls below it, independent of any baseline.
    floor: float | None = None

    def __post_init__(self):
        if self.kind not in METRIC_KINDS:
            raise ValueError(
                f"metric {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {METRIC_KINDS}"
            )

    def to_dict(self) -> dict:
        record = {"value": float(self.value), "kind": self.kind}
        if self.unit:
            record["unit"] = self.unit
        if self.floor is not None:
            record["floor"] = float(self.floor)
        return record

    @classmethod
    def from_dict(cls, name: str, record: dict) -> "Metric":
        return cls(
            name=name,
            value=float(record["value"]),
            kind=record.get("kind", "fidelity"),
            unit=record.get("unit", ""),
            floor=record.get("floor"),
        )


@dataclass
class BenchResult:
    """One scenario's structured outcome."""

    scenario: str
    tier: str
    seed: int
    wall_seconds: float
    metrics: dict[str, Metric] = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def metric(self, name: str) -> Metric:
        return self.metrics[name]

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "tier": self.tier,
            "seed": self.seed,
            "wall_seconds": round(self.wall_seconds, 6),
            "metrics": {name: m.to_dict() for name, m in self.metrics.items()},
            "environment": dict(self.environment),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "BenchResult":
        return cls(
            scenario=record["scenario"],
            tier=record.get("tier", "full"),
            seed=int(record.get("seed", 0)),
            wall_seconds=float(record.get("wall_seconds", 0.0)),
            metrics={
                name: Metric.from_dict(name, value)
                for name, value in record.get("metrics", {}).items()
            },
            environment=dict(record.get("environment", {})),
            error=record.get("error"),
        )

    def write(self, directory: Path) -> Path:
        """Write ``BENCH_<scenario>.json`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.scenario}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, path: Path) -> "BenchResult":
        return cls.from_dict(json.loads(Path(path).read_text()))


def normalize_metrics(raw) -> dict[str, Metric]:
    """Accept the return shapes scenarios use: Metric iterables or dicts."""
    if raw is None:
        return {}
    if isinstance(raw, dict):
        metrics = {}
        for name, value in raw.items():
            metrics[name] = value if isinstance(value, Metric) else Metric(
                name, float(value)
            )
        return metrics
    metrics = {}
    for metric in raw:
        if not isinstance(metric, Metric):
            raise TypeError(f"scenario returned non-Metric {metric!r}")
        if metric.name in metrics:
            raise ValueError(f"duplicate metric name {metric.name!r}")
        metrics[metric.name] = metric
    return metrics
