"""Run registered scenarios and emit the JSON artifacts.

Serial runs share one :class:`BenchContext` (so the expensive labs are
built once, like the pytest session fixtures used to). ``jobs > 1``
fans scenarios out across worker processes; each worker builds its own
context, which trades lab reuse for parallelism — worth it only when
scenarios outnumber the shared-lab savings (many cores, few shared
labs). Results are identical either way: scenarios are deterministic
functions of (tier, seed).

Artifacts:

* ``BENCH_<scenario>.json`` — one structured :class:`BenchResult` each;
* ``BENCH_summary.json`` — an append-only trajectory: one entry per
  run, so the perf history of the repo accumulates across PRs.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
import traceback
from pathlib import Path

from .context import BenchContext
from .environment import environment_fingerprint
from .registry import BenchScenario, load_scenarios
from .result import BenchResult, Metric, normalize_metrics

__all__ = ["run_scenarios", "write_artifacts", "SUMMARY_FILENAME"]

SUMMARY_FILENAME = "BENCH_summary.json"


def _execute(scenario: BenchScenario, context: BenchContext) -> BenchResult:
    """Run one scenario, timing it and capturing any failure."""
    environment = environment_fingerprint()
    started = time.perf_counter()
    try:
        metrics = normalize_metrics(scenario.func(context))
        error = None
    except Exception:
        metrics = {}
        error = traceback.format_exc(limit=8)
    wall = time.perf_counter() - started
    result = BenchResult(
        scenario=scenario.name,
        tier=context.tier,
        seed=context.seed,
        wall_seconds=wall,
        metrics=metrics,
        environment=environment,
        error=error,
    )
    # Every result carries its own wall time as a guardable timing
    # metric (unless the scenario measured a more meaningful one under
    # the same name).
    result.metrics.setdefault(
        "wall_seconds", Metric("wall_seconds", wall, kind="timing", unit="s")
    )
    return result


#: Per-worker-process state: the registry and the shared context are
#: built once by the pool initializer, so a worker running several
#: scenarios reuses its labs exactly like the serial path does.
_worker_state: dict = {}


def _worker_init(tier: str, seed: int, bench_dir: str) -> None:
    from .registry import BenchRegistry

    _worker_state["registry"] = load_scenarios(
        Path(bench_dir), registry=BenchRegistry()
    )
    _worker_state["context"] = BenchContext(tier=tier, seed=seed)


def _run_in_worker(name: str) -> dict:
    """Process-pool entry point: run one scenario on the worker's state."""
    registry = _worker_state["registry"]
    context = _worker_state["context"]
    return _execute(registry.get(name), context).to_dict()


def run_scenarios(
    scenarios: list[BenchScenario],
    tier: str = "full",
    seed: int = 0,
    jobs: int = 1,
    bench_dir: Path | None = None,
    progress=None,
) -> list[BenchResult]:
    """Run ``scenarios`` and return their results in input order.

    ``progress`` is an optional callable receiving each finished
    :class:`BenchResult` as it lands (the CLI prints a table row).
    """
    if jobs > 1:
        if bench_dir is None:
            raise ValueError("multi-process runs need an explicit bench_dir")
        results_by_name: dict[str, BenchResult] = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(tier, seed, str(bench_dir)),
        ) as pool:
            futures = {
                pool.submit(_run_in_worker, scenario.name): scenario.name
                for scenario in scenarios
            }
            for future in concurrent.futures.as_completed(futures):
                name = futures[future]
                try:
                    result = BenchResult.from_dict(future.result())
                except Exception as exc:
                    # A worker that died outside _execute's own capture
                    # (import error in a bench file, OOM-killed process,
                    # broken pool) still yields a recorded failure
                    # instead of losing the whole run's artifacts.
                    result = BenchResult(
                        scenario=name, tier=tier, seed=seed,
                        wall_seconds=0.0,
                        environment=environment_fingerprint(),
                        error=f"worker failed: {exc!r}",
                    )
                results_by_name[name] = result
                if progress is not None:
                    progress(result)
        return [results_by_name[s.name] for s in scenarios]

    context = BenchContext(tier=tier, seed=seed)
    results = []
    for scenario in scenarios:
        result = _execute(scenario, context)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def write_artifacts(results: list[BenchResult], output_dir: Path) -> Path:
    """Write per-scenario files and append the summary trajectory entry.

    Returns the summary path.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    for result in results:
        result.write(output_dir)

    summary_path = output_dir / SUMMARY_FILENAME
    if summary_path.exists():
        try:
            summary = json.loads(summary_path.read_text())
        except json.JSONDecodeError:
            summary = {"runs": []}
        summary.setdefault("runs", [])
    else:
        summary = {"runs": []}

    entry = {
        "sequence": len(summary["runs"]) + 1,
        "tier": results[0].tier if results else "full",
        "seed": results[0].seed if results else 0,
        "environment": results[0].environment if results else {},
        "total_seconds": round(sum(r.wall_seconds for r in results), 6),
        "failures": sorted(r.scenario for r in results if not r.ok),
        "scenarios": {
            r.scenario: {
                "wall_seconds": round(r.wall_seconds, 6),
                "metrics": {name: m.to_dict() for name, m in r.metrics.items()},
                "error": r.error,
            }
            for r in results
        },
    }
    summary["runs"].append(entry)
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary_path
