"""Shared cache bookkeeping: hit/miss statistics and a byte-budgeted LRU.

Both serving-layer caches use these primitives: the
:class:`~repro.service.cache.PreparedCache` (entry-count bounded, whole
prepared predictions) and the
:class:`~repro.sampling.engine.SamplingEngine` (byte bounded, per-subplan
sample intermediates). Keeping one :class:`CacheStats` dataclass means
every cache reports hits, misses, and evictions the same way.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Hashable

__all__ = ["ByteBudgetLRU", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: entries rejected on insert because they alone exceed the budget
    oversized: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float | None:
        """Hits per lookup, or None before the first lookup.

        A cache that was never consulted has no hit rate; reporting 0%
        would read as "everything missed".
        """
        total = self.hits + self.misses
        return self.hits / total if total else None

    def describe(self) -> str:
        """Human-readable rate, e.g. ``"75% (3/4)"`` or ``"no lookups"``."""
        rate = self.hit_rate
        if rate is None:
            return "no lookups"
        return f"{rate:.0%} ({self.hits}/{self.lookups})"


class ByteBudgetLRU:
    """An LRU cache bounded by the summed byte size of its entries.

    Each ``put`` declares the entry's size; when the running total
    exceeds the budget, least-recently-used entries are evicted until it
    fits again. An entry larger than the whole budget is rejected
    outright (counted in ``stats.oversized``) rather than evicting
    everything for a value that cannot be retained anyway.
    """

    def __init__(self, max_bytes: int):
        if max_bytes < 1:
            raise ValueError(f"cache needs a positive byte budget, got {max_bytes}")
        self._max_bytes = max_bytes
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._bytes_used = 0
        # Guards entry mutation *and* stats snapshots: a monitoring
        # thread snapshotting stats mid-update must never see a torn
        # CacheStats (hits already bumped, misses not yet — a state no
        # point in time ever had).
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int) -> bool:
        """Insert ``value``; returns False when it exceeds the whole budget."""
        with self._lock:
            if nbytes > self._max_bytes:
                self.stats.oversized += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes_used -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes_used += nbytes
            while self._bytes_used > self._max_bytes:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes_used -= evicted_bytes
                self.stats.evictions += 1
            return True

    def snapshot(self) -> tuple[CacheStats, int, int]:
        """An atomic ``(stats copy, entry count, bytes used)`` triple.

        The only safe way to read the counters concurrently with
        traffic: copying field-by-field without the lock can interleave
        with an increment and produce totals that never existed.
        """
        with self._lock:
            return replace(self.stats), len(self._entries), self._bytes_used

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes_used = 0
