"""Cost-unit calibration (Section 3.1)."""

from .calibrator import CalibratedUnits, Calibrator, DEFAULT_CALIBRATION_SIZES
from .workload import CalibrationQuery, calibration_suite

__all__ = [
    "CalibratedUnits",
    "Calibrator",
    "CalibrationQuery",
    "calibration_suite",
    "DEFAULT_CALIBRATION_SIZES",
]
