"""Cost-unit calibration: observed runtimes -> N(mu, sigma^2) per unit.

The paper's extension over [48]: instead of keeping only the sample
mean of each solved cost unit, keep the sample variance too and treat
the unit as a Gaussian random variable (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..hardware.simulator import HardwareSimulator
from ..mathstats.normal import NormalDistribution
from ..optimizer.cost_model import COST_UNIT_NAMES
from .workload import calibration_suite

__all__ = ["CalibratedUnits", "Calibrator", "DEFAULT_CALIBRATION_SIZES"]

DEFAULT_CALIBRATION_SIZES = (20_000, 50_000, 100_000, 200_000)
#: Units are solved in dependency order (see workload docstring).
_SOLVE_ORDER = ("ct", "co", "ci", "cs", "cr")


@dataclass
class CalibratedUnits:
    """The calibrated distributions of the five cost units."""

    distributions: dict[str, NormalDistribution]
    samples: dict[str, list[float]]

    def distribution(self, name: str) -> NormalDistribution:
        return self.distributions[name]

    def mean(self, name: str) -> float:
        return self.distributions[name].mean

    def variance(self, name: str) -> float:
        return self.distributions[name].variance

    def means(self) -> dict[str, float]:
        return {name: dist.mean for name, dist in self.distributions.items()}

    def without_variance(self) -> "CalibratedUnits":
        """The NoVar[c] ablation: keep means, zero the variances."""
        return CalibratedUnits(
            distributions={
                name: NormalDistribution(dist.mean, 0.0)
                for name, dist in self.distributions.items()
            },
            samples=dict(self.samples),
        )


class Calibrator:
    """Runs calibration queries on a (simulated) machine and solves units."""

    def __init__(
        self,
        simulator: HardwareSimulator,
        table_sizes: tuple[int, ...] = DEFAULT_CALIBRATION_SIZES,
        repetitions: int = 10,
    ):
        if repetitions < 2:
            raise CalibrationError("need at least 2 repetitions for a variance")
        self._simulator = simulator
        self._table_sizes = table_sizes
        self._repetitions = repetitions

    def calibrate(self) -> CalibratedUnits:
        """Observe runtimes, solve units sequentially, estimate N(mu, s^2)."""
        queries_by_unit: dict[str, list] = {name: [] for name in COST_UNIT_NAMES}
        for size in self._table_sizes:
            for query in calibration_suite(size):
                queries_by_unit[query.solves_for].append(query)

        solved_means: dict[str, float] = {}
        samples: dict[str, list[float]] = {}
        for unit in _SOLVE_ORDER:
            unit_samples: list[float] = []
            for query in queries_by_unit[unit]:
                coefficient = query.counts.as_dict()[unit]
                if coefficient <= 0:
                    raise CalibrationError(
                        f"query {query.name} does not exercise unit {unit}"
                    )
                for _ in range(self._repetitions):
                    observed = self._simulator.run_counts_once(query.counts)
                    known = sum(
                        query.counts.as_dict()[other] * solved_means[other]
                        for other in solved_means
                    )
                    unit_samples.append((observed - known) / coefficient)
            solved_means[unit] = float(np.mean(unit_samples))
            samples[unit] = unit_samples

        distributions = {}
        for unit in COST_UNIT_NAMES:
            values = np.asarray(samples[unit])
            mean = float(values.mean())
            variance = float(values.var(ddof=1))
            if mean <= 0:
                raise CalibrationError(
                    f"calibrated mean of {unit} is nonpositive: {mean}"
                )
            distributions[unit] = NormalDistribution(mean, variance)
        return CalibratedUnits(distributions=distributions, samples=samples)
