"""Calibration query families (Example 3 / Wu et al. ICDE'13).

Each family isolates one cost unit given the units solved before it:

* ``ct``: in-memory ``SELECT * FROM R``             -> t = |R| ct
* ``co``: in-memory ``SELECT COUNT(*) FROM R``      -> t = |R| ct + 2|R| co
* ``ci``: in-memory index scan of half of R         -> t = M (ct + ci)
* ``cs``: cold sequential scan                      -> t = P cs + |R| ct
* ``cr``: cold unclustered index scan of 10% of R   -> t = (M+3) cr + M ct + M ci

The counts below are the ground-truth resource counts of those queries
run against synthetic tables of known size (the paper likewise uses
relations whose cardinalities are known exactly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..optimizer.cost_model import INDEX_DESCENT_PAGES, ResourceCounts

__all__ = ["CalibrationQuery", "calibration_suite", "CALIBRATION_ROW_WIDTH"]

#: Assumed row width of calibration tables (bytes).
CALIBRATION_ROW_WIDTH = 120
_PAGE_BYTES = 8192


def _pages(rows: int) -> float:
    return max(1.0, math.ceil(rows * CALIBRATION_ROW_WIDTH / _PAGE_BYTES))


@dataclass(frozen=True)
class CalibrationQuery:
    """One calibration execution: known counts + the unit it solves for."""

    name: str
    solves_for: str
    counts: ResourceCounts
    #: linear coefficients: time = sum_u coeff[u] * c_u; the solver divides
    #: out previously-known units and isolates ``solves_for``.
    table_rows: int


def calibration_suite(table_rows: int) -> list[CalibrationQuery]:
    """The five calibration queries for a table with ``table_rows`` rows."""
    rows = float(table_rows)
    pages = _pages(table_rows)
    half = rows / 2.0
    tenth = max(rows / 10.0, 1.0)
    return [
        CalibrationQuery(
            name=f"ct_scan_{table_rows}",
            solves_for="ct",
            counts=ResourceCounts(nt=rows),
            table_rows=table_rows,
        ),
        CalibrationQuery(
            name=f"co_count_{table_rows}",
            solves_for="co",
            counts=ResourceCounts(nt=rows, no=2.0 * rows),
            table_rows=table_rows,
        ),
        CalibrationQuery(
            name=f"ci_indexscan_{table_rows}",
            solves_for="ci",
            counts=ResourceCounts(nt=half, ni=half),
            table_rows=table_rows,
        ),
        CalibrationQuery(
            name=f"cs_coldscan_{table_rows}",
            solves_for="cs",
            counts=ResourceCounts(ns=pages, nt=rows),
            table_rows=table_rows,
        ),
        CalibrationQuery(
            name=f"cr_coldindex_{table_rows}",
            solves_for="cr",
            counts=ResourceCounts(
                nr=tenth + INDEX_DESCENT_PAGES, nt=tenth, ni=tenth
            ),
            table_rows=table_rows,
        ),
    ]
