"""Command-line interface.

Subcommands::

    python -m repro generate  --scale 0.02 --skew 0            # describe a DB
    python -m repro explain   --sql "SELECT ..."               # show the plan
    python -m repro predict   --sql "SELECT ..." [--sr 0.05]   # distribution
    python -m repro bench     [--quick]                        # the full grid

The CLI regenerates the database from its config on every invocation
(generation is deterministic and fast at these scales), so it needs no
on-disk state.
"""

from __future__ import annotations

import argparse
import sys

from .calibration import Calibrator
from .core import UncertaintyPredictor
from .datagen import TpchConfig, generate_tpch
from .executor import Executor
from .hardware import PROFILES, HardwareSimulator
from .optimizer import Optimizer
from .sampling import SampleDatabase

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uncertainty-aware query execution time prediction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db_args(p):
        p.add_argument("--scale", type=float, default=0.02, help="TPC-H scale factor")
        p.add_argument("--skew", type=float, default=0.0, help="Zipf z (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", help="generate a TPC-H database and describe it")
    add_db_args(gen)

    explain = sub.add_parser("explain", help="show the optimized plan for a query")
    add_db_args(explain)
    explain.add_argument("--sql", required=True)

    predict = sub.add_parser("predict", help="predict a running-time distribution")
    add_db_args(predict)
    predict.add_argument("--sql", required=True)
    predict.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    predict.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    predict.add_argument(
        "--execute", action="store_true",
        help="also execute and report the simulated actual time",
    )

    bench = sub.add_parser("bench", help="run the full evaluation grid")
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--output", default=None)
    bench.add_argument("--seed", type=int, default=0)

    return parser


def _database(args):
    config = TpchConfig(scale_factor=args.scale, skew_z=args.skew, seed=args.seed)
    return generate_tpch(config), config


def _cmd_generate(args, out) -> int:
    db, config = _database(args)
    print(f"generated {config.describe()}", file=out)
    for name in db.table_names:
        table = db.table(name)
        print(f"  {name:>10}: {table.num_rows:>9} rows, {table.num_pages:>6} pages", file=out)
    return 0


def _cmd_explain(args, out) -> int:
    db, _ = _database(args)
    planned = Optimizer(db).plan_sql(args.sql)
    print(planned.explain(), file=out)
    return 0


def _cmd_predict(args, out) -> int:
    db, _ = _database(args)
    planned = Optimizer(db).plan_sql(args.sql)
    simulator = HardwareSimulator(PROFILES[args.machine], rng=args.seed)
    units = Calibrator(simulator).calibrate()
    samples = SampleDatabase(db, sampling_ratio=args.sr, seed=args.seed + 1)
    prediction = UncertaintyPredictor(units).predict(planned, samples)

    print(planned.explain(), file=out)
    print(f"\npredicted mean : {prediction.mean:.4f} s", file=out)
    print(f"predicted std  : {prediction.std:.4f} s", file=out)
    for confidence in (0.5, 0.9, 0.99):
        low, high = prediction.confidence_interval(confidence)
        print(f"{confidence:>6.0%} interval : [{low:.4f} s, {high:.4f} s]", file=out)
    if args.execute:
        result = Executor(db).execute(planned)
        actual = simulator.run_repeated(result.counts)
        print(f"actual (sim)   : {actual:.4f} s", file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from .experiments.run_all import build_lab, report_sections

    lab = build_lab(quick=args.quick, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            report_sections(lab, handle)
        print(f"report written to {args.output}", file=out)
    else:
        report_sections(lab, out)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "explain": _cmd_explain,
    "predict": _cmd_predict,
    "bench": _cmd_bench,
}


def main(argv=None, out=None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
