"""Command-line interface.

Subcommands::

    python -m repro generate      --scale 0.02 --skew 0          # describe a DB
    python -m repro explain       --sql "SELECT ..."             # show the plan
    python -m repro predict       --sql "SELECT ..." [--sr 0.05] # distribution
    python -m repro predict-batch --templates 20 --mpl 1,4       # batch service
    python -m repro serve         --port 8080                    # HTTP front-end
    python -m repro replay        --mix mixed --arrival poisson:20  # load test
    python -m repro bench         [--quick | --full]             # the registry
    python -m repro report        [--quick]                      # paper report

``predict``/``predict-batch``/``serve`` all drive one
:class:`repro.api.Session` built from the same declarative
:class:`repro.api.SessionConfig` — ``serve`` exposes it over the
versioned HTTP/JSON wire schema (see ``docs/api.md``). ``replay``
generates deterministic mixed workloads and drives either an
in-process session or a live ``repro serve`` endpoint with them (see
``docs/replay.md``). ``bench`` runs the registered benchmark scenarios
(see ``docs/benchmarks.md``) and writes ``BENCH_<scenario>.json``
artifacts plus the ``BENCH_summary.json`` trajectory; ``report``
regenerates the paper's tables and figures as one markdown report (the
old ``bench`` behaviour). The CLI regenerates the database from its
config on every invocation (generation is deterministic and fast at
these scales), so it needs no on-disk state.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .api import Session, SessionConfig
from .core import Variant
from .datagen import TpchConfig, generate_tpch
from .errors import PredictionError, ReproError, SessionError
from .executor import Executor
from .hardware import PROFILES
from .optimizer import Optimizer
from .scheduler import SCHEDULER_POLICIES
from .service import BATCH_KERNELS

__all__ = ["main", "build_parser"]

_VARIANT_NAMES = sorted(variant.wire_name for variant in Variant)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uncertainty-aware query execution time prediction",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db_args(p):
        p.add_argument("--scale", type=float, default=0.02, help="TPC-H scale factor")
        p.add_argument("--skew", type=float, default=0.0, help="Zipf z (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", help="generate a TPC-H database and describe it")
    add_db_args(gen)

    explain = sub.add_parser("explain", help="show the optimized plan for a query")
    add_db_args(explain)
    explain.add_argument("--sql", required=True)

    predict = sub.add_parser("predict", help="predict a running-time distribution")
    add_db_args(predict)
    predict.add_argument("--sql", required=True)
    predict.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    predict.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    predict.add_argument(
        "--execute", action="store_true",
        help="also execute and report the simulated actual time",
    )

    batch = sub.add_parser(
        "predict-batch", help="serve a batch of queries through the service"
    )
    add_db_args(batch)
    source = batch.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--sql", action="append", default=None,
        help="a query to serve (repeatable)",
    )
    source.add_argument(
        "--file", default=None,
        help="file with one SQL query per line (blank lines and # comments skipped)",
    )
    source.add_argument(
        "--templates", type=int, default=None, metavar="N",
        help="serve N TPC-H template instantiations",
    )
    batch.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    batch.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    batch.add_argument(
        "--variants", default="all",
        help="comma-separated predictor variants "
        f"({', '.join(_VARIANT_NAMES)})",
    )
    batch.add_argument(
        "--mpl", default="1",
        help="comma-separated multiprogramming levels (default: 1)",
    )
    batch.add_argument(
        "--template-seed", type=int, default=0,
        help="RNG seed for --templates instantiation",
    )
    batch.add_argument(
        "--batch-kernel", choices=BATCH_KERNELS, default="scalar",
        help="batch execution strategy: the per-query scalar reference "
        "loop or the cross-query SoA kernels — bitwise-identical "
        "output (see docs/service.md; default: scalar)",
    )

    serve = sub.add_parser(
        "serve", help="serve predictions over HTTP/JSON (see docs/api.md)"
    )
    add_db_args(serve)
    serve.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    serve.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    serve.add_argument(
        "--estimator", choices=("sampling", "histogram"), default="sampling",
        help="selectivity estimator backend (default: sampling)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks an ephemeral one, printed at startup)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=8,
        help="bounded admission: concurrent prediction requests (default: 8)",
    )
    serve.add_argument(
        "--scheduler", choices=SCHEDULER_POLICIES, default="fifo",
        help="admission policy past --max-in-flight: fifo refuses "
        "immediately (the historical behavior); edf-slack and "
        "budget-fair defer into an uncertainty-aware queue "
        "(see docs/scheduling.md; default: fifo)",
    )
    serve.add_argument(
        "--variants", default="all",
        help="default predictor variants for requests that omit them "
        f"({', '.join(_VARIANT_NAMES)})",
    )
    serve.add_argument(
        "--mpl", default="1",
        help="default comma-separated multiprogramming levels (default: 1)",
    )
    serve.add_argument(
        "--warmup", action="store_true",
        help="pre-serve one instantiation of every TPC-H template at startup",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="pre-fork worker processes sharing the port, each with its "
        "own session and cache shard (default: 1 — single-process)",
    )
    serve.add_argument(
        "--serving-mode", choices=("auto", "reuseport", "handoff"),
        default="auto",
        help="how workers share the port: kernel SO_REUSEPORT balancing "
        "or parent-socket handoff (default: auto-detect)",
    )
    serve.add_argument(
        "--batch-kernel", choices=BATCH_KERNELS, default="scalar",
        help="batch execution strategy for /v1/predict-batch: the "
        "per-query scalar reference loop or the cross-query SoA "
        "kernels — bitwise-identical output (see docs/service.md; "
        "default: scalar)",
    )

    replay = sub.add_parser(
        "replay",
        help="replay a deterministic workload against the serving stack "
        "(see docs/replay.md)",
    )
    add_db_args(replay)
    replay.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    replay.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    replay.add_argument(
        "--mix", default="mixed",
        help="workload mix: a preset (tpch, micro, mixed, multitenant) "
        "or kind=weight,... (default: mixed)",
    )
    replay.add_argument(
        "--arrival", default="poisson:20",
        help="open-loop arrival process: poisson:<rate>, uniform:<rate>, "
        "bursty:<rate>[:factor[:period[:on_fraction]]] (default: poisson:20)",
    )
    replay.add_argument(
        "--clients", type=int, default=None,
        help="switch to closed-loop with N concurrent clients "
        "(overrides --arrival)",
    )
    replay.add_argument(
        "--requests", type=int, default=10,
        help="closed-loop requests per client (default: 10)",
    )
    replay.add_argument(
        "--think", type=float, default=0.0,
        help="closed-loop think time between requests, seconds (default: 0)",
    )
    replay.add_argument(
        "--duration", type=float, default=5.0,
        help="open-loop schedule horizon in seconds (default: 5)",
    )
    replay.add_argument(
        "--time-scale", type=float, default=1.0,
        help="multiply open-loop arrival offsets (0.5 replays twice as fast)",
    )
    replay.add_argument(
        "--deadline-ms", type=int, default=None,
        help="stamp a per-request latency budget (ms) on every scheduled "
        "request whose mix component does not set its own; the report "
        "then quotes the deadline-miss rate (see docs/scheduling.md)",
    )
    replay.add_argument(
        "--target", default="inproc",
        help="'inproc' (default) or a live endpoint base URL, "
        "e.g. http://127.0.0.1:8080",
    )
    replay.add_argument(
        "--retries-503", type=int, default=0,
        help="HTTP target: retry admission-refused requests up to N times "
        "behind a seeded jittered backoff (default: 0 — observe the 503s)",
    )
    replay.add_argument(
        "--replay-seed", type=int, default=0,
        help="seed for the request schedule (queries + arrival times)",
    )
    replay.add_argument(
        "--calibrate", action="store_true",
        help="also measure prediction-interval coverage under load vs idle "
        "(executes each distinct query once for simulated ground truth)",
    )
    replay.add_argument(
        "--observe", action="store_true",
        help="after the replay, re-drive the schedule through the online "
        "feedback loop: each prediction's simulated actual runtime is fed "
        "back via /v1/observe and online-vs-static interval coverage is "
        "reported (see docs/feedback.md)",
    )
    replay.add_argument(
        "--shift-at", type=float, default=None, metavar="FRACTION",
        help="with --observe: inject a hardware/load shift at this "
        "fraction of the schedule (actual runtimes multiplied by "
        "--shift-factor from there on)",
    )
    replay.add_argument(
        "--shift-factor", type=float, default=3.0,
        help="with --observe --shift-at: the post-shift actual-runtime "
        "multiplier (default: 3.0)",
    )
    replay.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the report as JSON instead of text",
    )
    replay.add_argument(
        "--quick", action="store_true",
        help="canned short run: one seeded mixed schedule replayed against "
        "BOTH the in-process session and an ephemeral HTTP server, with "
        "determinism and bitwise cross-target checks",
    )

    bench = sub.add_parser(
        "bench", help="run registered benchmark scenarios, emit JSON artifacts"
    )
    tier = bench.add_mutually_exclusive_group()
    tier.add_argument(
        "--quick", action="store_true",
        help="fast CI tier: reduced workloads, quick-eligible scenarios only",
    )
    tier.add_argument(
        "--full", action="store_true",
        help="every scenario at full workload (the default)",
    )
    bench.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run exactly this scenario (repeatable; overrides the tier gate)",
    )
    bench.add_argument(
        "-k", "--filter", default=None, metavar="PATTERN",
        help="fnmatch/substring filter on scenario names and tags",
    )
    bench.add_argument(
        "--jobs", type=int, default=1,
        help="fan scenarios out across N worker processes (default: 1)",
    )
    bench.add_argument(
        "--output-dir", default=".",
        help="where BENCH_*.json artifacts land (default: cwd)",
    )
    bench.add_argument(
        "--bench-dir", default=None,
        help="directory holding bench_*.py files (default: ./benchmarks)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the selected scenarios and exit",
    )
    bench.add_argument(
        "--no-artifacts", action="store_true",
        help="run without writing BENCH_*.json files",
    )

    report = sub.add_parser(
        "report", help="regenerate the paper's tables/figures as one report"
    )
    report.add_argument("--quick", action="store_true")
    report.add_argument("--output", default=None)
    report.add_argument("--seed", type=int, default=0)

    staticcheck = sub.add_parser(
        "staticcheck",
        help="run the repo's concurrency/determinism static analysis",
        description="Thin launcher for tools/staticcheck; every argument "
        "after the subcommand is passed through unchanged "
        "(--select, --jobs, --format, --baseline, ...).",
    )
    staticcheck.add_argument(
        "staticcheck_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to tools/staticcheck",
    )

    return parser


def _database(args):
    config = TpchConfig(scale_factor=args.scale, skew_z=args.skew, seed=args.seed)
    return generate_tpch(config), config


def _cmd_generate(args, out) -> int:
    """Generate the TPC-H database for ``--scale/--skew/--seed``, describe it."""
    db, config = _database(args)
    print(f"generated {config.describe()}", file=out)
    for name in db.table_names:
        table = db.table(name)
        print(f"  {name:>10}: {table.num_rows:>9} rows, {table.num_pages:>6} pages", file=out)
    return 0


def _cmd_explain(args, out) -> int:
    """Plan ``--sql`` through the optimizer and print the physical plan."""
    db, _ = _database(args)
    planned = Optimizer(db).plan_sql(args.sql)
    print(planned.explain(), file=out)
    return 0


def _session_config(args, **overrides) -> SessionConfig:
    """The declarative session config shared by predict/predict-batch/serve.

    Seed layout matches the historical hand-wired CLI: the simulator is
    seeded with ``--seed``, the sample database with ``--seed + 1``.
    """
    try:
        return SessionConfig(
            scale_factor=args.scale,
            skew_z=args.skew,
            db_seed=args.seed,
            machine=args.machine,
            calibration_seed=args.seed,
            sampling_ratio=args.sr,
            sampling_seed=args.seed + 1,
            **overrides,
        )
    except SessionError as error:
        raise SystemExit(str(error)) from None


def _cmd_predict(args, out) -> int:
    """Predict one query's running-time distribution (optionally execute).

    Builds a session from the CLI's database/calibration flags, prints
    the plan, the predicted mean/std, and the configured confidence
    intervals; ``--execute`` also runs the plan on the simulated
    hardware for a ground-truth comparison.
    """
    session = Session(_session_config(args))
    print(session.explain(args.sql), file=out)
    response = session.predict(args.sql)
    result = response.results[0]
    print(f"\npredicted mean : {result.mean:.4f} s", file=out)
    print(f"predicted std  : {result.std:.4f} s", file=out)
    for interval in result.intervals:
        print(
            f"{interval.confidence:>6.0%} interval : "
            f"[{interval.low:.4f} s, {interval.high:.4f} s]",
            file=out,
        )
    if args.execute:
        executed = Executor(session.database).execute(session.plan(args.sql))
        actual = session.simulator.run_repeated(executed.counts)
        print(f"actual (sim)   : {actual:.4f} s", file=out)
    return 0


def _batch_queries(args) -> list[str]:
    if args.sql:
        return list(args.sql)
    if args.file:
        with open(args.file) as handle:
            lines = [line.strip() for line in handle]
        return [line for line in lines if line and not line.startswith("#")]
    from .util import ensure_rng
    from .workloads.tpch_templates import TPCH_TEMPLATES

    rng = ensure_rng(args.template_seed)
    return [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(args.templates)
    ]


def _parse_variants(spec: str) -> tuple[str, ...]:
    names = []
    for name in spec.split(","):
        try:
            names.append(Variant.from_name(name).wire_name)
        except PredictionError:
            raise SystemExit(
                f"unknown variant {name.strip().lower()!r}; choose from "
                f"{', '.join(_VARIANT_NAMES)}"
            ) from None
    return tuple(names)


def _parse_mpls(spec: str) -> tuple[int, ...]:
    try:
        return tuple(int(level) for level in spec.split(","))
    except ValueError:
        raise SystemExit(
            f"--mpl expects comma-separated integers, got {spec!r}"
        ) from None


def _cmd_predict_batch(args, out) -> int:
    """Serve a batch (``--sql``/``--file``/``--templates``) through a session.

    Prints one row per query (mean, std, 90% interval, cache state)
    plus the serving counters; failed queries become per-row errors and
    exit status 1 rather than aborting the batch.
    """
    queries = _batch_queries(args)
    if not queries:
        print("no queries to serve", file=out)
        return 1
    variants = _parse_variants(args.variants)
    mpls = _parse_mpls(args.mpl)
    session = Session(
        _session_config(
            args,
            default_variants=variants,
            default_mpls=mpls,
            batch_kernel=args.batch_kernel,
        )
    )
    # Failures are skipped: one malformed statement yields a per-query
    # error row, not an aborted batch; the exit code still reports it.
    batch = session.predict_batch(queries)

    header = f"{'#':>3}  {'mean':>9}  {'std':>9}  {'90% interval':>22}  cache"
    print(header, file=out)
    failure_by_index = {failure.index: failure for failure in batch.failures}
    responses = iter(batch.responses)
    for index in range(len(queries)):
        failure = failure_by_index.get(index)
        if failure is not None:
            print(f"{index:>3}  ERROR [{failure.code}]  {failure.error}", file=out)
            continue
        response = next(responses)
        result = response.result(variants[0], mpls[0])
        interval = result.interval(0.90)
        cache = "hit" if response.prepare_was_cached else "miss"
        print(
            f"{index:>3}  {result.mean:>8.4f}s  {result.std:>8.4f}s  "
            f"[{interval.low:>8.4f}s, {interval.high:>8.4f}s]  {cache}",
            file=out,
        )
        for mpl in mpls[1:]:
            loaded = response.result(variants[0], mpl)
            print(
                f"{'':>3}  {loaded.mean:>8.4f}s  {loaded.std:>8.4f}s  "
                f"(mpl={mpl})",
                file=out,
            )
    stats = batch.stats
    print(
        f"\nserved {len(batch)} of {len(queries)} queries in "
        f"{batch.elapsed_seconds:.3f}s "
        f"({batch.queries_per_second:.1f} q/s) — "
        f"{stats.prepares_run} prepares, {stats.prepare_cache_hits} cache hits "
        f"(hit rate {stats.describe_hit_rate()}), "
        f"{stats.assemblies} assemblies",
        file=out,
    )
    for line in session.stats().cache_lines():
        print(line, file=out)
    if batch.failures:
        print(f"{len(batch.failures)} queries failed", file=out)
        return 1
    return 0


def _install_drain_handlers(handler) -> None:
    """Route SIGTERM/SIGINT to ``handler`` when running on the main thread.

    Signal delivery is a main-thread privilege; test harnesses driving
    the serve command from a worker thread keep the default disposition
    (and exercise graceful drain through the worker pool instead).
    """
    import signal

    try:
        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)
    except ValueError:
        pass


def _cmd_serve(args, out) -> int:
    """Expose a session over the versioned HTTP/JSON wire schema.

    Binds the threaded front-end (``docs/api.md``) on ``--host/--port``
    with bounded admission (``--max-in-flight``); the printed
    "listening on" line is the startup contract tools parse. With
    ``--workers N > 1``, pre-forks N processes sharing the port (see
    ``docs/serving.md``), each with its own session and cache shard.
    Both paths drain in-flight requests on SIGTERM/SIGINT.
    """
    import threading

    from .api.http import build_server
    from .api.wire import SCHEMA_VERSION

    variants = _parse_variants(args.variants)
    mpls = _parse_mpls(args.mpl)
    config = _session_config(
        args,
        estimator=args.estimator,
        default_variants=variants,
        default_mpls=mpls,
        scheduler_policy=args.scheduler,
        batch_kernel=args.batch_kernel,
    )
    if args.workers != 1:
        return _serve_pool(args, out, config)
    print(
        f"building session (scale {args.scale}, machine {args.machine}, "
        f"estimator {args.estimator}) ...",
        file=out, flush=True,
    )
    session = Session(config)
    if args.warmup:
        warmed = session.warmup()
        print(f"warmed {warmed} template queries", file=out, flush=True)
    server = build_server(
        session, host=args.host, port=args.port,
        max_in_flight=args.max_in_flight,
    )
    # The "listening on" line is the startup contract: tools/http_smoke.py
    # and operators parse the (possibly ephemeral) bound address from it.
    print(
        f"repro serve listening on {server.url} "
        f"(wire schema v{SCHEMA_VERSION}, max in-flight {args.max_in_flight}, "
        f"scheduler {args.scheduler})",
        file=out, flush=True,
    )

    def _drain(signum, frame):
        print("shutting down", file=out, flush=True)
        # shutdown() blocks until serve_forever exits; this (main)
        # thread is inside serve_forever, so it must run elsewhere.
        threading.Thread(target=server.shutdown, daemon=True).start()

    _install_drain_handlers(_drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        # server_close joins in-flight handler threads: admitted
        # requests finish before the process exits.
        server.server_close()
        session.close()
    return 0


def _serve_pool(args, out, config) -> int:
    """The ``--workers N`` serve path: pre-fork pool, drain on signal."""
    import threading

    from .api.wire import SCHEMA_VERSION
    from .serving import WorkerPool

    print(
        f"starting {args.workers} workers (scale {args.scale}, machine "
        f"{args.machine}, estimator {args.estimator}, mode "
        f"{args.serving_mode}) ...",
        file=out, flush=True,
    )
    pool = WorkerPool(
        args.workers,
        config=config,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        mode=args.serving_mode,
        warmup=args.warmup,
    )
    pool.start()
    print(
        f"repro serve listening on {pool.url} "
        f"(wire schema v{SCHEMA_VERSION}, max in-flight "
        f"{args.max_in_flight} per worker, workers {args.workers}, "
        f"mode {pool.mode}, scheduler {config.scheduler_policy})",
        file=out, flush=True,
    )
    stop = threading.Event()
    _install_drain_handlers(lambda signum, frame: stop.set())
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("shutting down", file=out, flush=True)
    codes = pool.stop()
    return 0 if all(code == 0 for code in codes) else 1


def _replay_load_model(args):
    """The load model requested by the CLI flags (closed wins over open)."""
    from .replay import ClosedLoop, parse_arrival

    if args.clients is not None:
        return ClosedLoop(
            clients=args.clients,
            requests_per_client=args.requests,
            think_seconds=args.think,
        )
    return parse_arrival(args.arrival)


def _cmd_replay(args, out) -> int:
    """Replay a deterministic workload against the serving stack.

    ``--target inproc`` builds a session in this process;
    ``--target http://...`` drives a live ``repro serve`` endpoint
    (the schedule is built locally from the same database config, which
    regenerates deterministically). ``--quick`` runs the canned
    both-targets determinism check instead. Exit status 1 when any
    request failed or a ``--quick`` cross-check did not hold.
    """
    from .replay import (
        HttpTarget,
        InProcessTarget,
        ReplayReport,
        ReplayRunner,
        build_schedule,
        parse_mix,
    )
    from .replay.report import calibration_under_load

    if args.quick:
        return _cmd_replay_quick(args, out)
    try:
        mix = parse_mix(args.mix)
        load = _replay_load_model(args)
    except ReproError as error:
        raise SystemExit(str(error)) from None

    config = _session_config(args)
    if args.target == "inproc":
        # --json promises parseable stdout: progress chatter stays off it.
        if not args.as_json:
            print("building in-process session ...", file=out, flush=True)
        session = Session(config)
        target = InProcessTarget(session)
        database = session.database
    elif args.target.startswith(("http://", "https://")):
        from .api import ClientConfig, HttpClient

        target = HttpTarget(
            HttpClient(
                args.target,
                config=ClientConfig(
                    retries_503=args.retries_503,
                    backoff_seed=args.replay_seed,
                ),
            )
        )
        session = None
        database, _ = _database(args)
    else:
        raise SystemExit(
            f"--target must be 'inproc' or an http(s) URL, got {args.target!r}"
        )

    schedule = build_schedule(
        mix, database, load,
        seed=args.replay_seed, duration_seconds=args.duration,
        deadline_ms=args.deadline_ms,
    )
    if not args.as_json:
        print(schedule.describe(), file=out, flush=True)
    run = ReplayRunner(target, time_scale=args.time_scale).run(schedule)
    calibration = None
    trajectory = None
    if args.calibrate or args.observe:
        if session is None:
            if not args.as_json:
                print(
                    "calibrating against a local mirror session ...",
                    file=out, flush=True,
                )
            session = Session(config)
    if args.calibrate:
        calibration = calibration_under_load(run, session)
    if args.observe:
        # The mirror session stays observation-free: it is both the
        # static control arm and the simulated-ground-truth oracle.
        from .replay import run_feedback_loop

        mirror = Session(config) if target.name == "inproc" else session
        trajectory = run_feedback_loop(
            schedule, target, mirror,
            shift_at=args.shift_at, shift_factor=args.shift_factor,
        )
    report = ReplayReport.from_run(run, calibration=calibration)
    if args.as_json:
        # wire.dumps rejects NaN/inf: a poisoned latency estimate fails
        # loudly here instead of emitting invalid JSON to a pipeline.
        from .api import wire

        record = report.to_dict()
        if trajectory is not None:
            record["feedback"] = trajectory.summary()
        print(wire.dumps(record, indent=2), file=out)
    else:
        print(report.render(), file=out)
        if trajectory is not None:
            print("", file=out)
            print(trajectory.render(), file=out)
    return 1 if report.requests_failed else 0


def _cmd_replay_quick(args, out) -> int:
    """The canned ``repro replay --quick`` acceptance run.

    One seeded mixed TPC-H/micro schedule is built twice (fingerprints
    must match), replayed against the in-process session, replayed
    again in-process (predictions must be bitwise identical), then
    replayed against an ephemeral HTTP server sharing the session
    (responses must be bitwise identical across the wire).
    """
    import threading

    from .api import ClientConfig, HttpClient, build_server
    from .replay import (
        HttpTarget,
        InProcessTarget,
        PoissonArrivals,
        ReplayReport,
        ReplayRunner,
        build_schedule,
        parse_mix,
    )
    from .replay.report import calibration_under_load

    mix = parse_mix("mixed")
    arrival = PoissonArrivals(rate=30.0)
    config = _session_config(args)
    print("building in-process session ...", file=out, flush=True)
    session = Session(config)

    schedule = build_schedule(
        mix, session.database, arrival,
        seed=args.replay_seed, duration_seconds=1.0,
    )
    rebuilt = build_schedule(
        mix, session.database, arrival,
        seed=args.replay_seed, duration_seconds=1.0,
    )
    schedules_match = schedule.fingerprint() == rebuilt.fingerprint()
    print(schedule.describe(), file=out, flush=True)

    runner = ReplayRunner(InProcessTarget(session), time_scale=0.2)
    first = runner.run(schedule)
    second = runner.run(schedule)
    inproc_match = first.results_signature() == second.results_signature()
    calibration = calibration_under_load(first, session)
    print("\n-- in-process --", file=out)
    print(
        ReplayReport.from_run(second, calibration=calibration).render(),
        file=out, flush=True,
    )

    server = build_server(session, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        http_target = HttpTarget(
            HttpClient(
                server.url,
                config=ClientConfig(
                    retries_503=3, backoff_seed=args.replay_seed
                ),
            )
        )
        http_run = ReplayRunner(http_target, time_scale=0.2).run(schedule)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    http_match = (
        http_run.results_signature() == first.results_signature()
    )
    print("\n-- http --", file=out)
    print(ReplayReport.from_run(http_run).render(), file=out)

    checks = {
        "identical schedules from one seed": schedules_match,
        "bitwise-identical in-process replays": inproc_match,
        "bitwise-identical responses over http": http_match,
        "no failed requests": not (first.failed or second.failed or http_run.failed),
    }
    print("", file=out)
    for label, passed in checks.items():
        print(f"{'ok ' if passed else 'FAIL'} {label}", file=out)
    return 0 if all(checks.values()) else 1


def _cmd_bench(args, out) -> int:
    """Run registered benchmark scenarios, write ``BENCH_*.json`` artifacts.

    Loads every ``benchmarks/bench_*.py`` into a fresh registry,
    selects by tier/name/pattern, and runs them with the shared
    :class:`~repro.benchreport.BenchContext` (see ``docs/benchmarks.md``).
    """
    from pathlib import Path

    from .benchreport import (
        BenchRegistry,
        load_scenarios,
        run_scenarios,
        write_artifacts,
    )
    from .benchreport.registry import default_bench_dir

    bench_dir = Path(args.bench_dir) if args.bench_dir else default_bench_dir()
    # A fresh registry per invocation: in-process callers (tests, other
    # tools) must not see scenarios accumulated from earlier loads.
    registry = load_scenarios(bench_dir, registry=BenchRegistry())
    tier = "quick" if args.quick else "full"
    selected = registry.select(
        tier=tier, names=args.scenario, pattern=args.filter
    )
    if not selected:
        print("no scenarios selected", file=out)
        return 1
    if args.list_scenarios:
        for scenario in selected:
            tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
            quick = "quick" if scenario.quick else "full-only"
            print(f"{scenario.name:<26} {quick:<9}{tags}", file=out)
        return 0

    print(
        f"running {len(selected)} scenarios, tier={tier}, seed={args.seed}"
        + (f", jobs={args.jobs}" if args.jobs > 1 else ""),
        file=out,
    )

    def progress(result):
        status = "ok" if result.ok else "FAILED"
        print(
            f"  {result.scenario:<26} {result.wall_seconds:>8.2f}s  "
            f"{len(result.metrics):>2} metrics  {status}",
            file=out,
        )

    results = run_scenarios(
        selected, tier=tier, seed=args.seed, jobs=args.jobs,
        bench_dir=bench_dir, progress=progress,
    )
    total = sum(r.wall_seconds for r in results)
    failures = [r for r in results if not r.ok]
    if not args.no_artifacts:
        summary_path = write_artifacts(results, Path(args.output_dir))
        print(f"artifacts in {Path(args.output_dir).resolve()}", file=out)
        print(f"summary appended to {summary_path}", file=out)
    print(
        f"{len(results) - len(failures)}/{len(results)} scenarios ok "
        f"in {total:.1f}s",
        file=out,
    )
    for result in failures:
        print(f"\nFAILED {result.scenario}:\n{result.error}", file=out)
    return 1 if failures else 0


def _cmd_report(args, out) -> int:
    """Regenerate the paper's tables and figures as one markdown report."""
    from .experiments.run_all import build_lab, report_sections

    lab = build_lab(quick=args.quick, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            report_sections(lab, handle)
        print(f"report written to {args.output}", file=out)
    else:
        report_sections(lab, out)
    return 0


def _cmd_staticcheck(args, out) -> int:
    """Run ``tools/staticcheck`` in-process against the source checkout.

    The tool lives in the repo, not the installed package: locate it
    relative to this file and forward the remaining argv unchanged, so
    ``repro staticcheck --select lock-discipline --jobs 4`` behaves
    exactly like ``python tools/staticcheck ...``.
    """
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    tools_dir = repo_root / "tools"
    if not (tools_dir / "staticcheck" / "__init__.py").is_file():
        print(
            f"repro staticcheck: tools/staticcheck not found under "
            f"{repo_root}; a source checkout is required",
            file=out,
        )
        return 2
    sys.path.insert(0, str(tools_dir))
    try:
        from staticcheck.runner import main as staticcheck_main
    finally:
        sys.path.remove(str(tools_dir))
    forwarded = list(args.staticcheck_args)
    if forwarded[:1] == ["--"]:
        forwarded = forwarded[1:]
    return staticcheck_main(forwarded)


_COMMANDS = {
    "generate": _cmd_generate,
    "explain": _cmd_explain,
    "predict": _cmd_predict,
    "predict-batch": _cmd_predict_batch,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "staticcheck": _cmd_staticcheck,
}


def main(argv=None, out=None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
