"""Command-line interface.

Subcommands::

    python -m repro generate      --scale 0.02 --skew 0          # describe a DB
    python -m repro explain       --sql "SELECT ..."             # show the plan
    python -m repro predict       --sql "SELECT ..." [--sr 0.05] # distribution
    python -m repro predict-batch --templates 20 --mpl 1,4       # batch service
    python -m repro serve         --port 8080                    # HTTP front-end
    python -m repro bench         [--quick | --full]             # the registry
    python -m repro report        [--quick]                      # paper report

``predict``/``predict-batch``/``serve`` all drive one
:class:`repro.api.Session` built from the same declarative
:class:`repro.api.SessionConfig` — ``serve`` exposes it over the
versioned HTTP/JSON wire schema (see ``docs/api.md``). ``bench`` runs
the registered benchmark scenarios (see ``docs/benchmarks.md``) and
writes ``BENCH_<scenario>.json`` artifacts plus the
``BENCH_summary.json`` trajectory; ``report`` regenerates the paper's
tables and figures as one markdown report (the old ``bench``
behaviour). The CLI regenerates the database from its config on every
invocation (generation is deterministic and fast at these scales), so
it needs no on-disk state.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .api import Session, SessionConfig
from .core import Variant
from .datagen import TpchConfig, generate_tpch
from .errors import PredictionError, SessionError
from .executor import Executor
from .hardware import PROFILES
from .optimizer import Optimizer

__all__ = ["main", "build_parser"]

_VARIANT_NAMES = sorted(variant.wire_name for variant in Variant)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uncertainty-aware query execution time prediction",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db_args(p):
        p.add_argument("--scale", type=float, default=0.02, help="TPC-H scale factor")
        p.add_argument("--skew", type=float, default=0.0, help="Zipf z (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)

    gen = sub.add_parser("generate", help="generate a TPC-H database and describe it")
    add_db_args(gen)

    explain = sub.add_parser("explain", help="show the optimized plan for a query")
    add_db_args(explain)
    explain.add_argument("--sql", required=True)

    predict = sub.add_parser("predict", help="predict a running-time distribution")
    add_db_args(predict)
    predict.add_argument("--sql", required=True)
    predict.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    predict.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    predict.add_argument(
        "--execute", action="store_true",
        help="also execute and report the simulated actual time",
    )

    batch = sub.add_parser(
        "predict-batch", help="serve a batch of queries through the service"
    )
    add_db_args(batch)
    source = batch.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--sql", action="append", default=None,
        help="a query to serve (repeatable)",
    )
    source.add_argument(
        "--file", default=None,
        help="file with one SQL query per line (blank lines and # comments skipped)",
    )
    source.add_argument(
        "--templates", type=int, default=None, metavar="N",
        help="serve N TPC-H template instantiations",
    )
    batch.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    batch.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    batch.add_argument(
        "--variants", default="all",
        help="comma-separated predictor variants "
        f"({', '.join(_VARIANT_NAMES)})",
    )
    batch.add_argument(
        "--mpl", default="1",
        help="comma-separated multiprogramming levels (default: 1)",
    )
    batch.add_argument(
        "--template-seed", type=int, default=0,
        help="RNG seed for --templates instantiation",
    )

    serve = sub.add_parser(
        "serve", help="serve predictions over HTTP/JSON (see docs/api.md)"
    )
    add_db_args(serve)
    serve.add_argument("--sr", type=float, default=0.05, help="sampling ratio")
    serve.add_argument(
        "--machine", choices=sorted(PROFILES), default="PC2", help="hardware profile"
    )
    serve.add_argument(
        "--estimator", choices=("sampling", "histogram"), default="sampling",
        help="selectivity estimator backend (default: sampling)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks an ephemeral one, printed at startup)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=8,
        help="bounded admission: concurrent prediction requests (default: 8)",
    )
    serve.add_argument(
        "--variants", default="all",
        help="default predictor variants for requests that omit them "
        f"({', '.join(_VARIANT_NAMES)})",
    )
    serve.add_argument(
        "--mpl", default="1",
        help="default comma-separated multiprogramming levels (default: 1)",
    )
    serve.add_argument(
        "--warmup", action="store_true",
        help="pre-serve one instantiation of every TPC-H template at startup",
    )

    bench = sub.add_parser(
        "bench", help="run registered benchmark scenarios, emit JSON artifacts"
    )
    tier = bench.add_mutually_exclusive_group()
    tier.add_argument(
        "--quick", action="store_true",
        help="fast CI tier: reduced workloads, quick-eligible scenarios only",
    )
    tier.add_argument(
        "--full", action="store_true",
        help="every scenario at full workload (the default)",
    )
    bench.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run exactly this scenario (repeatable; overrides the tier gate)",
    )
    bench.add_argument(
        "-k", "--filter", default=None, metavar="PATTERN",
        help="fnmatch/substring filter on scenario names and tags",
    )
    bench.add_argument(
        "--jobs", type=int, default=1,
        help="fan scenarios out across N worker processes (default: 1)",
    )
    bench.add_argument(
        "--output-dir", default=".",
        help="where BENCH_*.json artifacts land (default: cwd)",
    )
    bench.add_argument(
        "--bench-dir", default=None,
        help="directory holding bench_*.py files (default: ./benchmarks)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the selected scenarios and exit",
    )
    bench.add_argument(
        "--no-artifacts", action="store_true",
        help="run without writing BENCH_*.json files",
    )

    report = sub.add_parser(
        "report", help="regenerate the paper's tables/figures as one report"
    )
    report.add_argument("--quick", action="store_true")
    report.add_argument("--output", default=None)
    report.add_argument("--seed", type=int, default=0)

    return parser


def _database(args):
    config = TpchConfig(scale_factor=args.scale, skew_z=args.skew, seed=args.seed)
    return generate_tpch(config), config


def _cmd_generate(args, out) -> int:
    db, config = _database(args)
    print(f"generated {config.describe()}", file=out)
    for name in db.table_names:
        table = db.table(name)
        print(f"  {name:>10}: {table.num_rows:>9} rows, {table.num_pages:>6} pages", file=out)
    return 0


def _cmd_explain(args, out) -> int:
    db, _ = _database(args)
    planned = Optimizer(db).plan_sql(args.sql)
    print(planned.explain(), file=out)
    return 0


def _session_config(args, **overrides) -> SessionConfig:
    """The declarative session config shared by predict/predict-batch/serve.

    Seed layout matches the historical hand-wired CLI: the simulator is
    seeded with ``--seed``, the sample database with ``--seed + 1``.
    """
    try:
        return SessionConfig(
            scale_factor=args.scale,
            skew_z=args.skew,
            db_seed=args.seed,
            machine=args.machine,
            calibration_seed=args.seed,
            sampling_ratio=args.sr,
            sampling_seed=args.seed + 1,
            **overrides,
        )
    except SessionError as error:
        raise SystemExit(str(error)) from None


def _cmd_predict(args, out) -> int:
    session = Session(_session_config(args))
    print(session.explain(args.sql), file=out)
    response = session.predict(args.sql)
    result = response.results[0]
    print(f"\npredicted mean : {result.mean:.4f} s", file=out)
    print(f"predicted std  : {result.std:.4f} s", file=out)
    for interval in result.intervals:
        print(
            f"{interval.confidence:>6.0%} interval : "
            f"[{interval.low:.4f} s, {interval.high:.4f} s]",
            file=out,
        )
    if args.execute:
        executed = Executor(session.database).execute(session.plan(args.sql))
        actual = session.simulator.run_repeated(executed.counts)
        print(f"actual (sim)   : {actual:.4f} s", file=out)
    return 0


def _batch_queries(args) -> list[str]:
    if args.sql:
        return list(args.sql)
    if args.file:
        with open(args.file) as handle:
            lines = [line.strip() for line in handle]
        return [line for line in lines if line and not line.startswith("#")]
    from .util import ensure_rng
    from .workloads.tpch_templates import TPCH_TEMPLATES

    rng = ensure_rng(args.template_seed)
    return [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(args.templates)
    ]


def _parse_variants(spec: str) -> tuple[str, ...]:
    names = []
    for name in spec.split(","):
        try:
            names.append(Variant.from_name(name).wire_name)
        except PredictionError:
            raise SystemExit(
                f"unknown variant {name.strip().lower()!r}; choose from "
                f"{', '.join(_VARIANT_NAMES)}"
            ) from None
    return tuple(names)


def _parse_mpls(spec: str) -> tuple[int, ...]:
    try:
        return tuple(int(level) for level in spec.split(","))
    except ValueError:
        raise SystemExit(
            f"--mpl expects comma-separated integers, got {spec!r}"
        ) from None


def _cmd_predict_batch(args, out) -> int:
    queries = _batch_queries(args)
    if not queries:
        print("no queries to serve", file=out)
        return 1
    variants = _parse_variants(args.variants)
    mpls = _parse_mpls(args.mpl)
    session = Session(
        _session_config(args, default_variants=variants, default_mpls=mpls)
    )
    # Failures are skipped: one malformed statement yields a per-query
    # error row, not an aborted batch; the exit code still reports it.
    batch = session.predict_batch(queries)

    header = f"{'#':>3}  {'mean':>9}  {'std':>9}  {'90% interval':>22}  cache"
    print(header, file=out)
    failure_by_index = {failure.index: failure for failure in batch.failures}
    responses = iter(batch.responses)
    for index in range(len(queries)):
        failure = failure_by_index.get(index)
        if failure is not None:
            print(f"{index:>3}  ERROR [{failure.code}]  {failure.error}", file=out)
            continue
        response = next(responses)
        result = response.result(variants[0], mpls[0])
        interval = result.interval(0.90)
        cache = "hit" if response.prepare_was_cached else "miss"
        print(
            f"{index:>3}  {result.mean:>8.4f}s  {result.std:>8.4f}s  "
            f"[{interval.low:>8.4f}s, {interval.high:>8.4f}s]  {cache}",
            file=out,
        )
        for mpl in mpls[1:]:
            loaded = response.result(variants[0], mpl)
            print(
                f"{'':>3}  {loaded.mean:>8.4f}s  {loaded.std:>8.4f}s  "
                f"(mpl={mpl})",
                file=out,
            )
    stats = batch.stats
    print(
        f"\nserved {len(batch)} of {len(queries)} queries in "
        f"{batch.elapsed_seconds:.3f}s "
        f"({batch.queries_per_second:.1f} q/s) — "
        f"{stats.prepares_run} prepares, {stats.prepare_cache_hits} cache hits "
        f"(hit rate {stats.describe_hit_rate()}), "
        f"{stats.assemblies} assemblies",
        file=out,
    )
    for line in session.stats().cache_lines():
        print(line, file=out)
    if batch.failures:
        print(f"{len(batch.failures)} queries failed", file=out)
        return 1
    return 0


def _cmd_serve(args, out) -> int:
    from .api.http import build_server
    from .api.wire import SCHEMA_VERSION

    variants = _parse_variants(args.variants)
    mpls = _parse_mpls(args.mpl)
    config = _session_config(
        args,
        estimator=args.estimator,
        default_variants=variants,
        default_mpls=mpls,
    )
    print(
        f"building session (scale {args.scale}, machine {args.machine}, "
        f"estimator {args.estimator}) ...",
        file=out, flush=True,
    )
    session = Session(config)
    if args.warmup:
        warmed = session.warmup()
        print(f"warmed {warmed} template queries", file=out, flush=True)
    server = build_server(
        session, host=args.host, port=args.port,
        max_in_flight=args.max_in_flight,
    )
    # The "listening on" line is the startup contract: tools/http_smoke.py
    # and operators parse the (possibly ephemeral) bound address from it.
    print(
        f"repro serve listening on {server.url} "
        f"(wire schema v{SCHEMA_VERSION}, max in-flight {args.max_in_flight})",
        file=out, flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        server.server_close()
        session.close()
    return 0


def _cmd_bench(args, out) -> int:
    from pathlib import Path

    from .benchreport import (
        BenchRegistry,
        load_scenarios,
        run_scenarios,
        write_artifacts,
    )
    from .benchreport.registry import default_bench_dir

    bench_dir = Path(args.bench_dir) if args.bench_dir else default_bench_dir()
    # A fresh registry per invocation: in-process callers (tests, other
    # tools) must not see scenarios accumulated from earlier loads.
    registry = load_scenarios(bench_dir, registry=BenchRegistry())
    tier = "quick" if args.quick else "full"
    selected = registry.select(
        tier=tier, names=args.scenario, pattern=args.filter
    )
    if not selected:
        print("no scenarios selected", file=out)
        return 1
    if args.list_scenarios:
        for scenario in selected:
            tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
            quick = "quick" if scenario.quick else "full-only"
            print(f"{scenario.name:<26} {quick:<9}{tags}", file=out)
        return 0

    print(
        f"running {len(selected)} scenarios, tier={tier}, seed={args.seed}"
        + (f", jobs={args.jobs}" if args.jobs > 1 else ""),
        file=out,
    )

    def progress(result):
        status = "ok" if result.ok else "FAILED"
        print(
            f"  {result.scenario:<26} {result.wall_seconds:>8.2f}s  "
            f"{len(result.metrics):>2} metrics  {status}",
            file=out,
        )

    results = run_scenarios(
        selected, tier=tier, seed=args.seed, jobs=args.jobs,
        bench_dir=bench_dir, progress=progress,
    )
    total = sum(r.wall_seconds for r in results)
    failures = [r for r in results if not r.ok]
    if not args.no_artifacts:
        summary_path = write_artifacts(results, Path(args.output_dir))
        print(f"artifacts in {Path(args.output_dir).resolve()}", file=out)
        print(f"summary appended to {summary_path}", file=out)
    print(
        f"{len(results) - len(failures)}/{len(results)} scenarios ok "
        f"in {total:.1f}s",
        file=out,
    )
    for result in failures:
        print(f"\nFAILED {result.scenario}:\n{result.error}", file=out)
    return 1 if failures else 0


def _cmd_report(args, out) -> int:
    from .experiments.run_all import build_lab, report_sections

    lab = build_lab(quick=args.quick, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            report_sections(lab, handle)
        print(f"report written to {args.output}", file=out)
    else:
        report_sections(lab, out)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "explain": _cmd_explain,
    "predict": _cmd_predict,
    "predict-batch": _cmd_predict_batch,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "report": _cmd_report,
}


def main(argv=None, out=None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
