"""The paper's primary contribution: the uncertainty-aware predictor."""

from .covariance import (
    PlanAncestry,
    bound_linear_linear,
    bound_square_linear,
    bound_square_square,
    cov_power_bound,
    g_factor,
    h_factor,
)
from .lec import LeastExpectedCostChooser, PlanCandidate
from .predictor import (
    PredictionResult,
    PreparedPrediction,
    UncertaintyPredictor,
    Variant,
)
from .progress import ProgressEstimate, ProgressIndicator
from .variance import (
    VarianceBreakdown,
    VarianceOptions,
    VectorizedAssembler,
    assemble_distribution_parameters,
    assemble_distribution_parameters_reference,
)

__all__ = [
    "LeastExpectedCostChooser",
    "PlanCandidate",
    "UncertaintyPredictor",
    "PredictionResult",
    "PreparedPrediction",
    "Variant",
    "VarianceOptions",
    "VarianceBreakdown",
    "VectorizedAssembler",
    "assemble_distribution_parameters",
    "assemble_distribution_parameters_reference",
    "PlanAncestry",
    "bound_linear_linear",
    "bound_square_linear",
    "bound_square_square",
    "cov_power_bound",
    "g_factor",
    "h_factor",
    "ProgressIndicator",
    "ProgressEstimate",
]
