"""The paper's primary contribution: the uncertainty-aware predictor."""

from .covariance import (
    PlanAncestry,
    bound_linear_linear,
    bound_square_linear,
    bound_square_square,
    cov_power_bound,
    g_factor,
    h_factor,
)
from .lec import LeastExpectedCostChooser, PlanCandidate
from .predictor import (
    PredictionResult,
    PreparedPrediction,
    UncertaintyPredictor,
    Variant,
)
from .progress import ProgressEstimate, ProgressIndicator
from .variance import (
    VarianceBreakdown,
    VarianceOptions,
    assemble_distribution_parameters,
)

__all__ = [
    "LeastExpectedCostChooser",
    "PlanCandidate",
    "UncertaintyPredictor",
    "PredictionResult",
    "PreparedPrediction",
    "Variant",
    "VarianceOptions",
    "VarianceBreakdown",
    "assemble_distribution_parameters",
    "PlanAncestry",
    "bound_linear_linear",
    "bound_square_linear",
    "bound_square_square",
    "cov_power_bound",
    "g_factor",
    "h_factor",
    "ProgressIndicator",
    "ProgressEstimate",
]
