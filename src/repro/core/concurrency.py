"""Uncertainty-aware prediction for concurrent workloads (Section 8).

The paper's conclusion sketches the extension to multi-query workloads:
a query's selectivities do not depend on what runs next to it, so
"viewing the interference between queries as changing the distribution
of the c's" carries the whole framework over. This module implements
that idea, following the queueing-flavoured interference model of Wu et
al. [47]:

* per-unit *contention factors* scale the cost-unit means with the
  multiprogramming level (I/O units degrade faster than CPU units);
* interference is itself uncertain, so the same factors inflate the
  cost-unit variances (quadratically, as a scale on a random variable);
* the selectivity distributions are untouched.

The result is a :class:`CalibratedUnits` for the loaded machine, usable
with the unmodified :class:`~repro.core.predictor.UncertaintyPredictor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration.calibrator import CalibratedUnits
from ..mathstats.normal import NormalDistribution
from .predictor import PredictionResult, UncertaintyPredictor

__all__ = ["InterferenceModel", "ConcurrentPredictor"]


@dataclass(frozen=True)
class InterferenceModel:
    """How each cost unit degrades per additional concurrent query.

    With multiprogramming level ``mpl`` (the query itself plus
    ``mpl - 1`` neighbours), unit ``u``'s mean scales by
    ``1 + slope_u * (mpl - 1)`` and an extra relative variance of
    ``(jitter_u * (mpl - 1))^2`` is added — neighbours are a random mix,
    so their pressure is uncertain.
    """

    #: per-unit mean-degradation slopes per neighbour
    slopes: dict[str, float]
    #: per-unit relative std of the interference itself, per neighbour
    jitters: dict[str, float]

    @classmethod
    def default(cls) -> "InterferenceModel":
        # I/O contends hardest (shared disk arm / bandwidth); random I/O
        # worst of all; CPU scales gently until cores saturate.
        return cls(
            slopes={"cs": 0.6, "cr": 0.9, "ct": 0.15, "ci": 0.15, "co": 0.1},
            jitters={"cs": 0.10, "cr": 0.15, "ct": 0.03, "ci": 0.03, "co": 0.02},
        )

    def loaded_units(self, units: CalibratedUnits, mpl: int) -> CalibratedUnits:
        """The cost-unit distributions under multiprogramming level mpl."""
        if mpl < 1:
            raise ValueError(f"multiprogramming level must be >= 1, got {mpl}")
        neighbours = mpl - 1
        distributions = {}
        samples: dict[str, list[float]] = {}
        for name, dist in units.distributions.items():
            scale = 1.0 + self.slopes.get(name, 0.0) * neighbours
            mean = dist.mean * scale
            variance = dist.variance * scale * scale
            jitter = self.jitters.get(name, 0.0) * neighbours
            variance += (mean * jitter) ** 2
            distributions[name] = NormalDistribution(mean, variance)
            # The calibration samples are observations of the unloaded unit;
            # under load each observation degrades by the same mean scale.
            # The jitter term is *interference* uncertainty — it has no
            # per-observation counterpart, so it is reflected only in the
            # inflated variance above, not in the scaled samples.
            samples[name] = [value * scale for value in units.samples.get(name, [])]
        return CalibratedUnits(distributions=distributions, samples=samples)


class ConcurrentPredictor:
    """Predicts running-time distributions at a given concurrency level."""

    def __init__(
        self,
        units: CalibratedUnits,
        interference: InterferenceModel | None = None,
    ):
        self._base_units = units
        self._interference = interference or InterferenceModel.default()
        self._predictors: dict[int, UncertaintyPredictor] = {}

    def predictor_at(self, mpl: int) -> UncertaintyPredictor:
        if mpl not in self._predictors:
            loaded = self._interference.loaded_units(self._base_units, mpl)
            self._predictors[mpl] = UncertaintyPredictor(loaded)
        return self._predictors[mpl]

    def predict(self, planned, sample_db, mpl: int = 1) -> PredictionResult:
        """The query's distribution with ``mpl - 1`` concurrent neighbours."""
        return self.predictor_at(mpl).predict(planned, sample_db)

    def predict_prepared(self, planned, prepared, mpl: int = 1) -> PredictionResult:
        """Same, reusing a prepared sampling/fitting pass (mpl-independent)."""
        return self.predictor_at(mpl).predict_prepared(planned, prepared)

    def sweep(self, planned, sample_db, levels) -> dict[int, PredictionResult]:
        """Predictions across multiprogramming levels, sharing one prepare."""
        prepared = self.predictor_at(1).prepare(planned, sample_db)
        return {
            mpl: self.predict_prepared(planned, prepared, mpl) for mpl in levels
        }
