"""Covariance bounds between selectivity estimates (Section 5.3, App. A).

Two selectivity estimators are correlated exactly when one operator is a
descendant of the other (Lemma 3). Their covariance cannot be computed
directly, but the paper derives three upper bounds for linear terms:

* B1 = sqrt(S^2_rho(m, n) * S^2_rho'(m, n))   (Theorem 7, tightest)
* B2 = sqrt(Var[rho_n] * Var[rho'_n])         (Cauchy-Schwarz)
* B3 = f(n, m) g(rho) g(rho')                 (Theorem 8)

plus analogues for squared terms (Theorems 9 and 10). We evaluate every
applicable bound and take the minimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mathstats.normal import noncentral_moment
from ..plan.physical import PlanNode
from ..sampling.estimator import NodeSelectivity

__all__ = [
    "PlanAncestry",
    "g_factor",
    "h_factor",
    "bound_linear_linear",
    "bound_square_linear",
    "bound_square_square",
    "power_variance",
    "cov_power_bound",
]


@dataclass
class PlanAncestry:
    """Ancestor/descendant relation over plan op ids (= variable ids)."""

    descendants: dict[int, frozenset[int]]

    @classmethod
    def from_plan(cls, root: PlanNode) -> "PlanAncestry":
        descendants: dict[int, frozenset[int]] = {}

        def collect(node: PlanNode) -> frozenset[int]:
            below: set[int] = set()
            for child in node.children:
                below |= collect(child)
                below.add(child.op_id)
            result = frozenset(below)
            descendants[node.op_id] = result
            return result

        collect(root)
        return cls(descendants=descendants)

    def related(self, u: int, v: int) -> bool:
        """True when u is an ancestor or descendant of v (u != v)."""
        if u == v:
            return False
        return v in self.descendants.get(u, frozenset()) or u in self.descendants.get(
            v, frozenset()
        )


def g_factor(rho: float) -> float:
    """g(rho) = sqrt(rho (1 - rho)) — Theorem 8."""
    rho = min(max(rho, 0.0), 1.0)
    return math.sqrt(rho * (1.0 - rho))


def h_factor(rho: float) -> float:
    """h(rho) = sqrt(rho (1 - rho) (rho - rho^2 + 1)) — Theorem 9."""
    rho = min(max(rho, 0.0), 1.0)
    return math.sqrt(rho * (1.0 - rho) * (rho - rho * rho + 1.0))


def power_variance(selectivity: NodeSelectivity, exponent: int) -> float:
    """Var[X^p] treating X ~ N(mean, variance) (exact normal moments)."""
    mean, variance = selectivity.mean, selectivity.variance
    second = noncentral_moment(mean, variance, 2 * exponent)
    first = noncentral_moment(mean, variance, exponent)
    return max(second - first * first, 0.0)


def _shared_info(u: NodeSelectivity, v: NodeSelectivity):
    """(shared aliases, m, n) for a correlated pair (one contains the other)."""
    shared = set(u.leaf_aliases) & set(v.leaf_aliases)
    m = len(shared)
    sizes = [u.sample_sizes[a] for a in shared if a in u.sample_sizes]
    sizes += [v.sample_sizes[a] for a in shared if a in v.sample_sizes]
    n = min(sizes) if sizes else 2
    return shared, m, max(n, 2)


def bound_linear_linear(u: NodeSelectivity, v: NodeSelectivity) -> float:
    """min(B1, B2, B3) for |Cov(rho_n, rho'_n)|."""
    if u.variance == 0.0 or v.variance == 0.0:
        return 0.0
    shared, m, n = _shared_info(u, v)
    if m == 0:
        return 0.0
    b1 = math.sqrt(
        max(u.restricted_variance(shared), 0.0)
        * max(v.restricted_variance(shared), 0.0)
    )
    b2 = math.sqrt(u.variance * v.variance)
    f = 1.0 - (1.0 - 1.0 / n) ** m
    b3 = f * g_factor(u.mean) * g_factor(v.mean)
    return min(b1, b2, b3)


def bound_square_linear(squared: NodeSelectivity, linear: NodeSelectivity) -> float:
    """Theorem 10 bound on |Cov(rho_n^2, rho'_n)| (min with Cauchy-Schwarz)."""
    if squared.variance == 0.0 or linear.variance == 0.0:
        return 0.0
    shared, m, n = _shared_info(squared, linear)
    if m == 0:
        return 0.0
    k = max(squared.num_relations, 1)
    k_prime = max(linear.num_relations, 1)
    f = (1.0 - (1.0 - 1.0 / n) ** k * (1.0 - 2.0 / n) ** m) * math.sqrt(
        1.0 - (1.0 - 1.0 / n) ** k
    ) * math.sqrt(1.0 - (1.0 - 1.0 / n) ** k_prime)
    theorem = f * h_factor(squared.mean) * g_factor(linear.mean)
    cauchy = math.sqrt(power_variance(squared, 2) * power_variance(linear, 1))
    return min(theorem, cauchy)


def bound_square_square(u: NodeSelectivity, v: NodeSelectivity) -> float:
    """Theorem 9 bound on |Cov(rho_n^2, rho'^2_n)| (min with Cauchy-Schwarz)."""
    if u.variance == 0.0 or v.variance == 0.0:
        return 0.0
    shared, m, n = _shared_info(u, v)
    if m == 0:
        return 0.0
    k = max(u.num_relations, 1)
    k_prime = max(v.num_relations, 1)
    exponent = max(k + k_prime - m, 0)
    f = (
        1.0
        - (1.0 - 1.0 / n) ** exponent
        * max(1.0 - 2.0 / n, 0.0) ** m
        * max(1.0 - 3.0 / n, 0.0) ** m
    ) * math.sqrt(1.0 - (1.0 - 1.0 / n) ** k) * math.sqrt(
        1.0 - (1.0 - 1.0 / n) ** k_prime
    )
    theorem = f * h_factor(u.mean) * h_factor(v.mean)
    cauchy = math.sqrt(power_variance(u, 2) * power_variance(v, 2))
    return min(theorem, cauchy)


def cov_power_bound(
    u: NodeSelectivity, p: int, v: NodeSelectivity, q: int
) -> float:
    """|Cov(X_u^p, X_v^q)| bound for correlated u, v with p, q in {1, 2}."""
    if p == 1 and q == 1:
        return bound_linear_linear(u, v)
    if p == 2 and q == 1:
        return bound_square_linear(u, v)
    if p == 1 and q == 2:
        return bound_square_linear(v, u)
    if p == 2 and q == 2:
        return bound_square_square(u, v)
    # Exponents beyond 2 do not occur in the C1..C6 families; fall back to
    # the generic Cauchy-Schwarz bound on the powered variables.
    return math.sqrt(power_variance(u, p) * power_variance(v, q))
