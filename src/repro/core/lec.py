"""Least-expected-cost plan choice (Section 6.5.1).

The paper points at Chu/Halpern/Seshadri's LEC optimization as a
consumer of selectivity *distributions*: instead of ranking candidate
plans by cost at the optimizer's point estimates, rank them by expected
cost under the sampled selectivity distributions. This module
implements that application on top of the uncertainty predictor.

The two rankings differ when the sampling pass reveals that the
optimizer's cardinality estimate was optimistic: a plan that looks
cheap on paper (say, a nested-loop join over a "tiny" inner) carries an
explosive expected cost once its input selectivity has real variance.
A risk-averse variant (mean plus lambda times sigma) is also provided.

Evaluating one query means sampling up to five candidate plans whose
shapes mostly differ *above* the leaves, so the chooser threads one
shared :class:`~repro.sampling.engine.SamplingEngine` through every
candidate's prepare pass: scans and lower join subtrees are sampled
once and served from the engine for the remaining candidates (the
engine's signatures are invariant to the join algorithm and scan access
path — exactly the knobs the candidate configurations turn).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..calibration.calibrator import CalibratedUnits
from ..optimizer.cost_model import CostModel
from ..optimizer.optimizer import Optimizer, OptimizerConfig, PlannedQuery
from ..sampling.engine import SamplingEngine
from ..sampling.sample_db import SampleDatabase
from ..storage import Database
from .predictor import UncertaintyPredictor

__all__ = ["PlanCandidate", "LeastExpectedCostChooser"]

#: Alternative physical configurations explored as plan candidates.
_CANDIDATE_CONFIGS = {
    "default": OptimizerConfig(),
    "no-index": OptimizerConfig(enable_index_scans=False),
    "eager-index": OptimizerConfig(index_scan_threshold=0.5),
    "hash-only": OptimizerConfig(nestloop_max_inner_rows=0.0),
    "nestloop-happy": OptimizerConfig(nestloop_max_inner_rows=4096.0),
}


#: Candidate evaluations retained per chooser (LRU; each entry holds the
#: full plans and predictions for one (sql, sample set)).
_CANDIDATE_CACHE_SIZE = 128


@dataclass(frozen=True)
class PlanCandidate:
    """One candidate plan with both cost views (immutable: instances are
    shared between the chooser's cache and every caller)."""

    label: str
    planned: PlannedQuery
    expected_cost: float  # E[t_q] under the sampled distributions (LEC)
    point_cost: float  # classic view: Eq. 1 at the optimizer's estimates
    cost_std: float

    def __str__(self) -> str:
        return (
            f"{self.label}: E[cost]={self.expected_cost:.4f}s "
            f"(optimizer view {self.point_cost:.4f}s, std {self.cost_std:.4g}s)"
        )

    def risk_adjusted_cost(self, risk_aversion: float = 1.0) -> float:
        """Mean-plus-lambda-sigma cost for risk-averse plan choice."""
        return self.expected_cost + risk_aversion * self.cost_std


class LeastExpectedCostChooser:
    """Ranks candidate plans by expected running time."""

    def __init__(
        self,
        database: Database,
        units: CalibratedUnits,
        engine: SamplingEngine | None = None,
    ):
        self._database = database
        self._predictor = UncertaintyPredictor(units)
        self._candidates: OrderedDict[tuple, list[PlanCandidate]] = OrderedDict()
        # One engine across all candidates and queries: candidate configs
        # share their leaf scans and lower joins, and repeated queries on
        # the same sample set share everything below their aggregates.
        self._engine = engine if engine is not None else SamplingEngine()

    @property
    def engine(self) -> SamplingEngine:
        """The shared sub-plan sampling engine (for stats inspection)."""
        return self._engine

    def candidates(self, sql: str, sample_db: SampleDatabase) -> list[PlanCandidate]:
        """Evaluate every distinct candidate plan for ``sql``.

        Results are cached per (sql, sample set), so comparing the LEC
        choice against the point or risk-averse choice on the same query
        plans and samples each candidate exactly once instead of
        repeating all the work per chooser.
        """
        key = (sql, sample_db.fingerprint())
        cached = self._candidates.get(key)
        if cached is not None:
            self._candidates.move_to_end(key)
            return list(cached)
        results: list[PlanCandidate] = []
        seen_shapes: set[str] = set()
        for label, config in _CANDIDATE_CONFIGS.items():
            planned = Optimizer(self._database, config).plan_sql(sql)
            shape = planned.root.pretty()
            if shape in seen_shapes:
                continue
            seen_shapes.add(shape)
            prepared = self._predictor.prepare(planned, sample_db, engine=self._engine)
            expected = self._predictor.predict_prepared(planned, prepared)
            # The classic baseline: Eq. 1 at the optimizer's own cardinality
            # estimates, in seconds via the calibrated unit means.
            point = CostModel(self._database).plan_cost(
                planned.root,
                planned.est_cards,
                units=self._predictor.units.means(),
            )
            results.append(
                PlanCandidate(
                    label=label,
                    planned=planned,
                    expected_cost=expected.mean,
                    point_cost=point,
                    cost_std=expected.std,
                )
            )
        self._candidates[key] = results
        if len(self._candidates) > _CANDIDATE_CACHE_SIZE:
            self._candidates.popitem(last=False)
        return list(results)

    def choose(self, sql: str, sample_db: SampleDatabase) -> PlanCandidate:
        """The least-expected-cost plan."""
        candidates = self.candidates(sql, sample_db)
        return min(candidates, key=lambda c: c.expected_cost)

    def choose_by_point(self, sql: str, sample_db: SampleDatabase) -> PlanCandidate:
        """The classic choice: cheapest at the optimizer's estimates."""
        candidates = self.candidates(sql, sample_db)
        return min(candidates, key=lambda c: c.point_cost)

    def choose_risk_averse(
        self, sql: str, sample_db: SampleDatabase, risk_aversion: float = 1.0
    ) -> PlanCandidate:
        """The mean + lambda * sigma choice."""
        candidates = self.candidates(sql, sample_db)
        return min(candidates, key=lambda c: c.risk_adjusted_cost(risk_aversion))
