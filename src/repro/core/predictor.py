"""Algorithm 2: the uncertainty-aware execution time predictor.

Pipeline per query:

1. run the plan over the sample tables once, obtaining the selectivity
   distributions of every operator (Section 3.2, Algorithm 1);
2. fit the logical cost functions on a grid around the estimated
   selectivities (Section 4);
3. combine with the calibrated cost-unit distributions to obtain
   t_q ~ N(E[t_q], Var[t_q]) (Section 5, Algorithm 3).

The output is a distribution of *likely running times*: the
"self-awareness" of the point predictor, not the distribution of
repeated physical executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..calibration.calibrator import CalibratedUnits
from ..costfuncs.fitting import DEFAULT_GRID_W, CostFunctionFitter, OperatorCostFunctions
from ..errors import PredictionError
from ..mathstats.normal import NormalDistribution
from ..optimizer.optimizer import PlannedQuery
from ..sampling.engine import SamplingEngine
from ..sampling.estimator import SamplingEstimate, SelectivityEstimator
from ..sampling.sample_db import SampleDatabase
from .variance import VarianceBreakdown, VarianceOptions, VectorizedAssembler

__all__ = ["Variant", "PreparedPrediction", "PredictionResult", "UncertaintyPredictor"]


class Variant(Enum):
    """The predictor variants compared in Section 6.3.3."""

    ALL = "All"
    NO_VAR_C = "NoVar[c]"
    NO_VAR_X = "NoVar[X]"
    NO_COV = "NoCov"

    @property
    def wire_name(self) -> str:
        """The lowercase name used on the wire and by the CLI."""
        return self.value.lower()

    @classmethod
    def from_name(cls, name: str) -> "Variant":
        """Resolve a case-insensitive wire/CLI name like ``"all"``/``"nocov"``."""
        key = name.strip().lower()
        for variant in cls:
            if variant.value.lower() == key:
                return variant
        known = ", ".join(sorted(variant.value.lower() for variant in cls))
        raise PredictionError(
            f"unknown predictor variant {name!r}; expected one of {known}"
        )


VARIANT_OPTIONS = {
    Variant.ALL: VarianceOptions(),
    Variant.NO_VAR_C: VarianceOptions(include_cost_unit_variance=False),
    Variant.NO_VAR_X: VarianceOptions(include_selectivity_variance=False),
    Variant.NO_COV: VarianceOptions(include_cross_covariances=False),
}


@dataclass
class PreparedPrediction:
    """The reusable per-query artifacts: sample estimates + fitted costs."""

    estimate: SamplingEstimate
    fitted: dict[int, OperatorCostFunctions]
    _assembler: VectorizedAssembler | None = field(
        default=None, repr=False, compare=False
    )
    _assembler_root: object = field(default=None, repr=False, compare=False)
    _node_parameters: tuple | None = field(default=None, repr=False, compare=False)

    def node_parameters(self) -> tuple:
        """``(means, variances)`` arrays over non-alias operators, by op id.

        The sampling estimate's per-node selectivity distributions
        (Algorithm 1's outputs) in stable operator-id order, cached —
        the batch kernel stacks these for every plan of a batch, and
        the estimate never changes after preparation.
        """
        if self._node_parameters is None:
            per_node = self.estimate.per_node
            means: list[float] = []
            variances: list[float] = []
            for op_id in sorted(per_node):
                node_sel = per_node[op_id]
                if node_sel.source == "alias":
                    continue
                means.append(node_sel.mean)
                variances.append(node_sel.variance)
            self._node_parameters = (
                np.array(means, dtype=np.float64),
                np.array(variances, dtype=np.float64),
            )
        return self._node_parameters

    def assembler(self, planned) -> VectorizedAssembler:
        """The (lazily built, cached) vectorized Algorithm-3 assembler.

        Caching it here lets every consumer that shares a prepare pass —
        variant ablations, multiprogramming sweeps, the batch service —
        also share the extracted term structure and covariance kernels.
        The cache is keyed on the plan object: asking for a different
        plan's assembly rebuilds rather than silently reusing the first
        plan's ancestry.
        """
        if self._assembler is None or self._assembler_root is not planned.root:
            self._assembler = VectorizedAssembler(planned, self.estimate, self.fitted)
            self._assembler_root = planned.root
        return self._assembler


@dataclass
class PredictionResult:
    """A predicted distribution of likely running times."""

    distribution: NormalDistribution
    breakdown: VarianceBreakdown
    prepared: PreparedPrediction
    variant: Variant
    #: Optional intervals precomputed by the SoA batch kernel, keyed by
    #: confidence level and already clamped. The kernel's vectorized
    #: interval math is bitwise-locked to the scalar path, so a lookup
    #: here is indistinguishable from computing the interval on demand.
    _intervals: dict[float, tuple[float, float]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def mean(self) -> float:
        return self.distribution.mean

    @property
    def std(self) -> float:
        return self.distribution.std

    def confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """The central interval, clamped to nonnegative running times.

        Both ends are clamped: a high-variance prediction whose Gaussian
        interval lies entirely below zero degenerates to (0.0, 0.0)
        rather than an inverted (0.0, negative) pair.
        """
        if self._intervals is not None:
            cached = self._intervals.get(confidence)
            if cached is not None:
                return cached
        low, high = self.distribution.interval(confidence)
        low, high = max(low, 0.0), max(high, 0.0)
        assert low <= high, (low, high)
        return low, high

    def prob_within(self, low: float, high: float) -> float:
        return self.distribution.prob_within(low, high)


class UncertaintyPredictor:
    """The paper's predictor: point estimate + uncertainty, low overhead."""

    def __init__(self, units: CalibratedUnits, grid_w: int = DEFAULT_GRID_W):
        self._units = units
        self._grid_w = grid_w

    @property
    def units(self) -> CalibratedUnits:
        return self._units

    # ------------------------------------------------------------------
    def prepare(
        self,
        planned: PlannedQuery,
        sample_db: SampleDatabase | None,
        use_gee: bool = False,
        method: str = "sampling",
        engine: SamplingEngine | None = None,
    ) -> PreparedPrediction:
        """Run selectivity estimation + fitting once; reusable across variants.

        ``method`` selects the selectivity estimator: "sampling" (the
        paper's Algorithm 1; requires ``sample_db``) or "histogram" (the
        catalog-statistics alternative the paper lists as future work).
        An optional shared :class:`~repro.sampling.engine.SamplingEngine`
        memoizes sub-plan sampling work across calls; it only applies to
        the "sampling" method.
        """
        if method == "sampling":
            if sample_db is None:
                raise PredictionError("sampling estimation requires a sample_db")
            estimate = SelectivityEstimator(
                sample_db, planned, use_gee=use_gee, engine=engine
            ).estimate()
        elif method == "histogram":
            from ..sampling.histogram_estimator import HistogramSelectivityEstimator

            estimate = HistogramSelectivityEstimator(planned).estimate()
        else:
            raise PredictionError(f"unknown estimation method: {method!r}")
        fitted = CostFunctionFitter(planned, estimate, grid_w=self._grid_w).fit_all()
        return PreparedPrediction(estimate=estimate, fitted=fitted)

    def predict_prepared(
        self,
        planned: PlannedQuery,
        prepared: PreparedPrediction,
        variant: Variant = Variant.ALL,
    ) -> PredictionResult:
        """Assemble the distribution from prepared artifacts."""
        breakdown = prepared.assembler(planned).assemble(
            self._units, VARIANT_OPTIONS[variant]
        )
        return PredictionResult(
            distribution=NormalDistribution(breakdown.mean, breakdown.variance),
            breakdown=breakdown,
            prepared=prepared,
            variant=variant,
        )

    def predict(
        self,
        planned: PlannedQuery,
        sample_db: SampleDatabase | None,
        variant: Variant = Variant.ALL,
        use_gee: bool = False,
        method: str = "sampling",
    ) -> PredictionResult:
        """End-to-end prediction for one planned query."""
        prepared = self.prepare(planned, sample_db, use_gee=use_gee, method=method)
        return self.predict_prepared(planned, prepared, variant)
