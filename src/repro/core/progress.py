"""Uncertainty-aware query progress indication (Section 6.5.2).

The paper proposes using the predicted distribution of running times as
a building block for progress indicators that report uncertainty. This
module implements that application: given t_q ~ N(mu, sigma^2) and the
elapsed time, report the distribution of the completed fraction and of
the remaining time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mathstats.normal import NormalDistribution

__all__ = ["ProgressEstimate", "ProgressIndicator"]


@dataclass(frozen=True)
class ProgressEstimate:
    """Progress at one instant: point estimate plus a confidence band."""

    elapsed: float
    fraction: float
    fraction_low: float
    fraction_high: float
    remaining_mean: float
    remaining_low: float
    remaining_high: float

    def describe(self) -> str:
        return (
            f"{self.fraction:6.1%} done "
            f"(between {self.fraction_low:.1%} and {self.fraction_high:.1%}); "
            f"~{self.remaining_mean:.2f}s left "
            f"[{self.remaining_low:.2f}s, {self.remaining_high:.2f}s]"
        )


class ProgressIndicator:
    """Progress from a predicted running-time distribution."""

    def __init__(self, prediction: NormalDistribution, confidence: float = 0.9):
        if prediction.mean <= 0:
            raise ValueError("predicted running time must be positive")
        self._prediction = prediction
        self._confidence = confidence

    def at(self, elapsed: float) -> ProgressEstimate:
        """Progress estimate after ``elapsed`` seconds."""
        if elapsed < 0:
            raise ValueError("elapsed time cannot be negative")
        low_t, high_t = self._prediction.interval(self._confidence)
        low_t = max(low_t, 1e-12)
        high_t = max(high_t, low_t)
        mean_t = self._prediction.mean
        # fraction = elapsed / T: monotone decreasing in T, so the band maps
        # through the interval endpoints in reverse order.
        fraction = min(elapsed / mean_t, 1.0)
        fraction_low = min(elapsed / high_t, 1.0)
        fraction_high = min(elapsed / low_t, 1.0)
        return ProgressEstimate(
            elapsed=elapsed,
            fraction=fraction,
            fraction_low=fraction_low,
            fraction_high=fraction_high,
            remaining_mean=max(mean_t - elapsed, 0.0),
            remaining_low=max(low_t - elapsed, 0.0),
            remaining_high=max(high_t - elapsed, 0.0),
        )
