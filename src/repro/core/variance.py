"""Algorithm 3: assembling E[t_q] and Var[t_q].

With fitted cost functions f_kc (polynomials in the selectivity
variables) and calibrated unit distributions c ~ N(mu_c, sigma_c^2),

    t_q = sum_c c * g_c,   g_c = sum_k f_kc.

Since the units are independent of each other and of the selectivities:

    E[t_q]   = sum_c mu_c E[g_c]
    Var[t_q] = sum_c [ (mu_c^2 + sigma_c^2) Var[g_c] + sigma_c^2 E[g_c]^2 ]
             + sum_{c != c'} mu_c mu_c' Cov(g_c, g_c')

Var[g_c] and Cov(g_c, g_c') expand over pairs of polynomial terms:
exact normal-moment computation when the variables involved are
independent or identical, covariance upper bounds (Section 5.3.2)
when they belong to nested operators.

Two implementations are provided:

* :class:`VectorizedAssembler` — the production path. Terms are grouped
  by (cost unit, monomial) into a dense coefficient matrix S once per
  prepared query; per variant the distinct-monomial covariance kernel K
  is evaluated only on pairs that can actually covary (a shared
  positive-variance variable, or two positive-variance variables of
  nested operators — every other pair is exactly zero for independent
  normals) and the term-pair double sum collapses to S K S^T.
* :func:`assemble_distribution_parameters_reference` — the original
  pure-Python double loop over all term pairs, kept as the executable
  specification; tests cross-check the two within float tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..calibration.calibrator import CalibratedUnits
from ..mathstats.moments import monomial_cov, monomial_mean, monomial_var
from ..optimizer.cost_model import COST_UNIT_NAMES
from ..sampling.estimator import NodeSelectivity, SamplingEstimate
from .covariance import PlanAncestry, cov_power_bound

__all__ = [
    "VarianceBreakdown",
    "VarianceOptions",
    "VectorizedAssembler",
    "assemble_distribution_parameters",
    "assemble_distribution_parameters_reference",
]


@dataclass(frozen=True)
class VarianceOptions:
    """Which uncertainty sources to include (the Section 6.3.3 ablations)."""

    include_cost_unit_variance: bool = True
    include_selectivity_variance: bool = True
    include_cross_covariances: bool = True


@dataclass
class VarianceBreakdown:
    """Where the predicted variance came from (diagnostics)."""

    mean: float = 0.0
    variance: float = 0.0
    exact_selectivity_term: float = 0.0
    bounded_covariance_term: float = 0.0
    cost_unit_term: float = 0.0
    per_unit_mean: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class _Term:
    unit: str
    coefficient: float
    monomial: tuple  # sorted tuple of (var_id, exponent)


def _canonical(monomial: dict[int, int]) -> tuple:
    return tuple(sorted(monomial.items()))


def _selectivity_distributions(
    estimate: SamplingEstimate, options: VarianceOptions
) -> tuple[dict[int, tuple[float, float]], dict[int, NodeSelectivity]]:
    """(mean, variance) per defining variable, honoring the NoVar[X] ablation."""
    distributions: dict[int, tuple[float, float]] = {}
    selectivities: dict[int, NodeSelectivity] = {}
    for op_id, node_sel in estimate.per_node.items():
        if node_sel.source == "alias":
            continue
        variance = node_sel.variance if options.include_selectivity_variance else 0.0
        distributions[op_id] = (node_sel.mean, variance)
        selectivities[op_id] = node_sel
    return distributions, selectivities


class VectorizedAssembler:
    """Reusable, vectorized Algorithm 3 for one prepared query.

    Construction extracts the polynomial structure (the expensive,
    options-independent part); :meth:`assemble` then evaluates the
    distribution parameters for any (units, options) pair. The per-options
    monomial kernel is cached, so fanning one prepared query out across
    the four Variants and many interference-loaded unit sets (as the
    batch service does) costs a handful of small matrix products each.
    """

    def __init__(self, planned, estimate: SamplingEstimate, fitted: dict):
        self._ancestry = PlanAncestry.from_plan(planned.root)
        self._estimate = estimate

        # Group terms: S[u, m] = sum of coefficients of unit u's terms with
        # distinct monomial m. The double sum over term pairs then factors
        # through the much smaller distinct-monomial space.
        index: dict[tuple, int] = {}
        monomials: list[tuple] = []
        entries: list[tuple[int, int, float]] = []
        unit_row = {unit: row for row, unit in enumerate(COST_UNIT_NAMES)}
        for op_functions in fitted.values():
            for unit, function in op_functions.functions.items():
                row = unit_row[unit]
                for coefficient, monomial in function.monomials():
                    if coefficient == 0.0:
                        continue
                    key = _canonical(monomial)
                    column = index.setdefault(key, len(monomials))
                    if column == len(monomials):
                        monomials.append(key)
                    entries.append((row, column, coefficient))
        self._monomials = monomials
        self._coefficients = np.zeros((len(COST_UNIT_NAMES), len(monomials)))
        for row, column, coefficient in entries:
            self._coefficients[row, column] += coefficient
        self._kernels: dict[
            VarianceOptions, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        self._unit_moments: dict[
            VarianceOptions, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    # ------------------------------------------------------------------
    def _kernel(
        self, options: VarianceOptions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(monomial means, exact kernel, bounded kernel) for one ablation."""
        cached = self._kernels.get(options)
        if cached is not None:
            return cached

        distributions, selectivities = _selectivity_distributions(
            self._estimate, options
        )
        monomials = self._monomials
        as_dicts = [dict(monomial) for monomial in monomials]
        size = len(monomials)
        means = np.empty(size)
        active: list[tuple[int, ...]] = []
        for i, monomial in enumerate(as_dicts):
            means[i] = monomial_mean(monomial, distributions)
            active.append(
                tuple(var for var in monomial if distributions[var][1] > 0.0)
            )

        related = self._ancestry.related
        exact_kernel = np.zeros((size, size))
        bound_kernel = np.zeros((size, size))
        for i in range(size):
            active_i = active[i]
            if not active_i:
                continue
            set_i = set(active_i)
            for j in range(i, size):
                active_j = active[j]
                if not active_j:
                    continue
                if set_i.isdisjoint(active_j) and not any(
                    related(u, v) for u in active_i for v in active_j if u != v
                ):
                    # All distinct variables independent and none shared with
                    # positive variance: the covariance is exactly zero.
                    continue
                first, second = (
                    (monomials[i], monomials[j])
                    if monomials[i] <= monomials[j]
                    else (monomials[j], monomials[i])
                )
                exact, bounded = _term_covariance(
                    dict(first),
                    dict(second),
                    distributions,
                    selectivities,
                    self._ancestry,
                    options,
                )
                exact_kernel[i, j] = exact_kernel[j, i] = exact
                bound_kernel[i, j] = bound_kernel[j, i] = bounded

        self._kernels[options] = (means, exact_kernel, bound_kernel)
        return means, exact_kernel, bound_kernel

    # ------------------------------------------------------------------
    def unit_moments(
        self, options: VarianceOptions = VarianceOptions()
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(E[g_c], exact Cov(g, g'), bounded Cov(g, g'))`` in unit space.

        The monomial-space kernels contracted down to the fixed
        ``len(COST_UNIT_NAMES)``-dimensional unit space: the shapes are
        ``(U,)``, ``(U, U)``, ``(U, U)``. These are the only
        plan-dependent inputs :meth:`assemble` needs, and they do not
        depend on the unit distributions, so the batch kernel caches
        them here once per (plan, options) and folds any number of
        mpl-loaded unit sets over them. The expressions are verbatim
        those of :meth:`assemble` — callers rely on the contraction
        being bitwise-identical to the scalar path.
        """
        cached = self._unit_moments.get(options)
        if cached is not None:
            return cached
        means, exact_kernel, bound_kernel = self._kernel(options)
        coefficients = self._coefficients
        g_mean = coefficients @ means
        exact_cov = coefficients @ exact_kernel @ coefficients.T
        bound_cov = coefficients @ bound_kernel @ coefficients.T
        cached = (g_mean, exact_cov, bound_cov)
        self._unit_moments[options] = cached
        return cached

    # ------------------------------------------------------------------
    def assemble(
        self,
        units: CalibratedUnits,
        options: VarianceOptions = VarianceOptions(),
    ) -> VarianceBreakdown:
        """Evaluate (E[t_q], Var[t_q]) for one set of unit distributions."""
        means, exact_kernel, bound_kernel = self._kernel(options)
        coefficients = self._coefficients

        g_mean = coefficients @ means  # E[g_c] per unit
        mu = np.array([units.mean(name) for name in COST_UNIT_NAMES])
        if options.include_cost_unit_variance:
            sigma2 = np.array([units.variance(name) for name in COST_UNIT_NAMES])
        else:
            sigma2 = np.zeros(len(COST_UNIT_NAMES))

        # Cov(g_c, g_c') over both kernels; then weight the unit pairs by
        # mu_c mu_c' (+ sigma_c^2 on the diagonal) exactly as in Eq. above.
        exact_cov = coefficients @ exact_kernel @ coefficients.T
        bound_cov = coefficients @ bound_kernel @ coefficients.T
        weights = np.outer(mu, mu) + np.diag(sigma2)

        mean = float(mu @ g_mean)
        exact_part = float((weights * exact_cov).sum())
        bounded_part = float((weights * bound_cov).sum())
        unit_part = float(sigma2 @ (g_mean * g_mean))
        variance = max(exact_part + bounded_part + unit_part, 0.0)
        return VarianceBreakdown(
            mean=mean,
            variance=variance,
            exact_selectivity_term=exact_part,
            bounded_covariance_term=bounded_part,
            cost_unit_term=unit_part,
            per_unit_mean={
                name: float(mu[row] * g_mean[row])
                for row, name in enumerate(COST_UNIT_NAMES)
            },
        )


def assemble_distribution_parameters(
    planned,
    estimate: SamplingEstimate,
    fitted: dict,
    units: CalibratedUnits,
    options: VarianceOptions = VarianceOptions(),
) -> VarianceBreakdown:
    """Compute (E[t_q], Var[t_q]) per the scheme above (vectorized path)."""
    return VectorizedAssembler(planned, estimate, fitted).assemble(units, options)


def assemble_distribution_parameters_reference(
    planned,
    estimate: SamplingEstimate,
    fitted: dict,
    units: CalibratedUnits,
    options: VarianceOptions = VarianceOptions(),
) -> VarianceBreakdown:
    """The original scalar term-pair double loop (executable specification).

    Kept verbatim as the reference implementation the vectorized path is
    cross-checked against; O(T^2) in the number of polynomial terms.
    """
    ancestry = PlanAncestry.from_plan(planned.root)
    distributions, selectivities = _selectivity_distributions(estimate, options)

    terms: list[_Term] = []
    for op_functions in fitted.values():
        for unit, function in op_functions.functions.items():
            for coefficient, monomial in function.monomials():
                if coefficient == 0.0:
                    continue
                terms.append(_Term(unit, coefficient, _canonical(monomial)))

    # E[g_c] per unit.
    g_mean = {unit: 0.0 for unit in COST_UNIT_NAMES}
    for term in terms:
        g_mean[term.unit] += term.coefficient * monomial_mean(
            dict(term.monomial), distributions
        )

    # Cov(g_c, g_c') over term pairs, split into exact and bounded parts.
    exact_cov = {
        (a, b): 0.0 for a in COST_UNIT_NAMES for b in COST_UNIT_NAMES
    }
    bound_cov = {
        (a, b): 0.0 for a in COST_UNIT_NAMES for b in COST_UNIT_NAMES
    }
    cache: dict[tuple, tuple[float, float]] = {}
    for i, t1 in enumerate(terms):
        for t2 in terms[i:]:
            key = (t1.monomial, t2.monomial) if t1.monomial <= t2.monomial else (
                t2.monomial,
                t1.monomial,
            )
            if key not in cache:
                cache[key] = _term_covariance(
                    dict(key[0]),
                    dict(key[1]),
                    distributions,
                    selectivities,
                    ancestry,
                    options,
                )
            exact, bounded = cache[key]
            weight = t1.coefficient * t2.coefficient
            if t1 is not t2:
                weight *= 2.0  # symmetric pair counted once
            pair = (t1.unit, t2.unit)
            exact_cov[pair] = exact_cov.get(pair, 0.0) + weight * exact
            bound_cov[pair] = bound_cov.get(pair, 0.0) + weight * bounded

    mu = {name: units.mean(name) for name in COST_UNIT_NAMES}
    sigma2 = {
        name: (units.variance(name) if options.include_cost_unit_variance else 0.0)
        for name in COST_UNIT_NAMES
    }

    mean = sum(mu[c] * g_mean[c] for c in COST_UNIT_NAMES)

    exact_part = 0.0
    bounded_part = 0.0
    unit_part = 0.0
    for c in COST_UNIT_NAMES:
        for c_prime in COST_UNIT_NAMES:
            if c == c_prime:
                exact_part += (mu[c] ** 2 + sigma2[c]) * exact_cov.get((c, c), 0.0)
                bounded_part += (mu[c] ** 2 + sigma2[c]) * bound_cov.get((c, c), 0.0)
                unit_part += sigma2[c] * g_mean[c] ** 2
            else:
                # The term-pair accumulation already stored the symmetric sum
                # over both term orders; summing over both ordered unit pairs
                # therefore needs a factor 1/2.
                exact_g = exact_cov.get((c, c_prime), 0.0) + exact_cov.get(
                    (c_prime, c), 0.0
                )
                bound_g = bound_cov.get((c, c_prime), 0.0) + bound_cov.get(
                    (c_prime, c), 0.0
                )
                exact_part += mu[c] * mu[c_prime] * exact_g / 2.0
                bounded_part += mu[c] * mu[c_prime] * bound_g / 2.0

    variance = max(exact_part + bounded_part + unit_part, 0.0)
    return VarianceBreakdown(
        mean=mean,
        variance=variance,
        exact_selectivity_term=exact_part,
        bounded_covariance_term=bounded_part,
        cost_unit_term=unit_part,
        per_unit_mean={c: mu[c] * g_mean[c] for c in COST_UNIT_NAMES},
    )


def _term_covariance(
    m1: dict[int, int],
    m2: dict[int, int],
    distributions: dict[int, tuple[float, float]],
    selectivities: dict[int, NodeSelectivity],
    ancestry: PlanAncestry,
    options: VarianceOptions,
) -> tuple[float, float]:
    """(exact part, bounded part) of Cov(M1, M2).

    Exact when all distinct variables across the monomials are
    independent (shared identical variables are fine). Correlated
    distinct variables — nested operators — are routed to the
    Section 5.3.2 bounds; with ``include_cross_covariances`` off they
    are treated as independent (the NoCov ablation).
    """
    if not m1 or not m2:
        return 0.0, 0.0

    correlated_pairs = [
        (u, v)
        for u in m1
        for v in m2
        if u != v
        and ancestry.related(u, v)
        and distributions[u][1] > 0.0
        and distributions[v][1] > 0.0
    ]
    if not correlated_pairs or not options.include_cross_covariances:
        return monomial_cov(m1, m2, distributions), 0.0

    shared_vars = set(m1) & set(m2)
    if len(correlated_pairs) == 1 and not shared_vars:
        (u, v) = correlated_pairs[0]
        # Cov(A * U^p, B * V^q) = E[A] E[B] Cov(U^p, V^q) when the residual
        # factors A, B are independent of U, V, and each other.
        rest1 = {var: exp for var, exp in m1.items() if var != u}
        rest2 = {var: exp for var, exp in m2.items() if var != v}
        rest_vars = set(rest1) | set(rest2)
        clean = all(
            not ancestry.related(a, b) or distributions[a][1] == 0.0
            or distributions[b][1] == 0.0
            for a in rest_vars
            for b in (set(m1) | set(m2))
            if a != b
        )
        if clean:
            factor = monomial_mean(rest1, distributions) * monomial_mean(
                rest2, distributions
            )
            bound = cov_power_bound(
                selectivities[u], m1[u], selectivities[v], m2[v]
            )
            return 0.0, factor * bound

    # Generic fallback: Cauchy-Schwarz over the full monomials. Variances
    # of single monomials are exact (within-monomial variables are
    # independent by the structure of the C1..C6 families).
    bound = math.sqrt(
        monomial_var(m1, distributions) * monomial_var(m2, distributions)
    )
    return 0.0, bound
