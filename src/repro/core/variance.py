"""Algorithm 3: assembling E[t_q] and Var[t_q].

With fitted cost functions f_kc (polynomials in the selectivity
variables) and calibrated unit distributions c ~ N(mu_c, sigma_c^2),

    t_q = sum_c c * g_c,   g_c = sum_k f_kc.

Since the units are independent of each other and of the selectivities:

    E[t_q]   = sum_c mu_c E[g_c]
    Var[t_q] = sum_c [ (mu_c^2 + sigma_c^2) Var[g_c] + sigma_c^2 E[g_c]^2 ]
             + sum_{c != c'} mu_c mu_c' Cov(g_c, g_c')

Var[g_c] and Cov(g_c, g_c') expand over pairs of polynomial terms:
exact normal-moment computation when the variables involved are
independent or identical, covariance upper bounds (Section 5.3.2)
when they belong to nested operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..calibration.calibrator import CalibratedUnits
from ..mathstats.moments import monomial_cov, monomial_mean, monomial_var
from ..optimizer.cost_model import COST_UNIT_NAMES
from ..sampling.estimator import NodeSelectivity, SamplingEstimate
from .covariance import PlanAncestry, cov_power_bound

__all__ = ["VarianceBreakdown", "VarianceOptions", "assemble_distribution_parameters"]


@dataclass(frozen=True)
class VarianceOptions:
    """Which uncertainty sources to include (the Section 6.3.3 ablations)."""

    include_cost_unit_variance: bool = True
    include_selectivity_variance: bool = True
    include_cross_covariances: bool = True


@dataclass
class VarianceBreakdown:
    """Where the predicted variance came from (diagnostics)."""

    mean: float = 0.0
    variance: float = 0.0
    exact_selectivity_term: float = 0.0
    bounded_covariance_term: float = 0.0
    cost_unit_term: float = 0.0
    per_unit_mean: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class _Term:
    unit: str
    coefficient: float
    monomial: tuple  # sorted tuple of (var_id, exponent)


def _canonical(monomial: dict[int, int]) -> tuple:
    return tuple(sorted(monomial.items()))


def assemble_distribution_parameters(
    planned,
    estimate: SamplingEstimate,
    fitted: dict,
    units: CalibratedUnits,
    options: VarianceOptions = VarianceOptions(),
) -> VarianceBreakdown:
    """Compute (E[t_q], Var[t_q]) per the scheme above."""
    ancestry = PlanAncestry.from_plan(planned.root)

    distributions: dict[int, tuple[float, float]] = {}
    selectivities: dict[int, NodeSelectivity] = {}
    for op_id, node_sel in estimate.per_node.items():
        if node_sel.source == "alias":
            continue
        variance = node_sel.variance if options.include_selectivity_variance else 0.0
        distributions[op_id] = (node_sel.mean, variance)
        selectivities[op_id] = node_sel

    terms: list[_Term] = []
    for op_functions in fitted.values():
        for unit, function in op_functions.functions.items():
            for coefficient, monomial in function.monomials():
                if coefficient == 0.0:
                    continue
                terms.append(_Term(unit, coefficient, _canonical(monomial)))

    # E[g_c] per unit.
    g_mean = {unit: 0.0 for unit in COST_UNIT_NAMES}
    for term in terms:
        g_mean[term.unit] += term.coefficient * monomial_mean(
            dict(term.monomial), distributions
        )

    # Cov(g_c, g_c') over term pairs, split into exact and bounded parts.
    exact_cov = {
        (a, b): 0.0 for a in COST_UNIT_NAMES for b in COST_UNIT_NAMES
    }
    bound_cov = {
        (a, b): 0.0 for a in COST_UNIT_NAMES for b in COST_UNIT_NAMES
    }
    cache: dict[tuple, tuple[float, float]] = {}
    for i, t1 in enumerate(terms):
        for t2 in terms[i:]:
            key = (t1.monomial, t2.monomial) if t1.monomial <= t2.monomial else (
                t2.monomial,
                t1.monomial,
            )
            if key not in cache:
                cache[key] = _term_covariance(
                    dict(key[0]),
                    dict(key[1]),
                    distributions,
                    selectivities,
                    ancestry,
                    options,
                )
            exact, bounded = cache[key]
            weight = t1.coefficient * t2.coefficient
            if t1 is not t2:
                weight *= 2.0  # symmetric pair counted once
            pair = (t1.unit, t2.unit)
            exact_cov[pair] = exact_cov.get(pair, 0.0) + weight * exact
            bound_cov[pair] = bound_cov.get(pair, 0.0) + weight * bounded

    mu = {name: units.mean(name) for name in COST_UNIT_NAMES}
    sigma2 = {
        name: (units.variance(name) if options.include_cost_unit_variance else 0.0)
        for name in COST_UNIT_NAMES
    }

    mean = sum(mu[c] * g_mean[c] for c in COST_UNIT_NAMES)

    exact_part = 0.0
    bounded_part = 0.0
    unit_part = 0.0
    for c in COST_UNIT_NAMES:
        for c_prime in COST_UNIT_NAMES:
            if c == c_prime:
                exact_part += (mu[c] ** 2 + sigma2[c]) * exact_cov.get((c, c), 0.0)
                bounded_part += (mu[c] ** 2 + sigma2[c]) * bound_cov.get((c, c), 0.0)
                unit_part += sigma2[c] * g_mean[c] ** 2
            else:
                # The term-pair accumulation already stored the symmetric sum
                # over both term orders; summing over both ordered unit pairs
                # therefore needs a factor 1/2.
                exact_g = exact_cov.get((c, c_prime), 0.0) + exact_cov.get(
                    (c_prime, c), 0.0
                )
                bound_g = bound_cov.get((c, c_prime), 0.0) + bound_cov.get(
                    (c_prime, c), 0.0
                )
                exact_part += mu[c] * mu[c_prime] * exact_g / 2.0
                bounded_part += mu[c] * mu[c_prime] * bound_g / 2.0

    variance = max(exact_part + bounded_part + unit_part, 0.0)
    return VarianceBreakdown(
        mean=mean,
        variance=variance,
        exact_selectivity_term=exact_part,
        bounded_covariance_term=bounded_part,
        cost_unit_term=unit_part,
        per_unit_mean={c: mu[c] * g_mean[c] for c in COST_UNIT_NAMES},
    )


def _term_covariance(
    m1: dict[int, int],
    m2: dict[int, int],
    distributions: dict[int, tuple[float, float]],
    selectivities: dict[int, NodeSelectivity],
    ancestry: PlanAncestry,
    options: VarianceOptions,
) -> tuple[float, float]:
    """(exact part, bounded part) of Cov(M1, M2).

    Exact when all distinct variables across the monomials are
    independent (shared identical variables are fine). Correlated
    distinct variables — nested operators — are routed to the
    Section 5.3.2 bounds; with ``include_cross_covariances`` off they
    are treated as independent (the NoCov ablation).
    """
    if not m1 or not m2:
        return 0.0, 0.0

    correlated_pairs = [
        (u, v)
        for u in m1
        for v in m2
        if u != v
        and ancestry.related(u, v)
        and distributions[u][1] > 0.0
        and distributions[v][1] > 0.0
    ]
    if not correlated_pairs or not options.include_cross_covariances:
        return monomial_cov(m1, m2, distributions), 0.0

    shared_vars = set(m1) & set(m2)
    if len(correlated_pairs) == 1 and not shared_vars:
        (u, v) = correlated_pairs[0]
        # Cov(A * U^p, B * V^q) = E[A] E[B] Cov(U^p, V^q) when the residual
        # factors A, B are independent of U, V, and each other.
        rest1 = {var: exp for var, exp in m1.items() if var != u}
        rest2 = {var: exp for var, exp in m2.items() if var != v}
        rest_vars = set(rest1) | set(rest2)
        clean = all(
            not ancestry.related(a, b) or distributions[a][1] == 0.0
            or distributions[b][1] == 0.0
            for a in rest_vars
            for b in (set(m1) | set(m2))
            if a != b
        )
        if clean:
            factor = monomial_mean(rest1, distributions) * monomial_mean(
                rest2, distributions
            )
            bound = cov_power_bound(
                selectivities[u], m1[u], selectivities[v], m2[v]
            )
            return 0.0, factor * bound

    # Generic fallback: Cauchy-Schwarz over the full monomials. Variances
    # of single monomials are exact (within-monomial variables are
    # independent by the structure of the C1..C6 families).
    bound = math.sqrt(
        monomial_var(m1, distributions) * monomial_var(m2, distributions)
    )
    return 0.0, bound
