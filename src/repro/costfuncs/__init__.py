"""Logical cost functions: families, NNLS solver, grid fitting."""

from .families import C1, C2, C3, C4, C5, C6, CostFunctionFamily, family_for
from .fitting import CostFunctionFitter, FittedCostFunction, OperatorCostFunctions
from .nnls import nnls

__all__ = [
    "CostFunctionFamily",
    "C1",
    "C2",
    "C3",
    "C4",
    "C5",
    "C6",
    "family_for",
    "nnls",
    "CostFunctionFitter",
    "FittedCostFunction",
    "OperatorCostFunctions",
]
