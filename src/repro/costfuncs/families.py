"""The logical cost-function families C1..C6 (Section 4.1).

Expressed in selectivity terms (the primed forms C1'..C6'): each family
is a polynomial basis over up to three variables — the operator's own
selectivity ``x``, and its left/right input selectivities ``xl``/``xr``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..plan.physical import OpKind

__all__ = [
    "CostFunctionFamily",
    "C1",
    "C2",
    "C3",
    "C4",
    "C5",
    "C6",
    "FAMILY_BY_KIND",
    "family_for",
]

#: A term is a mapping from family variable name to exponent.
Term = dict[str, int]


@dataclass(frozen=True)
class CostFunctionFamily:
    """A polynomial basis: f = sum_i b_i * term_i."""

    name: str
    terms: tuple  # tuple[Term, ...] — the constant term is the empty dict
    variables: tuple[str, ...]

    @property
    def num_coefficients(self) -> int:
        return len(self.terms)

    def design_row(self, values: dict[str, float]) -> np.ndarray:
        """Evaluate each basis term at ``values`` (one regression row)."""
        row = np.empty(len(self.terms))
        for i, term in enumerate(self.terms):
            product = 1.0
            for var, exponent in term.items():
                product *= values[var] ** exponent
            row[i] = product
        return row

    def evaluate(self, coefficients: np.ndarray, values: dict[str, float]) -> float:
        return float(np.dot(coefficients, self.design_row(values)))


C1 = CostFunctionFamily("C1", ({},), ())
C2 = CostFunctionFamily("C2", ({"x": 1}, {}), ("x",))
C3 = CostFunctionFamily("C3", ({"xl": 1}, {}), ("xl",))
C4 = CostFunctionFamily("C4", ({"xl": 2}, {"xl": 1}, {}), ("xl",))
C5 = CostFunctionFamily("C5", ({"xl": 1}, {"xr": 1}, {}), ("xl", "xr"))
C6 = CostFunctionFamily(
    "C6", ({"xl": 1, "xr": 1}, {"xl": 1}, {"xr": 1}, {}), ("xl", "xr")
)

#: Which family models each (operator kind, cost unit) pair, mirroring the
#: engine cost model's structure (units absent from the map are zero).
FAMILY_BY_KIND: dict[OpKind, dict[str, CostFunctionFamily]] = {
    OpKind.SEQ_SCAN: {"cs": C1, "ct": C1, "co": C1},
    OpKind.INDEX_SCAN: {"cr": C2, "ct": C2, "ci": C2, "co": C2},
    OpKind.FILTER: {"ct": C3, "co": C3},
    OpKind.HASH_JOIN: {"ct": C5, "co": C5},
    OpKind.MERGE_JOIN: {"ct": C5, "co": C5},
    OpKind.NESTLOOP_JOIN: {"ct": C6, "co": C6},
    OpKind.SORT: {"ct": C3, "co": C4},
    OpKind.AGGREGATE: {"ct": C3, "co": C3},
    OpKind.MATERIALIZE: {"ct": C3, "co": C3},
    OpKind.LIMIT: {},
}


def family_for(kind: OpKind, unit: str) -> CostFunctionFamily | None:
    """The family modeling ``unit`` for operator ``kind`` (None = zero)."""
    return FAMILY_BY_KIND.get(kind, {}).get(unit)
