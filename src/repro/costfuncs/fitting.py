"""Cost-function fitting (Section 4.2).

For every (operator, cost unit) pair the fitter invokes the engine's
cost model on a grid of candidate selectivities drawn from
``[mu - 3 sigma, mu + 3 sigma]`` (clipped to [0, 1]) and solves the
nonnegative least-squares problem for the family's coefficients. The
result is a polynomial in the plan's selectivity *variables* —
identified by the op_id of the operator whose selectivity they are —
ready for the moment computations of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FittingError
from ..optimizer.cost_model import COST_UNIT_NAMES, CostModel
from ..optimizer.optimizer import PlannedQuery
from ..plan.physical import PlanNode
from ..sampling.estimator import SamplingEstimate
from .families import CostFunctionFamily, family_for
from .nnls import nnls

__all__ = ["FittedCostFunction", "OperatorCostFunctions", "CostFunctionFitter"]

#: Number of subintervals W: the grid has W+1 points per variable.
DEFAULT_GRID_W = 6
#: Minimum half-width of the grid interval, relative to the mean, used when
#: the estimated sigma is (near) zero so the regression stays conditioned.
MIN_RELATIVE_SPREAD = 0.05


@dataclass(frozen=True)
class FittedCostFunction:
    """One fitted polynomial: unit, family, coefficients, var bindings."""

    unit: str
    family: CostFunctionFamily
    coefficients: np.ndarray
    #: family variable name ("x"/"xl"/"xr") -> selectivity variable id
    var_bindings: dict[str, int]
    fit_residual: float = 0.0

    def monomials(self) -> list[tuple[float, dict[int, int]]]:
        """(coefficient, {var_id: exponent}) terms, in family order."""
        result = []
        for coefficient, term in zip(self.coefficients, self.family.terms):
            monomial = {
                self.var_bindings[var]: exponent for var, exponent in term.items()
            }
            result.append((float(coefficient), monomial))
        return result

    def evaluate(self, var_values: dict[int, float]) -> float:
        """f at concrete selectivity values (keyed by variable id)."""
        total = 0.0
        for coefficient, monomial in self.monomials():
            product = coefficient
            for var_id, exponent in monomial.items():
                product *= var_values[var_id] ** exponent
            total += product
        return total


@dataclass
class OperatorCostFunctions:
    """All fitted per-unit cost functions of one operator."""

    op_id: int
    functions: dict[str, FittedCostFunction]

    def units(self) -> list[str]:
        return list(self.functions)


class CostFunctionFitter:
    """Fits C1..C6 coefficients for every operator of a plan."""

    def __init__(
        self,
        planned: PlannedQuery,
        estimate: SamplingEstimate,
        grid_w: int = DEFAULT_GRID_W,
    ):
        self._planned = planned
        self._estimate = estimate
        self._cost_model = CostModel(planned.database)
        self._grid_w = grid_w

    # ------------------------------------------------------------------
    def fit_all(self) -> dict[int, OperatorCostFunctions]:
        result: dict[int, OperatorCostFunctions] = {}
        for node in self._planned.root.walk():
            functions: dict[str, FittedCostFunction] = {}
            for unit in COST_UNIT_NAMES:
                fitted = self._fit_one(node, unit)
                if fitted is not None:
                    functions[unit] = fitted
            result[node.op_id] = OperatorCostFunctions(node.op_id, functions)
        return result

    # ------------------------------------------------------------------
    def _fit_one(self, node: PlanNode, unit: str) -> FittedCostFunction | None:
        family = family_for(node.kind, unit)
        if family is None:
            return None
        bindings = self._bind_variables(node, family)
        grids = {
            var: self._grid_points(bindings[var]) for var in family.variables
        }
        points = self._grid_product(family.variables, grids)

        rows = []
        targets = []
        for values in points:
            rows.append(family.design_row(values))
            targets.append(self._invoke_cost_model(node, unit, values))
        design = np.asarray(rows)
        y = np.asarray(targets)
        if np.allclose(y, 0.0):
            return None
        coefficients, residual = nnls(design, y)
        return FittedCostFunction(
            unit=unit,
            family=family,
            coefficients=coefficients,
            var_bindings=bindings,
            fit_residual=residual,
        )

    def _bind_variables(self, node: PlanNode, family) -> dict[str, int]:
        bindings: dict[str, int] = {}
        for var in family.variables:
            if var == "x":
                bindings[var] = self._estimate.resolve(node.op_id).op_id
            elif var == "xl":
                bindings[var] = self._estimate.resolve(node.children[0].op_id).op_id
            elif var == "xr":
                bindings[var] = self._estimate.resolve(node.children[1].op_id).op_id
            else:
                raise FittingError(f"unknown family variable: {var}")
        return bindings

    def _grid_points(self, var_id: int) -> np.ndarray:
        """W+1 grid points over [mu - 3 sigma, mu + 3 sigma] ∩ [0, 1]."""
        selectivity = self._estimate.per_node[var_id]
        mean = selectivity.mean
        spread = max(3.0 * selectivity.std, MIN_RELATIVE_SPREAD * max(mean, 1e-9))
        low = max(mean - spread, 0.0)
        high = min(mean + spread, 1.0)
        if high <= low:
            high = min(low + 1e-9, 1.0)
        return np.linspace(low, high, self._grid_w + 1)

    @staticmethod
    def _grid_product(variables, grids) -> list[dict[str, float]]:
        if not variables:
            return [{}]
        if len(variables) == 1:
            var = variables[0]
            return [{var: float(v)} for v in grids[var]]
        first, second = variables
        return [
            {first: float(a), second: float(b)}
            for a in grids[first]
            for b in grids[second]
        ]

    def _invoke_cost_model(
        self, node: PlanNode, unit: str, values: dict[str, float]
    ) -> float:
        """Ask the engine for the unit's count at candidate selectivities."""
        n_left = 0.0
        n_right = 0.0
        m_out = self._planned.est_cards[node.op_id]
        if node.children:
            left = node.children[0]
            xl = values.get("xl")
            n_left = (
                self._planned.leaf_row_product(left) * xl
                if xl is not None
                else self._planned.est_cards[left.op_id]
            )
        if len(node.children) > 1:
            right = node.children[1]
            xr = values.get("xr")
            n_right = (
                self._planned.leaf_row_product(right) * xr
                if xr is not None
                else self._planned.est_cards[right.op_id]
            )
        if "x" in values:
            m_out = self._planned.leaf_row_product(node) * values["x"]
        counts = self._cost_model.operator_counts(node, n_left, n_right, m_out)
        return counts.as_dict()[unit]
