"""Nonnegative least squares, written from scratch.

The paper fits cost-function coefficients with Scilab's ``qpsolve``
under ``b >= 0`` constraints; this is the classic Lawson-Hanson
active-set algorithm solving the identical problem
``min ||A b - y||, b >= 0``. Tests cross-check it against
``scipy.optimize.nnls``.
"""

from __future__ import annotations

import numpy as np

from ..errors import FittingError

__all__ = ["nnls"]


def nnls(A: np.ndarray, y: np.ndarray, max_iterations: int | None = None):
    """Solve ``min ||A b - y||_2`` subject to ``b >= 0``.

    Returns ``(b, residual_norm)``.
    """
    A = np.asarray(A, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if A.ndim != 2 or y.ndim != 1 or A.shape[0] != y.shape[0]:
        raise FittingError(f"nnls: bad shapes A{A.shape}, y{y.shape}")
    m, n = A.shape
    if max_iterations is None:
        max_iterations = 3 * n + 30

    x = np.zeros(n)
    passive = np.zeros(n, dtype=bool)  # the active set P of Lawson-Hanson
    residual = y - A @ x
    gradient = A.T @ residual
    tolerance = 1e-12 * max(1.0, float(np.abs(A).max()) * float(np.abs(y).max() + 1.0))

    for _ in range(max_iterations):
        # Select the most promising zero variable to free.
        candidates = np.where(~passive, gradient, -np.inf)
        best = int(np.argmax(candidates))
        if candidates[best] <= tolerance:
            break  # KKT satisfied
        passive[best] = True

        # Inner loop: solve the unconstrained problem on the passive set,
        # stepping back whenever a passive variable would go negative.
        while True:
            columns = np.flatnonzero(passive)
            solution, *_ = np.linalg.lstsq(A[:, columns], y, rcond=None)
            if np.all(solution > tolerance):
                x = np.zeros(n)
                x[columns] = solution
                break
            negative = solution <= tolerance
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(
                    negative,
                    x[columns] / (x[columns] - solution),
                    np.inf,
                )
            alpha = float(np.min(ratios))
            x[columns] = x[columns] + alpha * (solution - x[columns])
            newly_zero = columns[x[columns] <= tolerance]
            passive[newly_zero] = False
            x[newly_zero] = 0.0
            if not passive.any():
                break

        residual = y - A @ x
        gradient = A.T @ residual

    x = np.where(x < 0, 0.0, x)
    return x, float(np.linalg.norm(y - A @ x))
