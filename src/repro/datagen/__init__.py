"""Synthetic data generation: TPC-H (uniform and Zipf-skewed)."""

from .distributions import ZipfSampler, uniform_floats, uniform_ints
from .tpch import DATE_EPOCH_DAYS, TpchConfig, date_to_days, generate_tpch

__all__ = [
    "ZipfSampler",
    "uniform_ints",
    "uniform_floats",
    "TpchConfig",
    "generate_tpch",
    "date_to_days",
    "DATE_EPOCH_DAYS",
]
