"""Random value generators used by the TPC-H generator.

The skewed TPC-H generator the paper uses (Microsoft's TPCD-Skew) draws
attribute values and foreign keys from a Zipf distribution with skew
parameter ``z``; ``z = 0`` degenerates to uniform. We reproduce that
behaviour here with an exact inverse-CDF Zipf sampler.
"""

from __future__ import annotations

import numpy as np

from ..util import ensure_rng

__all__ = ["ZipfSampler", "uniform_ints", "uniform_floats"]


class ZipfSampler:
    """Samples integers from ``{1, ..., n}`` with P(k) ∝ 1 / k^z.

    The cumulative distribution is precomputed once, so drawing ``m``
    values costs one uniform draw plus a binary search each. ``z = 0``
    gives the uniform distribution, matching the TPCD-Skew convention.
    """

    def __init__(self, n: int, z: float):
        if n < 1:
            raise ValueError(f"ZipfSampler needs n >= 1, got {n}")
        if z < 0:
            raise ValueError(f"ZipfSampler needs z >= 0, got {z}")
        self.n = n
        self.z = z
        if z == 0.0:
            self._cdf = None
        else:
            weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), z)
            self._cdf = np.cumsum(weights)
            self._cdf /= self._cdf[-1]

    def sample(self, size: int, rng) -> np.ndarray:
        """Draw ``size`` values in ``[1, n]`` (inclusive, int64)."""
        rng = ensure_rng(rng)
        if self._cdf is None:
            return rng.integers(1, self.n + 1, size=size, dtype=np.int64)
        u = rng.random(size)
        return (np.searchsorted(self._cdf, u, side="right") + 1).astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """The exact probability of each value 1..n (diagnostics/tests)."""
        if self._cdf is None:
            return np.full(self.n, 1.0 / self.n)
        probabilities = np.empty(self.n)
        probabilities[0] = self._cdf[0]
        probabilities[1:] = np.diff(self._cdf)
        return probabilities


def uniform_ints(rng, low: int, high: int, size: int) -> np.ndarray:
    """Uniform integers in ``[low, high]`` inclusive."""
    return ensure_rng(rng).integers(low, high + 1, size=size, dtype=np.int64)


def uniform_floats(rng, low: float, high: float, size: int) -> np.ndarray:
    """Uniform floats in ``[low, high)`` rounded to cents."""
    values = ensure_rng(rng).uniform(low, high, size=size)
    return np.round(values, 2)
