"""Categorical text pools mirroring the TPC-H specification."""

from __future__ import annotations

import numpy as np

from ..util import ensure_rng
from .distributions import ZipfSampler

__all__ = [
    "REGIONS",
    "NATIONS",
    "NATION_REGION",
    "SEGMENTS",
    "PRIORITIES",
    "SHIP_MODES",
    "SHIP_INSTRUCTS",
    "RETURN_FLAGS",
    "LINE_STATUSES",
    "ORDER_STATUSES",
    "BRANDS",
    "TYPES",
    "CONTAINERS",
    "PART_NAME_WORDS",
    "pick",
]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]

#: nation key -> region key, per the TPC-H spec.
NATION_REGION = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2,
                 4, 4, 2, 4, 0, 0, 0, 1, 2, 3,
                 4, 2, 3, 3, 1]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
ORDER_STATUSES = ["O", "F", "P"]

BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]

_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
TYPES = [f"{a} {b} {c}" for a in _TYPE_SYLL1 for b in _TYPE_SYLL2 for c in _TYPE_SYLL3]

_CONTAINER_SYLL1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_SYLL2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
CONTAINERS = [f"{a} {b}" for a in _CONTAINER_SYLL1 for b in _CONTAINER_SYLL2]

PART_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
]


def pick(pool: list[str], size: int, rng, z: float = 0.0) -> np.ndarray:
    """Draw ``size`` strings from ``pool`` (Zipf-skewed when z > 0)."""
    rng = ensure_rng(rng)
    ranks = ZipfSampler(len(pool), z).sample(size, rng) - 1
    # Shuffle rank->value assignment deterministically so the most frequent
    # value is not always the lexicographically first one.
    order = np.arange(len(pool))
    ensure_rng(12345).shuffle(order)
    pool_array = np.asarray(pool, dtype="U32")
    return pool_array[order[ranks]]
