"""A from-scratch TPC-H database generator with a Zipf skew knob.

Row counts follow the TPC-H specification scaled by ``scale_factor``:
supplier 10k·SF, customer 150k·SF, part 200k·SF, partsupp 4 per part,
orders 10 per customer, lineitem 1-7 per order (≈4 on average). With
``skew_z > 0`` foreign keys and several attributes are drawn from a
Zipf(z) distribution, reproducing the Microsoft TPCD-Skew generator the
paper uses (z = 1 in their experiments).

Dates are integer day numbers with day 0 = 1992-01-01; the order-date
domain spans 1992-01-01 .. 1998-08-02 as in the spec.
"""

from __future__ import annotations

import numpy as np

from ..storage import Column, ColumnType, Database, Schema, Table
from ..util import ensure_rng
from . import text
from .distributions import ZipfSampler, uniform_floats, uniform_ints

__all__ = ["TpchConfig", "generate_tpch", "DATE_EPOCH_DAYS", "date_to_days"]

#: Day number of 1992-01-01 (our epoch).
DATE_EPOCH_DAYS = 0
#: Total days in the TPC-H order date domain (1992-01-01 .. 1998-08-02).
ORDERDATE_SPAN_DAYS = 2405
#: Days from 1992-01-01 to a given (year, month, day) — 1992..1998 only.
_DAYS_BEFORE_YEAR = {
    1992: 0, 1993: 366, 1994: 731, 1995: 1096,
    1996: 1461, 1997: 1827, 1998: 2192,
}
_DAYS_IN_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]


def date_to_days(year: int, month: int, day: int) -> int:
    """Convert a calendar date in 1992..1998 to our integer day number."""
    if year not in _DAYS_BEFORE_YEAR:
        raise ValueError(f"year out of TPC-H domain: {year}")
    days = _DAYS_BEFORE_YEAR[year]
    leap = year in (1992, 1996)
    for m in range(month - 1):
        days += _DAYS_IN_MONTH[m]
        if m == 1 and leap:
            days += 1
    return days + (day - 1)


class TpchConfig:
    """Generation parameters: scale factor, skew, and RNG seed."""

    def __init__(self, scale_factor: float = 0.01, skew_z: float = 0.0, seed: int = 0):
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.skew_z = skew_z
        self.seed = seed

    @property
    def num_suppliers(self) -> int:
        return max(10, int(10_000 * self.scale_factor))

    @property
    def num_customers(self) -> int:
        return max(30, int(150_000 * self.scale_factor))

    @property
    def num_parts(self) -> int:
        return max(40, int(200_000 * self.scale_factor))

    @property
    def num_orders(self) -> int:
        return self.num_customers * 10

    def describe(self) -> str:
        skew = "uniform" if self.skew_z == 0 else f"zipf(z={self.skew_z})"
        return f"tpch sf={self.scale_factor} {skew}"


def _schema(*columns: tuple[str, ColumnType]) -> Schema:
    return Schema([Column(name, ctype) for name, ctype in columns])


REGION_SCHEMA = _schema(("r_regionkey", ColumnType.INT), ("r_name", ColumnType.STR))
NATION_SCHEMA = _schema(
    ("n_nationkey", ColumnType.INT),
    ("n_name", ColumnType.STR),
    ("n_regionkey", ColumnType.INT),
)
SUPPLIER_SCHEMA = _schema(
    ("s_suppkey", ColumnType.INT),
    ("s_name", ColumnType.STR),
    ("s_nationkey", ColumnType.INT),
    ("s_acctbal", ColumnType.FLOAT),
)
CUSTOMER_SCHEMA = _schema(
    ("c_custkey", ColumnType.INT),
    ("c_name", ColumnType.STR),
    ("c_nationkey", ColumnType.INT),
    ("c_acctbal", ColumnType.FLOAT),
    ("c_mktsegment", ColumnType.STR),
)
PART_SCHEMA = _schema(
    ("p_partkey", ColumnType.INT),
    ("p_name", ColumnType.STR),
    ("p_brand", ColumnType.STR),
    ("p_type", ColumnType.STR),
    ("p_size", ColumnType.INT),
    ("p_container", ColumnType.STR),
    ("p_retailprice", ColumnType.FLOAT),
)
PARTSUPP_SCHEMA = _schema(
    ("ps_partkey", ColumnType.INT),
    ("ps_suppkey", ColumnType.INT),
    ("ps_availqty", ColumnType.INT),
    ("ps_supplycost", ColumnType.FLOAT),
)
ORDERS_SCHEMA = _schema(
    ("o_orderkey", ColumnType.INT),
    ("o_custkey", ColumnType.INT),
    ("o_orderstatus", ColumnType.STR),
    ("o_totalprice", ColumnType.FLOAT),
    ("o_orderdate", ColumnType.DATE),
    ("o_orderpriority", ColumnType.STR),
    ("o_shippriority", ColumnType.INT),
)
LINEITEM_SCHEMA = _schema(
    ("l_orderkey", ColumnType.INT),
    ("l_partkey", ColumnType.INT),
    ("l_suppkey", ColumnType.INT),
    ("l_linenumber", ColumnType.INT),
    ("l_quantity", ColumnType.FLOAT),
    ("l_extendedprice", ColumnType.FLOAT),
    ("l_discount", ColumnType.FLOAT),
    ("l_tax", ColumnType.FLOAT),
    ("l_returnflag", ColumnType.STR),
    ("l_linestatus", ColumnType.STR),
    ("l_shipdate", ColumnType.DATE),
    ("l_commitdate", ColumnType.DATE),
    ("l_receiptdate", ColumnType.DATE),
    ("l_shipinstruct", ColumnType.STR),
    ("l_shipmode", ColumnType.STR),
)

#: (table, column) pairs indexed by default — primary keys and the join /
#: selection columns TPC-H plans routinely index-scan.
DEFAULT_INDEXES = {
    "region": ("r_regionkey",),
    "nation": ("n_nationkey",),
    "supplier": ("s_suppkey",),
    "customer": ("c_custkey",),
    "part": ("p_partkey",),
    "partsupp": ("ps_partkey",),
    "orders": ("o_orderkey", "o_custkey", "o_orderdate"),
    "lineitem": ("l_orderkey", "l_partkey", "l_shipdate"),
}


def generate_tpch(config: TpchConfig) -> Database:
    """Generate a complete TPC-H database per ``config``."""
    rng = ensure_rng(config.seed)
    z = config.skew_z
    db = Database(name=config.describe())

    db.add_table(_gen_region(), DEFAULT_INDEXES["region"])
    db.add_table(_gen_nation(), DEFAULT_INDEXES["nation"])
    db.add_table(_gen_supplier(config, rng, z), DEFAULT_INDEXES["supplier"])
    db.add_table(_gen_customer(config, rng, z), DEFAULT_INDEXES["customer"])
    db.add_table(_gen_part(config, rng, z), DEFAULT_INDEXES["part"])
    db.add_table(_gen_partsupp(config, rng, z), DEFAULT_INDEXES["partsupp"])
    orders = _gen_orders(config, rng, z)
    db.add_table(orders, DEFAULT_INDEXES["orders"])
    db.add_table(_gen_lineitem(config, rng, z, orders), DEFAULT_INDEXES["lineitem"])
    return db


def _gen_region() -> Table:
    keys = np.arange(len(text.REGIONS), dtype=np.int64)
    names = np.asarray(text.REGIONS, dtype="U32")
    return Table("region", REGION_SCHEMA, {"r_regionkey": keys, "r_name": names})


def _gen_nation() -> Table:
    keys = np.arange(len(text.NATIONS), dtype=np.int64)
    return Table(
        "nation",
        NATION_SCHEMA,
        {
            "n_nationkey": keys,
            "n_name": np.asarray(text.NATIONS, dtype="U32"),
            "n_regionkey": np.asarray(text.NATION_REGION, dtype=np.int64),
        },
    )


def _fk(rng, n_keys: int, size: int, z: float) -> np.ndarray:
    """Foreign keys into a domain of ``n_keys`` keys, skewed when z > 0."""
    return ZipfSampler(n_keys, z).sample(size, rng) - 1


def _gen_supplier(config: TpchConfig, rng, z: float) -> Table:
    n = config.num_suppliers
    keys = np.arange(n, dtype=np.int64)
    return Table(
        "supplier",
        SUPPLIER_SCHEMA,
        {
            "s_suppkey": keys,
            "s_name": np.asarray([f"Supplier#{k:09d}" for k in keys], dtype="U32"),
            "s_nationkey": _fk(rng, len(text.NATIONS), n, z),
            "s_acctbal": uniform_floats(rng, -999.99, 9999.99, n),
        },
    )


def _gen_customer(config: TpchConfig, rng, z: float) -> Table:
    n = config.num_customers
    keys = np.arange(n, dtype=np.int64)
    return Table(
        "customer",
        CUSTOMER_SCHEMA,
        {
            "c_custkey": keys,
            "c_name": np.asarray([f"Customer#{k:09d}" for k in keys], dtype="U32"),
            "c_nationkey": _fk(rng, len(text.NATIONS), n, z),
            "c_acctbal": uniform_floats(rng, -999.99, 9999.99, n),
            "c_mktsegment": text.pick(text.SEGMENTS, n, rng, z),
        },
    )


def _gen_part(config: TpchConfig, rng, z: float) -> Table:
    n = config.num_parts
    keys = np.arange(n, dtype=np.int64)
    word1 = text.pick(text.PART_NAME_WORDS, n, rng, 0.0)
    word2 = text.pick(text.PART_NAME_WORDS, n, rng, 0.0)
    names = np.char.add(np.char.add(word1, " "), word2)
    sizes = ZipfSampler(50, z).sample(n, rng)
    return Table(
        "part",
        PART_SCHEMA,
        {
            "p_partkey": keys,
            "p_name": names.astype("U32"),
            "p_brand": text.pick(text.BRANDS, n, rng, z),
            "p_type": text.pick(text.TYPES, n, rng, z),
            "p_size": sizes,
            "p_container": text.pick(text.CONTAINERS, n, rng, z),
            "p_retailprice": np.round(900.0 + (keys % 1000) / 10.0 + 100.0, 2),
        },
    )


def _gen_partsupp(config: TpchConfig, rng, z: float) -> Table:
    suppliers_per_part = 4
    n = config.num_parts * suppliers_per_part
    partkeys = np.repeat(np.arange(config.num_parts, dtype=np.int64), suppliers_per_part)
    offsets = np.tile(np.arange(suppliers_per_part, dtype=np.int64), config.num_parts)
    suppkeys = (partkeys + offsets * (config.num_suppliers // suppliers_per_part + 1)) % (
        config.num_suppliers
    )
    return Table(
        "partsupp",
        PARTSUPP_SCHEMA,
        {
            "ps_partkey": partkeys,
            "ps_suppkey": suppkeys,
            "ps_availqty": uniform_ints(rng, 1, 9999, n),
            "ps_supplycost": uniform_floats(rng, 1.0, 1000.0, n),
        },
    )


def _gen_orders(config: TpchConfig, rng, z: float) -> Table:
    n = config.num_orders
    keys = np.arange(n, dtype=np.int64)
    orderdates = _order_dates(rng, n, z)
    return Table(
        "orders",
        ORDERS_SCHEMA,
        {
            "o_orderkey": keys,
            "o_custkey": _fk(rng, config.num_customers, n, z),
            "o_orderstatus": text.pick(text.ORDER_STATUSES, n, rng, z),
            "o_totalprice": uniform_floats(rng, 1000.0, 450000.0, n),
            "o_orderdate": orderdates,
            "o_orderpriority": text.pick(text.PRIORITIES, n, rng, z),
            "o_shippriority": np.zeros(n, dtype=np.int64),
        },
    )


def _order_dates(rng, n: int, z: float) -> np.ndarray:
    """Order dates over the 1992..1998 domain (Zipf over days when skewed)."""
    if z == 0.0:
        return uniform_ints(rng, 0, ORDERDATE_SPAN_DAYS - 151, n)
    # Skewed dates cluster toward the start of the domain, the TPCD-Skew way.
    days = ZipfSampler(ORDERDATE_SPAN_DAYS - 151, z).sample(n, rng) - 1
    return days.astype(np.int64)


def _gen_lineitem(config: TpchConfig, rng, z: float, orders: Table) -> Table:
    lines_per_order = ZipfSampler(7, z * 0.5).sample(orders.num_rows, rng)
    n = int(lines_per_order.sum())
    orderkeys = np.repeat(orders.column("o_orderkey"), lines_per_order)
    orderdates = np.repeat(orders.column("o_orderdate"), lines_per_order)
    linenumbers = np.concatenate(
        [np.arange(1, k + 1, dtype=np.int64) for k in lines_per_order]
    )
    shipdelay = uniform_ints(rng, 1, 121, n)
    shipdates = orderdates + shipdelay
    quantity = ZipfSampler(50, z).sample(n, rng).astype(np.float64)
    extendedprice = np.round(quantity * uniform_floats(rng, 900.0, 2000.0, n), 2)
    return Table(
        "lineitem",
        LINEITEM_SCHEMA,
        {
            "l_orderkey": orderkeys,
            "l_partkey": _fk(rng, config.num_parts, n, z),
            "l_suppkey": _fk(rng, config.num_suppliers, n, z),
            "l_linenumber": linenumbers,
            "l_quantity": quantity,
            "l_extendedprice": extendedprice,
            "l_discount": np.round(uniform_ints(rng, 0, 10, n) / 100.0, 2),
            "l_tax": np.round(uniform_ints(rng, 0, 8, n) / 100.0, 2),
            "l_returnflag": text.pick(text.RETURN_FLAGS, n, rng, z),
            "l_linestatus": text.pick(text.LINE_STATUSES, n, rng, z),
            "l_shipdate": shipdates,
            "l_commitdate": shipdates + uniform_ints(rng, -30, 30, n),
            "l_receiptdate": shipdates + uniform_ints(rng, 1, 30, n),
            "l_shipinstruct": text.pick(text.SHIP_INSTRUCTS, n, rng, z),
            "l_shipmode": text.pick(text.SHIP_MODES, n, rng, z),
        },
    )
