"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subsystems raise the most specific subclass available.

Every class also carries a stable machine-readable **error code** (see
:data:`ERROR_CODES` / :func:`error_code`): the wire schema and the HTTP
front-end put that code in structured error bodies, so remote clients can
branch on ``"sql-parse"`` instead of string-matching Python class names.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table / column definition or lookup is invalid."""


class CatalogError(ReproError):
    """A catalog lookup failed (unknown table, missing statistics)."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlLexError(SqlError):
    """The SQL text contains an unrecognized token."""


class SqlParseError(SqlError):
    """The SQL token stream does not match the supported grammar."""


class PlanError(ReproError):
    """A logical or physical plan is malformed or unsupported."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a query."""


class ExecutionError(ReproError):
    """The executor failed while evaluating a plan."""


class SamplingError(ReproError):
    """The sampling subsystem was misused or hit an invalid state."""


class CalibrationError(ReproError):
    """Cost-unit calibration failed or produced unusable values."""


class FittingError(ReproError):
    """Cost-function fitting failed (bad family, singular system)."""


class PredictionError(ReproError):
    """The uncertainty-aware predictor hit an invalid state."""


class SessionError(ReproError):
    """A session facade was misconfigured or used after close()."""


class ServingError(ReproError):
    """The multi-worker serving tier was misconfigured or a worker died."""


class FeedbackError(ReproError):
    """The online-feedback subsystem was misconfigured or fed bad data."""


class SchedulerError(ReproError):
    """The uncertainty-aware scheduling tier was misconfigured or misused."""


class WireError(ReproError):
    """A wire-schema payload is malformed or has an unsupported version.

    ``code`` refines the generic class-level error code: a schema-version
    mismatch reports ``"schema-version"`` while other payload problems
    keep the default ``"bad-request"``.
    """

    def __init__(self, message: str, code: str = "bad-request"):
        super().__init__(message)
        self.code = code


#: Stable wire codes per error class, most specific first. These are part
#: of the public HTTP contract (docs/api.md) — do not rename casually.
ERROR_CODES = {
    SqlLexError: "sql-lex",
    SqlParseError: "sql-parse",
    SqlError: "sql",
    SchemaError: "schema",
    CatalogError: "catalog",
    PlanError: "plan",
    OptimizerError: "optimizer",
    ExecutionError: "execution",
    SamplingError: "sampling",
    CalibrationError: "calibration",
    FittingError: "fitting",
    PredictionError: "prediction",
    SessionError: "session",
    ServingError: "serving",
    FeedbackError: "feedback",
    SchedulerError: "scheduler",
    WireError: "bad-request",
    ReproError: "error",
}


def error_code(error: BaseException) -> str:
    """The stable wire code for ``error``.

    An explicit ``code`` attribute on the instance wins; otherwise the
    most specific :data:`ERROR_CODES` entry along the class's MRO;
    anything outside the :class:`ReproError` hierarchy is ``"internal"``.
    """
    code = getattr(error, "code", None)
    if isinstance(code, str) and code:
        return code
    for cls in type(error).__mro__:
        if cls in ERROR_CODES:
            return ERROR_CODES[cls]
    return "internal"
