"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subsystems raise the most specific subclass available.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table / column definition or lookup is invalid."""


class CatalogError(ReproError):
    """A catalog lookup failed (unknown table, missing statistics)."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlLexError(SqlError):
    """The SQL text contains an unrecognized token."""


class SqlParseError(SqlError):
    """The SQL token stream does not match the supported grammar."""


class PlanError(ReproError):
    """A logical or physical plan is malformed or unsupported."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a query."""


class ExecutionError(ReproError):
    """The executor failed while evaluating a plan."""


class SamplingError(ReproError):
    """The sampling subsystem was misused or hit an invalid state."""


class CalibrationError(ReproError):
    """Cost-unit calibration failed or produced unusable values."""


class FittingError(ReproError):
    """Cost-function fitting failed (bad family, singular system)."""


class PredictionError(ReproError):
    """The uncertainty-aware predictor hit an invalid state."""
