"""Vectorized plan execution."""

from .executor import ExecutionResult, Executor, Intermediate
from .kernels import (
    cross_join_pairs,
    encode_keys,
    equijoin_pairs,
    grouped_aggregate,
    sort_order,
)

__all__ = [
    "Executor",
    "ExecutionResult",
    "Intermediate",
    "encode_keys",
    "equijoin_pairs",
    "cross_join_pairs",
    "sort_order",
    "grouped_aggregate",
]
