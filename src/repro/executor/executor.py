"""Plan execution over full tables.

The executor evaluates a physical plan bottom-up with vectorized
kernels, recording the *true* output cardinality of every operator and
the true heap-fetch counts of index scans. Those feed the cost model to
produce the true resource counts that the hardware simulator converts
into ground-truth running times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExecutionError
from ..optimizer.cost_model import CostModel, ResourceCounts
from ..optimizer.optimizer import PlannedQuery
from ..plan.physical import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    OpKind,
    PlanNode,
    SeqScanNode,
    SortNode,
)
from ..plan.predicates import ColumnPairScanPredicate
from ..storage import Database
from ..util import group_ids
from . import kernels

__all__ = ["Intermediate", "ExecutionResult", "Executor"]


@dataclass
class Intermediate:
    """An intermediate result: qualified column name -> array."""

    columns: dict[str, np.ndarray]
    num_rows: int

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"column not in scope: {name!r}") from None

    def take(self, indices: np.ndarray) -> "Intermediate":
        return Intermediate(
            columns={name: arr[indices] for name, arr in self.columns.items()},
            num_rows=len(indices),
        )

    def mask(self, mask: np.ndarray) -> "Intermediate":
        return Intermediate(
            columns={name: arr[mask] for name, arr in self.columns.items()},
            num_rows=int(mask.sum()),
        )


@dataclass
class ExecutionResult:
    """Output columns plus per-operator ground truth."""

    output: Intermediate
    cardinalities: dict[int, float] = field(default_factory=dict)
    fetched: dict[int, float] = field(default_factory=dict)
    counts: dict[int, ResourceCounts] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.output.num_rows

    def total_counts(self) -> ResourceCounts:
        total = ResourceCounts()
        for counts in self.counts.values():
            total = total + counts
        return total


def _scan_predicate_mask(data: Intermediate, alias: str, predicate) -> np.ndarray:
    """Boolean mask for single-column or same-table column-pair predicates."""
    if isinstance(predicate, ColumnPairScanPredicate):
        return predicate.mask(
            data.column(f"{alias}.{predicate.left_column}"),
            data.column(f"{alias}.{predicate.right_column}"),
        )
    return predicate.mask(data.column(f"{alias}.{predicate.column}"))


class Executor:
    """Evaluates physical plans against a database."""

    def __init__(self, database: Database):
        self._db = database
        self._cost_model = CostModel(database)

    def execute(self, planned: PlannedQuery) -> ExecutionResult:
        """Run the plan; return output plus true cardinalities and counts."""
        cardinalities: dict[int, float] = {}
        fetched: dict[int, float] = {}
        result = self._run(planned.root, cardinalities, fetched)
        output = self._project(planned, result)
        counts = self._cost_model.plan_counts(planned.root, cardinalities, fetched)
        return ExecutionResult(
            output=output,
            cardinalities=cardinalities,
            fetched=fetched,
            counts=counts,
        )

    # ------------------------------------------------------------------
    def _run(
        self,
        node: PlanNode,
        cardinalities: dict[int, float],
        fetched: dict[int, float],
    ) -> Intermediate:
        kind = node.kind
        if kind is OpKind.SEQ_SCAN:
            result = self._seq_scan(node)
        elif kind is OpKind.INDEX_SCAN:
            result = self._index_scan(node, fetched)
        else:
            inputs = [self._run(child, cardinalities, fetched) for child in node.children]
            if kind is OpKind.FILTER:
                result = self._filter(node, inputs[0])
            elif node.is_join:
                result = self._join(node, inputs[0], inputs[1])
            elif kind is OpKind.SORT:
                result = self._sort(node, inputs[0])
            elif kind is OpKind.AGGREGATE:
                result = self._aggregate(node, inputs[0])
            elif kind is OpKind.LIMIT:
                result = inputs[0].take(np.arange(min(node.count, inputs[0].num_rows)))
            elif kind is OpKind.MATERIALIZE:
                result = inputs[0]
            else:
                raise ExecutionError(f"executor: unknown operator {kind}")
        cardinalities[node.op_id] = float(result.num_rows)
        return result

    # -- scans ------------------------------------------------------------
    def _seq_scan(self, node: SeqScanNode) -> Intermediate:
        table = self._db.table(node.table)
        columns = {
            f"{node.alias}.{name}": table.column(name)
            for name in table.schema.names
        }
        result = Intermediate(columns=columns, num_rows=table.num_rows)
        for predicate in node.predicates:
            result = result.mask(_scan_predicate_mask(result, node.alias, predicate))
        return result

    def _index_scan(self, node: IndexScanNode, fetched: dict[int, float]) -> Intermediate:
        table = self._db.table(node.table)
        index = self._db.index_for(node.table, node.index_column)
        if index is None:
            raise ExecutionError(
                f"no index on {node.table}.{node.index_column} for index scan"
            )
        low, high = node.index_predicate.range_bounds()
        positions = index.lookup_range(low, high)
        fetched[node.op_id] = float(len(positions))
        columns = {
            f"{node.alias}.{name}": table.column(name)[positions]
            for name in table.schema.names
        }
        result = Intermediate(columns=columns, num_rows=len(positions))
        for predicate in node.predicates:
            result = result.mask(_scan_predicate_mask(result, node.alias, predicate))
        return result

    # -- filters ---------------------------------------------------------
    @staticmethod
    def _filter_masks(node: FilterNode, data: Intermediate) -> np.ndarray:
        mask = np.ones(data.num_rows, dtype=bool)
        for predicate in node.scan_predicates:
            mask &= _scan_predicate_mask(data, predicate.alias, predicate)
        for predicate in node.compare_predicates:
            left = data.column(f"{predicate.left_alias}.{predicate.left_column}")
            right = data.column(f"{predicate.right_alias}.{predicate.right_column}")
            mask &= predicate.mask(left, right)
        return mask

    def _filter(self, node: FilterNode, data: Intermediate) -> Intermediate:
        return data.mask(self._filter_masks(node, data))

    # -- joins ----------------------------------------------------------
    def _join(self, node, left: Intermediate, right: Intermediate) -> Intermediate:
        if node.keys:
            left_cols = [left.column(lk) for lk, _ in node.keys]
            right_cols = [right.column(rk) for _, rk in node.keys]
            li, ri = kernels.equijoin_pairs(left_cols, right_cols)
        else:
            li, ri = kernels.cross_join_pairs(left.num_rows, right.num_rows)
        columns = {name: arr[li] for name, arr in left.columns.items()}
        for name, arr in right.columns.items():
            columns[name] = arr[ri]
        return Intermediate(columns=columns, num_rows=len(li))

    # -- sort / aggregate --------------------------------------------------
    @staticmethod
    def _sort(node: SortNode, data: Intermediate) -> Intermediate:
        available = [(k, d) for k, d in node.keys if k in data.columns]
        if not available:
            return data
        order = kernels.sort_order(
            [data.column(k) for k, _ in available],
            [d for _, d in available],
        )
        return data.take(order)

    @staticmethod
    def _aggregate(node: AggregateNode, data: Intermediate) -> Intermediate:
        if node.group_keys:
            key_arrays = [data.column(k) for k in node.group_keys]
            ids, representatives = group_ids(*key_arrays)
            num_groups = len(representatives)
            columns = {
                key: array[representatives]
                for key, array in zip(node.group_keys, key_arrays)
            }
        else:
            ids = np.zeros(data.num_rows, dtype=np.int64)
            num_groups = 1
            columns = {}
        for spec in node.aggregates:
            values = None
            if spec.argument is not None:
                values = spec.argument.evaluate(data.columns, data.num_rows)
            columns[spec.output_name] = kernels.grouped_aggregate(
                ids, num_groups, spec.func, values, spec.distinct
            )
        return Intermediate(columns=columns, num_rows=num_groups)

    # -- final projection ---------------------------------------------------
    @staticmethod
    def _project(planned: PlannedQuery, data: Intermediate) -> Intermediate:
        bound = planned.bound
        if bound.select_star or (not bound.projections and not bound.aggregates):
            return data
        if bound.aggregates:
            # Aggregate output is already shaped; rename projected group keys.
            columns = dict(data.columns)
            for name, expression in bound.projections:
                referenced = expression.columns
                if len(referenced) == 1 and referenced[0] in columns:
                    columns[name] = columns[referenced[0]]
            return Intermediate(columns=columns, num_rows=data.num_rows)
        columns = {
            name: expression.evaluate(data.columns, data.num_rows)
            for name, expression in bound.projections
        }
        return Intermediate(columns=columns, num_rows=data.num_rows)
