"""Vectorized execution kernels shared by the executor and the sampler."""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from ..util import group_ids, join_indices

__all__ = [
    "encode_keys",
    "equijoin_pairs",
    "cross_join_pairs",
    "sort_order",
    "grouped_aggregate",
]

#: Refuse to materialize cross products larger than this many rows.
MAX_CROSS_ROWS = 50_000_000


def encode_keys(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column keys of both join sides into shared int codes.

    Values that are equal across sides receive equal codes, so a single
    integer equijoin afterwards is equivalent to the multi-key join.
    """
    if len(left_columns) != len(right_columns):
        raise ExecutionError("mismatched join key arity")
    n_left = len(left_columns[0]) if left_columns else 0
    if len(left_columns) == 1:
        # Single-column fast path: factorize the concatenated column.
        combined = np.concatenate([left_columns[0], right_columns[0]])
        ids, _ = group_ids(combined)
        return ids[:n_left], ids[n_left:]
    combined_columns = [
        np.concatenate([lcol, rcol])
        for lcol, rcol in zip(left_columns, right_columns)
    ]
    ids, _ = group_ids(*combined_columns)
    return ids[:n_left], ids[n_left:]


def equijoin_pairs(
    left_columns: list[np.ndarray], right_columns: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Matching row-index pairs ``(li, ri)`` of a multi-key equijoin."""
    left_codes, right_codes = encode_keys(left_columns, right_columns)
    return join_indices(left_codes, right_codes)


def cross_join_pairs(n_left: int, n_right: int) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs of a full cross product."""
    total = n_left * n_right
    if total > MAX_CROSS_ROWS:
        raise ExecutionError(
            f"cross product of {n_left} x {n_right} rows exceeds the limit"
        )
    li = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
    ri = np.tile(np.arange(n_right, dtype=np.int64), n_left)
    return li, ri


def sort_order(columns: list[np.ndarray], descending: list[bool]) -> np.ndarray:
    """Stable multi-key sort order with per-key direction."""
    if not columns:
        raise ExecutionError("sort requires at least one key")
    keys = []
    for column, desc in zip(columns, descending):
        if desc:
            if column.dtype.kind in ("U", "S", "O"):
                codes, _ = group_ids(column)
                keys.append(-codes)
            else:
                keys.append(-column)
        else:
            keys.append(column)
    # np.lexsort sorts by the last key first.
    return np.lexsort(tuple(reversed(keys)))


def grouped_aggregate(
    ids: np.ndarray,
    num_groups: int,
    func: str,
    values: np.ndarray | None,
    distinct: bool = False,
) -> np.ndarray:
    """Aggregate ``values`` per group id.

    ``func`` is one of COUNT/SUM/AVG/MIN/MAX; ``values`` is None only for
    COUNT(*). Every group id in ``[0, num_groups)`` is assumed populated
    (ids come from factorizing the present rows).
    """
    if func == "COUNT" and values is None:
        return np.bincount(ids, minlength=num_groups).astype(np.float64)
    if values is None:
        raise ExecutionError(f"{func} requires an argument")
    if distinct:
        if func != "COUNT":
            raise ExecutionError(f"DISTINCT is only supported for COUNT, not {func}")
        # One representative row per distinct (group, value) pair; counting
        # representatives per group counts distinct values per group.
        _, representatives = group_ids(ids, values)
        return np.bincount(ids[representatives], minlength=num_groups).astype(
            np.float64
        )

    if func == "COUNT":
        return np.bincount(ids, minlength=num_groups).astype(np.float64)
    if func == "SUM":
        return np.bincount(ids, weights=values.astype(np.float64), minlength=num_groups)
    if func == "AVG":
        sums = np.bincount(ids, weights=values.astype(np.float64), minlength=num_groups)
        counts = np.bincount(ids, minlength=num_groups)
        return np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
    if func in ("MIN", "MAX"):
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        sorted_values = values[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
        )
        reducer = np.minimum if func == "MIN" else np.maximum
        reduced = reducer.reduceat(sorted_values, boundaries)
        out = np.zeros(num_groups, dtype=sorted_values.dtype)
        out[sorted_ids[boundaries]] = reduced
        return out
    raise ExecutionError(f"unknown aggregate function: {func}")
