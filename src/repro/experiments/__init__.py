"""Evaluation harness: the grid, metrics, and per-artifact reporters."""

from .metrics import (
    PAPER_ALPHAS,
    correlation_metrics,
    distribution_distance,
    empirical_probability,
    pr_curves,
    predicted_probability,
)
from .runner import CellResult, ExecutedQuery, ExperimentLab, SelectivityRecord
from .settings import (
    BENCHMARKS,
    DATABASE_CONFIGS,
    DEFAULT_QUERY_COUNTS,
    MACHINES,
    SAMPLING_RATIOS,
)

__all__ = [
    "ExperimentLab",
    "CellResult",
    "ExecutedQuery",
    "SelectivityRecord",
    "correlation_metrics",
    "distribution_distance",
    "empirical_probability",
    "predicted_probability",
    "pr_curves",
    "PAPER_ALPHAS",
    "BENCHMARKS",
    "DATABASE_CONFIGS",
    "MACHINES",
    "SAMPLING_RATIOS",
    "DEFAULT_QUERY_COUNTS",
]
