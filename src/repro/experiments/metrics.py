"""Evaluation metrics (Section 6.3).

* ``rs`` / ``rp``: Spearman / Pearson correlation between the predicted
  standard deviations and the actual prediction errors.
* ``Dn``: mean over alpha of |Prn(alpha) - Pr(alpha)| where
  Pr(alpha) = 2 Phi(alpha) - 1 is the predicted likelihood that the
  normalized error E' = |T - mu| / sigma stays below alpha, and
  Prn(alpha) is its empirical counterpart.
"""

from __future__ import annotations

import math

import numpy as np

from ..mathstats.correlation import pearson, spearman

__all__ = [
    "correlation_metrics",
    "predicted_probability",
    "empirical_probability",
    "distribution_distance",
    "pr_curves",
    "PAPER_ALPHAS",
]

#: The alpha values plotted in Figure 5.
PAPER_ALPHAS = (
    0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2, 1.5, 1.8, 2.0, 2.2, 2.5, 2.8, 3.0, 3.5, 4.0,
)


def correlation_metrics(sigmas, errors) -> tuple[float, float]:
    """(rs, rp) between predicted standard deviations and actual errors."""
    return spearman(sigmas, errors), pearson(sigmas, errors)


def predicted_probability(alpha: float) -> float:
    """Pr(E' <= alpha) = 2 Phi(alpha) - 1 for the standard normal."""
    return math.erf(alpha / math.sqrt(2.0))


def normalized_errors(mus, sigmas, actuals) -> np.ndarray:
    """e'_i = |t_i - mu_i| / sigma_i, skipping zero-sigma predictions."""
    mus = np.asarray(mus, dtype=np.float64)
    sigmas = np.asarray(sigmas, dtype=np.float64)
    actuals = np.asarray(actuals, dtype=np.float64)
    valid = sigmas > 0
    return np.abs(actuals[valid] - mus[valid]) / sigmas[valid]


def empirical_probability(normalized, alpha: float) -> float:
    """Prn(alpha) = fraction of queries with e' <= alpha."""
    normalized = np.asarray(normalized)
    if len(normalized) == 0:
        return float("nan")
    return float((normalized <= alpha).mean())


def distribution_distance(
    mus, sigmas, actuals, alpha_low: float = 0.0, alpha_high: float = 6.0,
    num_alphas: int = 120,
) -> float:
    """Dn: the mean of Dn(alpha) over alphas drawn from (0, 6)."""
    normalized = normalized_errors(mus, sigmas, actuals)
    if len(normalized) == 0:
        return float("nan")
    alphas = np.linspace(alpha_low, alpha_high, num_alphas + 2)[1:-1]
    distances = [
        abs(empirical_probability(normalized, a) - predicted_probability(a))
        for a in alphas
    ]
    return float(np.mean(distances))


def pr_curves(mus, sigmas, actuals, alphas=PAPER_ALPHAS):
    """(alphas, Prn(alpha), Pr(alpha)) — the Figure 5 series."""
    normalized = normalized_errors(mus, sigmas, actuals)
    empirical = [empirical_probability(normalized, a) for a in alphas]
    predicted = [predicted_probability(a) for a in alphas]
    return list(alphas), empirical, predicted
