"""Terminal plotting: ASCII scatter plots and line charts.

The paper's figures are gnuplot artifacts; in a text-only environment we
render the same data as fixed-width character plots so the bench output
is visually inspectable (Figure 3/6/12 scatters, Figure 5 curves).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_scatter", "ascii_lines"]


def _scale(values, length):
    values = np.asarray(values, dtype=np.float64)
    low = float(values.min())
    high = float(values.max())
    if not math.isfinite(low) or not math.isfinite(high):
        raise ValueError("plot values must be finite")
    span = high - low
    if span <= 0:
        return np.zeros(len(values), dtype=int), low, high
    positions = ((values - low) / span * (length - 1)).round().astype(int)
    return positions, low, high


def ascii_scatter(
    x,
    y,
    width: int = 56,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Render points as an ASCII scatter plot."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("ascii_scatter: mismatched lengths")
    if len(x) == 0:
        return "(no data)"
    columns, x_low, x_high = _scale(x, width)
    rows, y_low, y_high = _scale(y, height)
    grid = [[" "] * width for _ in range(height)]
    for column, row in zip(columns, rows):
        grid[height - 1 - row][column] = marker
    lines = [f"{y_label}  [{y_low:.3g} .. {y_high:.3g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_low:.3g} .. {x_high:.3g}]")
    return "\n".join(lines)


def ascii_lines(
    x,
    series: dict[str, list],
    width: int = 56,
    height: int = 16,
    x_label: str = "x",
) -> str:
    """Render one or more y-series over shared x values.

    Each series gets the first character of its name as marker;
    collisions show the later series' marker.
    """
    x = np.asarray(x, dtype=np.float64)
    if not series:
        return "(no data)"
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    columns, x_low, x_high = _scale(x, width)
    _, y_low, y_high = _scale(all_y, height)
    span = max(y_high - y_low, 1e-300)
    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        marker = name[0]
        values = np.asarray(values, dtype=np.float64)
        rows = ((values - y_low) / span * (height - 1)).round().astype(int)
        for column, row in zip(columns, rows):
            grid[height - 1 - row][column] = marker
    legend = "  ".join(f"{name[0]} = {name}" for name in series)
    lines = [f"[{y_low:.3g} .. {y_high:.3g}]   {legend}"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_low:.3g} .. {x_high:.3g}]")
    return "\n".join(lines)
