"""Markdown/plain-text rendering of experiment results."""

from __future__ import annotations

__all__ = ["render_table", "format_cell_value", "render_kv"]


def format_cell_value(value) -> str:
    """Render one table cell: floats to 4 decimals, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.4f}"
    return str(value)


def render_table(headers: list[str], rows: list[list]) -> str:
    """A GitHub-flavored markdown table."""
    formatted = [[format_cell_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in formatted)) if formatted else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = [line(headers), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(row) for row in formatted)
    return "\n".join(out)


def render_kv(pairs: dict) -> str:
    """Render a dict as a markdown bullet list."""
    return "\n".join(f"- **{key}**: {format_cell_value(value)}" for key, value in pairs.items())
