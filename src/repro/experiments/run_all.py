"""Full evaluation driver: regenerates every table and figure.

Usage::

    python -m repro.experiments.run_all [--quick] [--output FILE]

Produces a markdown report with one section per paper artifact
(Tables 4-9, Figures 2-6, 8-12). ``--quick`` shrinks query counts and
the database grid for a fast sanity pass.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from ..core import Variant
from ..datagen import generate_tpch
from ..mathstats.correlation import pearson, spearman
from . import metrics
from .reporting import render_table
from .runner import ExperimentLab
from .settings import BENCHMARKS, DATABASE_CONFIGS, MACHINES, SAMPLING_RATIOS

__all__ = ["build_lab", "main", "report_sections"]

#: Sampling ratios for the Figure 8/10 ablation study. The paper sweeps
#: SR = 1e-4..1e-2 on databases ~50x larger; matching the absolute sample
#: sizes puts the interesting regime at 1e-2..2e-1 here.
ABLATION_RATIOS = (0.01, 0.05, 0.2)


def build_lab(quick: bool = False, seed: int = 0) -> ExperimentLab:
    """Generate the database grid and wrap it in an ExperimentLab."""
    labels = list(DATABASE_CONFIGS)
    if quick:
        labels = ["uniform-small", "skewed-small"]
    databases = {
        label: generate_tpch(DATABASE_CONFIGS[label]) for label in labels
    }
    counts = (
        {"MICRO": 20, "SELJOIN": 14, "TPCH": 14}
        if quick
        else {"MICRO": 56, "SELJOIN": 28, "TPCH": 28}
    )
    return ExperimentLab(databases=databases, seed=seed, query_counts=counts)


def section_table4(lab: ExperimentLab, out) -> None:
    """Table 4 / Figure 2: rs (rp) over the whole grid."""
    print("## Table 4 / Figure 2 — rs (rp) correlations", file=out)
    for db_label in lab.databases:
        rows = []
        for sr in SAMPLING_RATIOS:
            row = [sr]
            for benchmark in BENCHMARKS:
                for machine in MACHINES:
                    cell = lab.run_cell(db_label, benchmark, machine, sr)
                    row.append(f"{cell.rs:.4f} ({cell.rp:.4f})")
            rows.append(row)
        headers = ["SR"] + [
            f"{b} {m}" for b in BENCHMARKS for m in MACHINES
        ]
        print(f"\n### {db_label}\n", file=out)
        print(render_table(headers, rows), file=out)
    print("", file=out)


def section_figure3(lab: ExperimentLab, out) -> None:
    """Figure 3: sensitivity of rp (vs rs) to outliers."""
    print("## Figure 3 — robustness of rs vs rp to outliers", file=out)
    db = next(iter(lab.databases))
    cell = lab.run_cell(db, "MICRO", "PC2", 0.01)
    trimmed = cell.without_largest_sigma()
    rows = [
        ["full population", cell.rs, cell.rp],
        ["largest-sigma query removed", trimmed.rs, trimmed.rp],
    ]
    print(render_table(["population", "rs", "rp"], rows), file=out)
    print("", file=out)


def section_table5(lab: ExperimentLab, out) -> None:
    """Table 5 / Figure 4: the distributional distance Dn."""
    print("## Table 5 / Figure 4 — Dn distances", file=out)
    for db_label in lab.databases:
        rows = []
        for sr in SAMPLING_RATIOS:
            row = [sr]
            for benchmark in BENCHMARKS:
                for machine in MACHINES:
                    cell = lab.run_cell(db_label, benchmark, machine, sr)
                    row.append(cell.dn)
            rows.append(row)
        headers = ["SR"] + [f"{b} {m}" for b in BENCHMARKS for m in MACHINES]
        print(f"\n### {db_label}\n", file=out)
        print(render_table(headers, rows), file=out)
    print("", file=out)


def section_figure5(lab: ExperimentLab, out) -> None:
    """Figure 5: Pr(alpha) vs Prn(alpha) curves."""
    print("## Figure 5 — Pr(alpha) vs Prn(alpha) (PC2, SR = 0.05)", file=out)
    db = "uniform-large" if "uniform-large" in lab.databases else next(iter(lab.databases))
    for benchmark in BENCHMARKS:
        cell = lab.run_cell(db, benchmark, "PC2", 0.05)
        alphas, empirical, predicted = metrics.pr_curves(
            cell.mus, cell.sigmas, cell.actuals
        )
        rows = [
            [a, e, p] for a, e, p in zip(alphas, empirical, predicted)
        ]
        print(f"\n### {benchmark} on {db}, Dn = {cell.dn:.4f}\n", file=out)
        print(render_table(["alpha", "Prn(alpha)", "Pr(alpha)"], rows), file=out)
    print("", file=out)


def section_figure6(lab: ExperimentLab, out) -> None:
    """Figure 6: case-study scatter data (sigma_i vs e_i)."""
    print("## Figure 6 — case studies (scatter data)", file=out)
    cases = [
        ("skewed-large", "TPCH", "PC1", 0.05, "case (3): both good"),
        ("uniform-small", "TPCH", "PC1", 0.01, "case (4): both weaker"),
    ]
    for db, benchmark, machine, sr, label in cases:
        if db not in lab.databases:
            continue
        cell = lab.run_cell(db, benchmark, machine, sr)
        print(
            f"\n### {label}: {benchmark} {db} {machine} SR={sr} — "
            f"rs={cell.rs:.4f}, rp={cell.rp:.4f}\n",
            file=out,
        )
        rows = [
            [f"{s:.4g}", f"{e:.4g}"] for s, e in zip(cell.sigmas, cell.errors)
        ]
        print(render_table(["sigma (s)", "|error| (s)"], rows), file=out)
    print("", file=out)


def section_figure8(lab: ExperimentLab, out) -> None:
    """Figures 8/10: the variant ablation at low sampling ratios."""
    print("## Figures 8 / 10 — ablation (rs of All vs simplified variants)", file=out)
    variants = [Variant.ALL, Variant.NO_VAR_C, Variant.NO_VAR_X, Variant.NO_COV]
    for db_label in lab.databases:
        rows = []
        for sr in ABLATION_RATIOS:
            row = [sr]
            for variant in variants:
                cell = lab.run_cell(db_label, "TPCH", "PC1", sr, variant=variant)
                row.append(cell.rs)
            rows.append(row)
        headers = ["SR"] + [v.value for v in variants]
        print(f"\n### {db_label}, TPCH, PC1\n", file=out)
        print(render_table(headers, rows), file=out)
    print("", file=out)


def section_figure9(lab: ExperimentLab, out) -> None:
    """Figures 9/11: relative overhead of sampling."""
    print("## Figures 9 / 11 — relative sampling overhead", file=out)
    for benchmark in BENCHMARKS:
        rows = []
        for sr in SAMPLING_RATIOS:
            row = [sr]
            for db_label in lab.databases:
                row.append(lab.relative_overhead(db_label, benchmark, "PC1", sr))
            rows.append(row)
        headers = ["SR"] + list(lab.databases)
        print(f"\n### {benchmark} (PC1)\n", file=out)
        print(render_table(headers, rows), file=out)
    print("", file=out)


def _selectivity_stats(records):
    est = np.array([r.estimated for r in records])
    act = np.array([r.actual for r in records])
    std = np.array([r.estimated_std for r in records])
    err = np.abs(est - act)
    rel = np.array([r.relative_error for r in records])
    rel = rel[~np.isnan(rel)]
    return est, act, std, err, rel


def section_tables6to9(lab: ExperimentLab, out) -> None:
    """Tables 6-9 + Figure 12: the selectivity-estimate study."""
    print("## Tables 6-9 / Figure 12 — selectivity estimates", file=out)
    ratios = (0.01, 0.05, 0.1, 0.2)
    for db_label in lab.databases:
        rows6, rows7, rows8, rows9 = [], [], [], []
        for sr in ratios:
            row6, row7, row8, row9 = [sr], [sr], [sr], [sr]
            for benchmark in BENCHMARKS:
                records = lab.selectivity_records(db_label, benchmark, sr)
                if not records:
                    for row in (row6, row7, row8, row9):
                        row.append(float("nan"))
                    continue
                est, act, std, err, rel = _selectivity_stats(records)
                row6.append(f"{spearman(std, err):.4f} ({pearson(std, err):.4f})")
                row7.append(f"{spearman(est, act):.4f} ({pearson(est, act):.4f})")
                row8.append(float(np.mean(rel)) if len(rel) else float("nan"))
                large = [
                    r for r in records
                    if r.actual > 0 and r.relative_error > 0.2
                ]
                if len(large) >= 3:
                    lstd = np.array([r.estimated_std for r in large])
                    lerr = np.array([r.error for r in large])
                    row9.append(
                        f"{spearman(lstd, lerr):.4f} ({pearson(lstd, lerr):.4f})"
                    )
                else:
                    row9.append("N/A")
            rows6.append(row6)
            rows7.append(row7)
            rows8.append(row8)
            rows9.append(row9)
        headers = ["SR"] + list(BENCHMARKS)
        print(f"\n### {db_label}\n", file=out)
        print("Table 6 — rs (rp), estimated vs actual selectivity errors\n", file=out)
        print(render_table(headers, rows6), file=out)
        print("\nTable 7 / Figure 12 — rs (rp), estimated vs actual selectivities\n", file=out)
        print(render_table(headers, rows7), file=out)
        print("\nTable 8 — mean relative selectivity errors\n", file=out)
        print(render_table(headers, rows8), file=out)
        print("\nTable 9 — rs (rp) restricted to relative errors > 0.2\n", file=out)
        print(render_table(headers, rows9), file=out)
    print("", file=out)


def report_sections(lab: ExperimentLab, out) -> None:
    """Write every per-artifact section of the report to ``out``."""
    start = time.time()
    section_table4(lab, out)
    section_figure3(lab, out)
    section_table5(lab, out)
    section_figure5(lab, out)
    section_figure6(lab, out)
    section_figure8(lab, out)
    section_figure9(lab, out)
    section_tables6to9(lab, out)
    print(f"_Report generated in {time.time() - start:.1f}s._", file=out)


def main(argv=None) -> int:
    """CLI entry point: build the lab and emit the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced grid")
    parser.add_argument("--output", default=None, help="write report to file")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    lab = build_lab(quick=args.quick, seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            report_sections(lab, handle)
    else:
        report_sections(lab, sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
