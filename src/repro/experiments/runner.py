"""The experiment laboratory: runs evaluation cells with heavy caching.

One "cell" of the paper's grid is (database, benchmark, machine,
sampling ratio). The expensive artifacts are shared across cells:

* query planning + full execution: independent of machine and SR;
* sample databases: per (database, SR);
* sampling + cost-function fitting: per (query, SR), machine-free;
* calibration: per machine;
* actual running times: per (query, machine).

This mirrors how the paper's numbers interrelate and makes the full
grid tractable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..calibration import CalibratedUnits, Calibrator
from ..core import PreparedPrediction, UncertaintyPredictor, Variant
from ..executor import Executor
from ..hardware import PROFILES, HardwareSimulator
from ..optimizer import Optimizer, PlannedQuery
from ..optimizer.cost_model import ResourceCounts
from ..sampling import SampleDatabase
from ..storage import Database
from ..workloads import workload_by_name
from . import metrics

__all__ = ["ExecutedQuery", "CellResult", "SelectivityRecord", "ExperimentLab"]


@dataclass
class ExecutedQuery:
    """A planned query with its ground-truth execution artifacts."""

    sql: str
    planned: PlannedQuery
    counts: dict[int, ResourceCounts]
    cardinalities: dict[int, float]

    def true_selectivity(self, op_id: int) -> float:
        node = next(n for n in self.planned.root.walk() if n.op_id == op_id)
        return self.cardinalities[op_id] / max(self.planned.leaf_row_product(node), 1.0)


@dataclass
class CellResult:
    """Per-query predictions and the cell-level metrics."""

    database: str
    benchmark: str
    machine: str
    sampling_ratio: float
    variant: Variant
    mus: np.ndarray
    sigmas: np.ndarray
    actuals: np.ndarray

    @property
    def errors(self) -> np.ndarray:
        return np.abs(self.actuals - self.mus)

    @property
    def rs(self) -> float:
        return metrics.correlation_metrics(self.sigmas, self.errors)[0]

    @property
    def rp(self) -> float:
        return metrics.correlation_metrics(self.sigmas, self.errors)[1]

    @property
    def dn(self) -> float:
        return metrics.distribution_distance(self.mus, self.sigmas, self.actuals)

    def without_largest_sigma(self) -> "CellResult":
        """Drop the largest-sigma query (the Figure 3 outlier study)."""
        keep = np.ones(len(self.sigmas), dtype=bool)
        keep[int(np.argmax(self.sigmas))] = False
        return CellResult(
            self.database, self.benchmark, self.machine, self.sampling_ratio,
            self.variant, self.mus[keep], self.sigmas[keep], self.actuals[keep],
        )


@dataclass
class SelectivityRecord:
    """One selective operator's estimate vs truth (Tables 6-9, Fig 12)."""

    estimated: float
    estimated_std: float
    actual: float

    @property
    def error(self) -> float:
        return abs(self.estimated - self.actual)

    @property
    def relative_error(self) -> float:
        if self.actual == 0.0:
            return float("nan")
        return self.error / self.actual


@dataclass
class ExperimentLab:
    """Caching experiment runner over one or more databases."""

    databases: dict[str, Database]
    seed: int = 0
    query_counts: dict[str, int] = field(default_factory=dict)
    calibration_repetitions: int = 10
    _executed: dict = field(default_factory=dict, repr=False)
    _samples: dict = field(default_factory=dict, repr=False)
    _prepared: dict = field(default_factory=dict, repr=False)
    _units: dict = field(default_factory=dict, repr=False)
    _actuals: dict = field(default_factory=dict, repr=False)
    _predictors: dict = field(default_factory=dict, repr=False)

    # -- shared artifacts -------------------------------------------------
    def executed_queries(self, db_label: str, benchmark: str) -> list[ExecutedQuery]:
        key = (db_label, benchmark)
        if key not in self._executed:
            database = self.databases[db_label]
            count = self.query_counts.get(benchmark, 24)
            sqls = workload_by_name(benchmark, database, count, seed=self.seed)
            optimizer = Optimizer(database)
            executor = Executor(database)
            executed = []
            for sql in sqls:
                planned = optimizer.plan_sql(sql)
                result = executor.execute(planned)
                executed.append(
                    ExecutedQuery(
                        sql=sql,
                        planned=planned,
                        counts=result.counts,
                        cardinalities=result.cardinalities,
                    )
                )
            self._executed[key] = executed
        return self._executed[key]

    def sample_db(self, db_label: str, sampling_ratio: float) -> SampleDatabase:
        key = (db_label, sampling_ratio)
        if key not in self._samples:
            self._samples[key] = SampleDatabase(
                self.databases[db_label],
                sampling_ratio=sampling_ratio,
                seed=self.seed + 1,
            )
        return self._samples[key]

    def units(self, machine: str) -> CalibratedUnits:
        if machine not in self._units:
            simulator = HardwareSimulator(PROFILES[machine], rng=self.seed + 100)
            self._units[machine] = Calibrator(
                simulator, repetitions=self.calibration_repetitions
            ).calibrate()
        return self._units[machine]

    def predictor(self, machine: str) -> UncertaintyPredictor:
        if machine not in self._predictors:
            self._predictors[machine] = UncertaintyPredictor(self.units(machine))
        return self._predictors[machine]

    def prepared(
        self,
        db_label: str,
        benchmark: str,
        index: int,
        sampling_ratio: float,
        use_gee: bool = False,
    ) -> PreparedPrediction:
        key = (db_label, benchmark, index, sampling_ratio, use_gee)
        if key not in self._prepared:
            executed = self.executed_queries(db_label, benchmark)[index]
            samples = self.sample_db(db_label, sampling_ratio)
            # The predictor's prepare step is machine-free; use any machine.
            predictor = self.predictor("PC1")
            self._prepared[key] = predictor.prepare(
                executed.planned, samples, use_gee=use_gee
            )
        return self._prepared[key]

    def actual_time(self, db_label: str, benchmark: str, index: int, machine: str) -> float:
        key = (db_label, benchmark, index, machine)
        if key not in self._actuals:
            executed = self.executed_queries(db_label, benchmark)[index]
            # zlib.crc32, not hash(): string hashing is randomized per
            # process (PYTHONHASHSEED), which made every "actual" time —
            # and every metric derived from it — change between runs.
            simulator = HardwareSimulator(
                PROFILES[machine],
                rng=zlib.crc32(
                    f"{self.seed}/{db_label}/{benchmark}/{index}/{machine}".encode()
                ),
            )
            self._actuals[key] = simulator.run_repeated(executed.counts, repetitions=5)
        return self._actuals[key]

    # -- cells ------------------------------------------------------------
    def run_cell(
        self,
        db_label: str,
        benchmark: str,
        machine: str,
        sampling_ratio: float,
        variant: Variant = Variant.ALL,
        use_gee: bool = False,
    ) -> CellResult:
        """One grid cell: predictions + actual times for every query."""
        executed = self.executed_queries(db_label, benchmark)
        predictor = self.predictor(machine)
        mus, sigmas, actuals = [], [], []
        for index, _ in enumerate(executed):
            prepared = self.prepared(
                db_label, benchmark, index, sampling_ratio, use_gee
            )
            prediction = predictor.predict_prepared(
                executed[index].planned, prepared, variant
            )
            mus.append(prediction.mean)
            sigmas.append(prediction.std)
            actuals.append(self.actual_time(db_label, benchmark, index, machine))
        return CellResult(
            database=db_label,
            benchmark=benchmark,
            machine=machine,
            sampling_ratio=sampling_ratio,
            variant=variant,
            mus=np.asarray(mus),
            sigmas=np.asarray(sigmas),
            actuals=np.asarray(actuals),
        )

    # -- Figure 9/11: relative sampling overhead ---------------------------
    def relative_overhead(
        self, db_label: str, benchmark: str, machine: str, sampling_ratio: float
    ) -> float:
        """Mean of (sample-run cost) / (full-run cost) under unit means."""
        executed = self.executed_queries(db_label, benchmark)
        unit_means = self.units(machine).means()
        ratios = []
        for index, query in enumerate(executed):
            prepared = self.prepared(db_label, benchmark, index, sampling_ratio)
            sample_cost = sum(
                counts.total_cost(unit_means)
                for counts in prepared.estimate.sample_run_counts.values()
            )
            full_cost = sum(
                counts.total_cost(unit_means) for counts in query.counts.values()
            )
            if full_cost > 0:
                ratios.append(sample_cost / full_cost)
        return float(np.mean(ratios)) if ratios else float("nan")

    # -- Tables 6-9 / Figure 12: selectivity study --------------------------
    def selectivity_records(
        self, db_label: str, benchmark: str, sampling_ratio: float
    ) -> list[SelectivityRecord]:
        """Estimate-vs-truth for every sampled selective operator."""
        records = []
        executed = self.executed_queries(db_label, benchmark)
        for index, query in enumerate(executed):
            prepared = self.prepared(db_label, benchmark, index, sampling_ratio)
            for op_id, node_sel in prepared.estimate.per_node.items():
                if node_sel.source != "sample":
                    continue
                records.append(
                    SelectivityRecord(
                        estimated=node_sel.mean,
                        estimated_std=node_sel.std,
                        actual=query.true_selectivity(op_id),
                    )
                )
        return records
