"""Experiment grid settings (Section 6.1).

The paper's grid: {MICRO, SELJOIN, TPCH} x {uniform, skewed(z=1)} x
{1 GB, 10 GB} x {PC1, PC2} x SR in {0.01, 0.05, 0.1}. We scale the
databases down (DESIGN.md, substitutions): "small" stands in for the
1 GB database and "large" for the 10 GB one, keeping the size ratio and
all other grid axes identical.
"""

from __future__ import annotations


from ..datagen import TpchConfig

__all__ = [
    "BENCHMARKS",
    "DATABASE_CONFIGS",
    "SAMPLING_RATIOS",
    "MACHINES",
    "DEFAULT_QUERY_COUNTS",
    "database_label",
]

BENCHMARKS = ("MICRO", "SELJOIN", "TPCH")

#: label -> generator config. Seeds differ so databases are independent.
DATABASE_CONFIGS: dict[str, TpchConfig] = {
    "uniform-small": TpchConfig(scale_factor=0.02, skew_z=0.0, seed=11),
    "skewed-small": TpchConfig(scale_factor=0.02, skew_z=1.0, seed=12),
    "uniform-large": TpchConfig(scale_factor=0.08, skew_z=0.0, seed=13),
    "skewed-large": TpchConfig(scale_factor=0.08, skew_z=1.0, seed=14),
}

SAMPLING_RATIOS = (0.01, 0.05, 0.1)

MACHINES = ("PC1", "PC2")

#: Full-run query counts per benchmark (benches use fewer).
DEFAULT_QUERY_COUNTS = {"MICRO": 56, "SELJOIN": 28, "TPCH": 28}


def database_label(uniform: bool, large: bool) -> str:
    """Grid label, e.g. ``uniform-small`` or ``skewed-large``."""
    return f"{'uniform' if uniform else 'skewed'}-{'large' if large else 'small'}"
