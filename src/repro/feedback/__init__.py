"""Online feedback: drift-aware streaming recalibration of intervals.

The calibration profile the paper builds (Section 5) is *static*; the
cloud-variance related work argues environment drift dominates per-plan
features. This package closes the loop: it consumes
``(predicted distribution, actual runtime)`` observations and maintains
streaming per-tenant calibration state that corrects served intervals
online —

* :class:`ConformalWindow` — a ring buffer of normalized residual
  scores per tenant answering split-conformal quantile scales;
* :class:`DriftDetector` — a two-sided Page–Hinkley test on signed
  residuals that flags persistent shifts;
* :class:`FeedbackRecalibrator` — the lock-guarded composition: one
  window + detector per tenant, drift-triggered fast-window resets,
  and the :class:`FeedbackStats` surface that ``/v1/stats`` reports.

The loop is surfaced through ``Session.observe()`` / ``POST
/v1/observe`` (wire schema v2) and exercised end-to-end by
``repro replay --observe`` and the ``drift_recovery`` bench. See
``docs/feedback.md``.
"""

from .drift import DriftDetector, DriftState
from .recalibrator import (
    DEFAULT_TENANT,
    REFERENCE_CONFIDENCE,
    FeedbackConfig,
    FeedbackRecalibrator,
    FeedbackStats,
    ObserveOutcome,
    TenantFeedback,
)
from .window import ConformalWindow

__all__ = [
    "DEFAULT_TENANT",
    "REFERENCE_CONFIDENCE",
    "ConformalWindow",
    "DriftDetector",
    "DriftState",
    "FeedbackConfig",
    "FeedbackRecalibrator",
    "FeedbackStats",
    "ObserveOutcome",
    "TenantFeedback",
]
