"""Two-sided Page–Hinkley drift detection on normalized residuals.

The conformal window alone recovers from drift, but slowly: a shift
must *flush* the window before the quantile fully reflects the new
regime. The detector closes that gap — it watches the stream of
**signed** z-scores ``z_i = (actual_i − mean_i) / std_i`` and fires the
moment their running mean departs persistently in either direction,
letting the recalibrator truncate its window to a small fast window and
re-form the quantile from post-shift evidence within a handful of
observations.

Page–Hinkley is the classic sequential change-point test: maintain the
cumulative sum of deviations from the running mean, allowing slack
``delta`` per step, and flag drift when the sum's excursion from its
historical extremum exceeds ``threshold``. Two one-sided tests run in
parallel — a hardware slowdown pushes z up, a speedup pushes it down —
and either can fire. After a detection the detector resets and starts
accumulating evidence afresh.

Knob intuition (z-scores are unit-scaled, so these are dimensionless):

* ``delta`` — slack per observation; deviations smaller than this are
  treated as noise. 0.25 ignores sub-quarter-sigma wobble.
* ``threshold`` — total accumulated excess before firing. 12.0 means
  e.g. ~12 consecutive observations each a full sigma beyond slack, or
  fewer/larger ones; small enough to fire well inside a fast window
  after a 3x hardware shift, large enough to stay silent on the
  in-calibration streams the unit tests replay.

Thread-safety: none — the owning recalibrator serializes access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FeedbackError

__all__ = ["DriftDetector", "DriftState"]


@dataclass(frozen=True)
class DriftState:
    """A point-in-time snapshot of the detector's accumulators."""

    observations: int
    mean: float
    positive_excursion: float
    negative_excursion: float


class DriftDetector:
    """Two-sided Page–Hinkley test over a stream of signed z-scores."""

    def __init__(self, delta: float = 0.25, threshold: float = 12.0):
        if not (math.isfinite(delta) and delta >= 0):
            raise FeedbackError(f"delta must be finite and >= 0, got {delta}")
        if not (math.isfinite(threshold) and threshold > 0):
            raise FeedbackError(
                f"threshold must be finite and > 0, got {threshold}"
            )
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        """Forget all accumulated evidence (called after each detection)."""
        self._count = 0
        self._mean = 0.0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    def update(self, value: float) -> bool:
        """Feed one signed z-score; True when this one triggers drift."""
        if not (isinstance(value, (int, float)) and math.isfinite(value)):
            raise FeedbackError(f"drift input must be finite, got {value!r}")
        self._count += 1
        self._mean += (value - self._mean) / self._count
        # Upward test: fires when values run persistently above the mean.
        self._cum_up += value - self._mean - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        # Downward test: mirror image for persistent drops.
        self._cum_down += value - self._mean + self.delta
        self._max_down = max(self._max_down, self._cum_down)
        if (
            self._cum_up - self._min_up > self.threshold
            or self._max_down - self._cum_down > self.threshold
        ):
            self.reset()
            return True
        return False

    def state(self) -> DriftState:
        """The current accumulators (exposed for tests and stats)."""
        return DriftState(
            observations=self._count,
            mean=self._mean,
            positive_excursion=self._cum_up - self._min_up,
            negative_excursion=self._max_down - self._cum_down,
        )
