"""Per-tenant streaming recalibration: windows + drift, under one lock.

:class:`FeedbackRecalibrator` is the stateful heart of the feedback
loop. Each tenant owns a :class:`~repro.feedback.window.ConformalWindow`
of nonconformity scores and a
:class:`~repro.feedback.drift.DriftDetector` over signed z-scores; one
``observe()`` call feeds both and, when the detector fires, truncates
the window to ``fast_window`` so the conformal quantile re-forms from
post-shift evidence within a handful of observations instead of a full
window flush.

Tenants are isolated: observations for tenant A never move tenant B's
intervals, and the default tenant stays byte-for-byte on the static
profile until *it* has observations. ``scales_for()`` answers ``None``
outright for an unknown or not-yet-active tenant — that early None is
the bitwise-identity guarantee for observe-free serving.

Everything is mutated under serving traffic (the HTTP tier calls
``observe()`` and ``scales_for()`` from concurrent handler threads), so
all state lives behind one ``threading.Lock``; the windows and
detectors themselves are lock-free and rely on this class for
serialization. No blocking work happens under the lock — observe is
pure arithmetic over a bounded window.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from ..errors import FeedbackError
from .drift import DriftDetector
from .window import ConformalWindow

__all__ = [
    "DEFAULT_TENANT",
    "REFERENCE_CONFIDENCE",
    "FeedbackConfig",
    "FeedbackRecalibrator",
    "FeedbackStats",
    "ObserveOutcome",
    "TenantFeedback",
]

#: Observations that do not name a tenant land here.
DEFAULT_TENANT = "default"

#: The confidence whose conformal scale is reported in stats/acks —
#: the paper's headline 90% interval.
REFERENCE_CONFIDENCE = 0.9

#: Nonconformity of an actual that contradicts a point-mass (std = 0)
#: prediction is unbounded; it is clamped here to keep the window and
#: the detector finite.
SCORE_CLIP = 1e6


@dataclass(frozen=True)
class FeedbackConfig:
    """The feedback loop's knobs (surfaced as ``feedback_*`` on
    :class:`~repro.api.config.SessionConfig`)."""

    window: int = 128
    min_observations: int = 20
    fast_window: int = 16
    drift_delta: float = 0.25
    drift_threshold: float = 12.0

    def __post_init__(self):
        if self.window < 1:
            raise FeedbackError(
                f"feedback window must be >= 1, got {self.window}"
            )
        if not 1 <= self.min_observations <= self.window:
            raise FeedbackError(
                "feedback min_observations must be in [1, window]; "
                f"got {self.min_observations} with window {self.window}"
            )
        if not 1 <= self.fast_window <= self.window:
            raise FeedbackError(
                "feedback fast_window must be in [1, window]; "
                f"got {self.fast_window} with window {self.window}"
            )
        if not (math.isfinite(self.drift_delta) and self.drift_delta >= 0):
            raise FeedbackError(
                f"drift_delta must be finite and >= 0, got {self.drift_delta}"
            )
        if not (
            math.isfinite(self.drift_threshold) and self.drift_threshold > 0
        ):
            raise FeedbackError(
                "drift_threshold must be finite and > 0, "
                f"got {self.drift_threshold}"
            )


@dataclass(frozen=True)
class TenantFeedback:
    """One tenant's calibration state, as reported in stats."""

    tenant: str
    observations: int
    window_fill: int
    active: bool
    drifts_detected: int
    last_drift_observation: int | None
    scale: float | None


@dataclass(frozen=True)
class FeedbackStats:
    """The feedback section of a stats snapshot (wire form in
    :mod:`repro.api.wire`)."""

    observations: int
    drifts_detected: int
    tenants: tuple[TenantFeedback, ...] = ()


@dataclass(frozen=True)
class ObserveOutcome:
    """What one ``observe()`` call did (the ``/v1/observe`` ack body)."""

    tenant: str
    observations: int
    window_fill: int
    active: bool
    drift_detected: bool
    drifts_total: int
    scale: float | None


class _TenantState:
    """Mutable per-tenant calibration state (guarded by the owner's lock)."""

    __slots__ = ("window", "detector", "drifts", "last_drift")

    def __init__(self, config: FeedbackConfig):
        self.window = ConformalWindow(config.window, config.min_observations)
        self.detector = DriftDetector(config.drift_delta, config.drift_threshold)
        self.drifts = 0
        self.last_drift: int | None = None


def _normalized_residual(
    predicted_mean: float, predicted_std: float, actual_seconds: float
) -> float:
    """The signed z-score of ``actual`` under its predicted normal."""
    if predicted_std > 0:
        z = (actual_seconds - predicted_mean) / predicted_std
    elif actual_seconds == predicted_mean:
        z = 0.0
    else:
        z = math.copysign(SCORE_CLIP, actual_seconds - predicted_mean)
    return max(-SCORE_CLIP, min(SCORE_CLIP, z))


class FeedbackRecalibrator:
    """Streaming per-tenant conformal scaling with drift-aware resets."""

    def __init__(self, config: FeedbackConfig | None = None):
        self.config = config if config is not None else FeedbackConfig()
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}

    def observe(
        self,
        tenant: str,
        predicted_mean: float,
        predicted_std: float,
        actual_seconds: float,
    ) -> ObserveOutcome:
        """Ingest one (prediction, actual) pair for ``tenant``."""
        if not isinstance(tenant, str) or not tenant:
            raise FeedbackError(f"tenant must be a non-empty string, got {tenant!r}")
        for name, value in (
            ("predicted_mean", predicted_mean),
            ("predicted_std", predicted_std),
            ("actual_seconds", actual_seconds),
        ):
            if not (isinstance(value, (int, float)) and math.isfinite(value)):
                raise FeedbackError(f"{name} must be finite, got {value!r}")
        if predicted_std < 0:
            raise FeedbackError(f"predicted_std must be >= 0, got {predicted_std}")
        if actual_seconds < 0:
            raise FeedbackError(f"actual_seconds must be >= 0, got {actual_seconds}")
        z = _normalized_residual(predicted_mean, predicted_std, actual_seconds)
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = _TenantState(self.config)
                self._tenants[tenant] = state
            state.window.add(abs(z))
            drifted = state.detector.update(z)
            if drifted:
                state.drifts += 1
                state.last_drift = state.window.total
                state.window.truncate(self.config.fast_window)
            scale = state.window.scale(REFERENCE_CONFIDENCE)
            return ObserveOutcome(
                tenant=tenant,
                observations=state.window.total,
                window_fill=state.window.fill,
                active=state.window.fill >= self.config.min_observations,
                drift_detected=drifted,
                drifts_total=state.drifts,
                scale=scale,
            )

    def scales_for(
        self, tenant: str, confidences: tuple[float, ...]
    ) -> tuple[int, tuple[float | None, ...]] | None:
        """``(observations, scales)`` for ``confidences``, or None.

        The outer None (unknown tenant, or fewer than
        ``min_observations`` scores) means the caller must serve the
        static profile untouched — this is the observe-free
        bitwise-identity path. Individual scale entries may still be
        None when that confidence is unresolvable from the current
        fill; callers fall back per-interval. ``observations`` is the
        tenant's lifetime observation count at snapshot time.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return None
            if state.window.fill < self.config.min_observations:
                return None
            return (
                state.window.total,
                tuple(state.window.scale(c) for c in confidences),
            )

    def stats(self) -> FeedbackStats:
        """A consistent snapshot of every tenant's calibration state."""
        with self._lock:
            tenants = tuple(
                TenantFeedback(
                    tenant=name,
                    observations=state.window.total,
                    window_fill=state.window.fill,
                    active=state.window.fill >= self.config.min_observations,
                    drifts_detected=state.drifts,
                    last_drift_observation=state.last_drift,
                    scale=state.window.scale(REFERENCE_CONFIDENCE),
                )
                for name, state in sorted(self._tenants.items())
            )
        return FeedbackStats(
            observations=sum(t.observations for t in tenants),
            drifts_detected=sum(t.drifts_detected for t in tenants),
            tenants=tenants,
        )
