"""The windowed conformal calibrator: a ring buffer of residual scores.

The paper's intervals come from a *static* calibration profile: the
predictor serves ``mean ± z_c · std`` with ``z_c`` the normal quantile
for confidence ``c``. That is exactly right while the environment the
profile was calibrated on holds — and silently miscalibrated the moment
it drifts (the cloud-variance critique in PAPERS.md).

:class:`ConformalWindow` is the streaming correction: it keeps the last
``maxlen`` **nonconformity scores** ``s_i = |actual_i − mean_i| / std_i``
(the absolute z-score of each observed runtime under its own predicted
distribution) and answers, for any confidence ``c``, the split-conformal
quantile

    ``q̂_c = k-th smallest score,  k = ⌈(n + 1) · c⌉``

which replaces the static normal quantile in the served interval:
``mean ± q̂_c · std``. Finite-sample conformal coverage then holds under
exchangeability of the windowed scores *regardless* of whether the
predicted distribution's shape is right — a multiplicative hardware
shift of factor ``f`` simply inflates the scores and ``q̂_c`` tracks it
within one window.

The window deliberately answers ``None`` (meaning *stay on the static
profile*) until it is trustworthy: fewer than ``min_observations``
scores, or ``k > n`` (the requested confidence is not resolvable from
``n`` samples — e.g. 0.99 needs at least 99 scores). That None is what
keeps observe-free serving bitwise-identical to the pre-feedback stack.

Thread-safety: none here — the window is plain state; the owning
:class:`~repro.feedback.recalibrator.FeedbackRecalibrator` serializes
all access under its lock.
"""

from __future__ import annotations

import math
from collections import deque

from ..errors import FeedbackError

__all__ = ["ConformalWindow"]


class ConformalWindow:
    """A bounded FIFO of nonconformity scores with conformal quantiles."""

    def __init__(self, maxlen: int, min_observations: int):
        if maxlen < 1:
            raise FeedbackError(f"window maxlen must be >= 1, got {maxlen}")
        if not 1 <= min_observations <= maxlen:
            raise FeedbackError(
                "min_observations must be in [1, maxlen]; "
                f"got {min_observations} with maxlen {maxlen}"
            )
        self.maxlen = maxlen
        self.min_observations = min_observations
        self._scores: deque[float] = deque(maxlen=maxlen)
        self._total = 0

    @property
    def fill(self) -> int:
        """How many scores the window currently holds (<= maxlen)."""
        return len(self._scores)

    @property
    def total(self) -> int:
        """Lifetime count of scores ever added (never decreases)."""
        return self._total

    def add(self, score: float) -> None:
        """Append one nonconformity score, evicting the oldest when full."""
        if not (isinstance(score, (int, float)) and math.isfinite(score)):
            raise FeedbackError(f"score must be finite, got {score!r}")
        if score < 0:
            raise FeedbackError(f"score must be >= 0, got {score}")
        self._scores.append(float(score))
        self._total += 1

    def truncate(self, keep: int) -> None:
        """Drop the oldest scores so at most ``keep`` recent ones remain.

        This is the drift response: after a detected shift the pre-shift
        scores describe a world that no longer exists, so the window is
        cut down to its freshest ``keep`` entries and the conformal
        quantile re-forms from post-shift evidence only.
        """
        if keep < 1:
            raise FeedbackError(f"truncate keep must be >= 1, got {keep}")
        while len(self._scores) > keep:
            self._scores.popleft()

    def scale(self, confidence: float) -> float | None:
        """The conformal quantile q̂ for ``confidence``, or None.

        None means *not active*: the window has fewer than
        ``min_observations`` scores, or ⌈(n+1)·confidence⌉ exceeds n so
        the requested coverage cannot be certified from n samples.
        Callers fall back to the static profile in that case.
        """
        if not 0.0 < confidence < 1.0:
            raise FeedbackError(
                f"confidence must lie in (0, 1), got {confidence}"
            )
        n = len(self._scores)
        if n < self.min_observations:
            return None
        rank = math.ceil((n + 1) * confidence)
        if rank > n:
            return None
        return sorted(self._scores)[rank - 1]

    def snapshot(self) -> tuple[float, ...]:
        """The current scores, oldest first (for tests and debugging)."""
        return tuple(self._scores)
