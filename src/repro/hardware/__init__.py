"""Simulated hardware: machine profiles and the stochastic clock."""

from .profile import PC1, PC2, PROFILES, CostUnitTruth, HardwareProfile
from .simulator import HardwareSimulator

__all__ = [
    "CostUnitTruth",
    "HardwareProfile",
    "HardwareSimulator",
    "PC1",
    "PC2",
    "PROFILES",
]
