"""Simulated hardware profiles.

The paper runs on two physical machines (PC1: dual 1.86 GHz, 4 GB; PC2:
8-core 2.4 GHz, 16 GB) with cold caches. We substitute simulated
profiles: each cost unit of Table 1 has a true mean (seconds per page /
tuple / operation) and a true standard deviation capturing the inherent
hardware randomness the paper models (Section 3.1). A lognormal
model-error factor stands in for the structural error of the cost
function ``g`` (Section 1, error source three).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..optimizer.cost_model import COST_UNIT_NAMES

__all__ = ["CostUnitTruth", "HardwareProfile", "PC1", "PC2", "PROFILES"]


@dataclass(frozen=True)
class CostUnitTruth:
    """True distribution of one cost unit: N(mean, std^2), truncated > 0."""

    mean: float
    std: float

    def __post_init__(self):
        if self.mean <= 0 or self.std < 0:
            raise ValueError(f"invalid cost unit truth: {self}")


@dataclass(frozen=True)
class HardwareProfile:
    """A machine: five cost-unit distributions plus model-error magnitude."""

    name: str
    units: dict[str, CostUnitTruth] = field(default_factory=dict)
    #: sigma of the lognormal model-error factor applied per execution
    model_error_sigma: float = 0.1

    def __post_init__(self):
        missing = set(COST_UNIT_NAMES) - set(self.units)
        if missing:
            raise ValueError(f"profile {self.name}: missing units {sorted(missing)}")

    def unit_means(self) -> dict[str, float]:
        return {name: truth.mean for name, truth in self.units.items()}


def _profile(name, cs, cr, ct, ci, co, cv_io, cv_cpu, model_error_sigma):
    """Build a profile from unit means and per-class coefficients of
    variation (I/O units are noisier than CPU units, and random I/O is the
    noisiest of all — the paper's motivating example)."""
    return HardwareProfile(
        name=name,
        units={
            "cs": CostUnitTruth(cs, cs * cv_io),
            "cr": CostUnitTruth(cr, cr * cv_io * 2.0),
            "ct": CostUnitTruth(ct, ct * cv_cpu),
            "ci": CostUnitTruth(ci, ci * cv_cpu),
            "co": CostUnitTruth(co, co * cv_cpu),
        },
        model_error_sigma=model_error_sigma,
    )


#: Older dual-core machine: slow spinning disk, noisy I/O.
PC1 = _profile(
    "PC1",
    cs=1.6e-4,   # ~50 MB/s sequential
    cr=6.0e-3,   # ~6 ms random seek
    ct=1.2e-6,
    ci=6.0e-7,
    co=3.0e-7,
    cv_io=0.18,
    cv_cpu=0.06,
    model_error_sigma=0.13,
)

#: Newer 8-core machine: faster disk and CPU, tighter variances.
PC2 = _profile(
    "PC2",
    cs=5.0e-5,   # ~160 MB/s sequential
    cr=2.5e-3,
    ct=4.0e-7,
    ci=2.0e-7,
    co=1.0e-7,
    cv_io=0.12,
    cv_cpu=0.04,
    model_error_sigma=0.09,
)

PROFILES = {"PC1": PC1, "PC2": PC2}
