"""Converts resource counts into simulated wall-clock seconds.

One simulated execution draws a fresh realization of every cost unit
*per operator* (the cost of a random I/O "may differ substantially from
operator to operator and from query to query" — Section 1) and applies
one lognormal model-error factor per run.
"""

from __future__ import annotations

import numpy as np

from ..optimizer.cost_model import COST_UNIT_NAMES, ResourceCounts
from ..util import ensure_rng
from .profile import HardwareProfile

__all__ = ["HardwareSimulator"]


class HardwareSimulator:
    """Stochastic clock: counts -> seconds under a hardware profile."""

    def __init__(self, profile: HardwareProfile, rng=None):
        self.profile = profile
        self._rng = ensure_rng(rng)

    def _draw_unit(self, name: str, size: int) -> np.ndarray:
        truth = self.profile.units[name]
        draws = self._rng.normal(truth.mean, truth.std, size=size)
        # Cost units are physically positive; truncate far-left tail draws.
        return np.maximum(draws, truth.mean * 0.05)

    def _model_error(self) -> float:
        sigma = self.profile.model_error_sigma
        # Mean-one lognormal so the model error does not bias the clock.
        return float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))

    def run_once(self, counts: dict[int, ResourceCounts]) -> float:
        """One simulated execution of a plan (per-operator unit draws)."""
        operators = list(counts.values())
        if not operators:
            return 0.0
        total = 0.0
        for name in COST_UNIT_NAMES:
            draws = self._draw_unit(name, len(operators))
            for value, op_counts in zip(draws, operators):
                total += value * op_counts.as_dict()[name]
        return total * self._model_error()

    def run_repeated(self, counts: dict[int, ResourceCounts], repetitions: int = 5) -> float:
        """Mean of ``repetitions`` executions (the paper's measurement)."""
        times = [self.run_once(counts) for _ in range(repetitions)]
        return float(np.mean(times))

    def run_counts_once(self, counts: ResourceCounts) -> float:
        """One simulated execution of a single-operator workload."""
        return self.run_once({0: counts})
