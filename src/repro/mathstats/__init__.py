"""Probability and statistics utilities."""

from .correlation import pearson, ranks, spearman
from .moments import (
    Monomial,
    monomial_cov,
    monomial_mean,
    monomial_product,
    monomial_var,
)
from .normal import NormalDistribution, noncentral_moment

__all__ = [
    "NormalDistribution",
    "noncentral_moment",
    "Monomial",
    "monomial_mean",
    "monomial_product",
    "monomial_cov",
    "monomial_var",
    "pearson",
    "spearman",
    "ranks",
]
