"""Correlation coefficients used by the evaluation (Section 6.3).

Implemented from scratch (the substrate rule); tests cross-check them
against scipy.stats.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pearson", "ranks", "spearman"]


def pearson(x, y) -> float:
    """Pearson correlation coefficient r_p (Eq. 7)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("pearson: mismatched shapes")
    if len(x) < 2:
        return float("nan")
    dx = x - x.mean()
    dy = y - y.mean()
    denominator = np.sqrt((dx * dx).sum() * (dy * dy).sum())
    if denominator == 0:
        return float("nan")
    return float((dx * dy).sum() / denominator)


def ranks(values) -> np.ndarray:
    """Ascending ranks with ties assigned their average rank."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    n = len(values)
    result = np.empty(n, dtype=np.float64)
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        # ranks are 1-based; ties share the average of their positions
        average = (i + j) / 2.0 + 1.0
        result[order[i : j + 1]] = average
        i = j + 1
    return result


def spearman(x, y) -> float:
    """Spearman's rank correlation coefficient r_s (Section 6.3)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("spearman: mismatched shapes")
    if len(x) < 2:
        return float("nan")
    return pearson(ranks(x), ranks(y))
