"""Monomial moment algebra over independent-or-identical normal variables.

The predictor's cost functions are polynomials in selectivity variables
(Section 4.1). Their means, variances, and pairwise covariances reduce
to expectations of monomials. This module computes those exactly when
all *distinct* variables involved are independent — the caller is
responsible for routing correlated pairs to the covariance bounds
instead (Section 5.3).
"""

from __future__ import annotations

from .normal import noncentral_moment

__all__ = ["Monomial", "monomial_mean", "monomial_product", "monomial_cov", "monomial_var"]

#: A monomial is a mapping var_id -> exponent (exponents >= 1).
Monomial = dict[int, int]


def monomial_mean(monomial: Monomial, distributions: dict[int, tuple[float, float]]) -> float:
    """E[prod X_i^{e_i}] for independent normal X_i."""
    product = 1.0
    for var_id, exponent in monomial.items():
        mean, variance = distributions[var_id]
        product *= noncentral_moment(mean, variance, exponent)
    return product


def monomial_product(first: Monomial, second: Monomial) -> Monomial:
    """Merge exponents: (prod X^a) * (prod X^b)."""
    merged = dict(first)
    for var_id, exponent in second.items():
        merged[var_id] = merged.get(var_id, 0) + exponent
    return merged


def monomial_cov(
    first: Monomial,
    second: Monomial,
    distributions: dict[int, tuple[float, float]],
) -> float:
    """Cov(M1, M2) when all distinct variables are mutually independent.

    Exact via Cov = E[M1*M2] - E[M1]E[M2]; shared variables contribute
    higher non-central moments (up to order 4 for the C1..C6 families).
    """
    joint = monomial_mean(monomial_product(first, second), distributions)
    return joint - monomial_mean(first, distributions) * monomial_mean(
        second, distributions
    )


def monomial_var(monomial: Monomial, distributions: dict[int, tuple[float, float]]) -> float:
    """Var[M], exact for independent normal variables."""
    variance = monomial_cov(monomial, monomial, distributions)
    return max(variance, 0.0)
