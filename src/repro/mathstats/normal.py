"""Normal distributions and their non-central moments (Table 3)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erfinv

__all__ = ["NormalDistribution", "noncentral_moment"]


def noncentral_moment(mean: float, variance: float, k: int) -> float:
    """E[X^k] for X ~ N(mean, variance).

    Uses the recursion m_k = mean * m_{k-1} + (k-1) * variance * m_{k-2},
    which reproduces Table 3 of the paper for k <= 4 and extends to any k.
    """
    if k < 0:
        raise ValueError(f"moment order must be nonnegative, got {k}")
    previous, current = 1.0, mean  # m_0, m_1
    if k == 0:
        return previous
    for order in range(2, k + 1):
        previous, current = current, mean * current + (order - 1) * variance * previous
    return current


@dataclass(frozen=True)
class NormalDistribution:
    """N(mean, variance) with the operations the predictor needs."""

    mean: float
    variance: float

    def __post_init__(self):
        if self.variance < 0:
            raise ValueError(f"negative variance: {self.variance}")

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def pdf(self, x: float) -> float:
        if self.variance == 0:
            return math.inf if x == self.mean else 0.0
        z = (x - self.mean) / self.std
        return math.exp(-0.5 * z * z) / (self.std * math.sqrt(2 * math.pi))

    def cdf(self, x: float) -> float:
        if self.variance == 0:
            return 1.0 if x >= self.mean else 0.0
        z = (x - self.mean) / (self.std * math.sqrt(2))
        return 0.5 * (1.0 + math.erf(z))

    def quantile(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {p}")
        if self.variance == 0:
            return self.mean
        return self.mean + self.std * math.sqrt(2) * float(erfinv(2 * p - 1))

    def interval(self, confidence: float) -> tuple[float, float]:
        """Central interval containing ``confidence`` probability mass."""
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        tail = (1.0 - confidence) / 2.0
        return self.quantile(tail), self.quantile(1.0 - tail)

    def prob_within(self, low: float, high: float) -> float:
        """P(low <= X <= high), treating the interval as closed.

        The degenerate variance == 0 case is a point mass at the mean:
        all the probability lies inside any interval containing the mean.
        The generic cdf difference would get the boundary wrong there
        (cdf is right-continuous, so cdf(mean) - cdf(mean - eps) = 1 but
        cdf(mean + eps) - cdf(mean) = 0); for a continuous normal the
        open/closed distinction is immaterial.
        """
        if self.variance == 0:
            return 1.0 if low <= self.mean <= high else 0.0
        return max(self.cdf(high) - self.cdf(low), 0.0)

    def moment(self, k: int) -> float:
        return noncentral_moment(self.mean, self.variance, k)

    def scale(self, factor: float) -> "NormalDistribution":
        return NormalDistribution(self.mean * factor, self.variance * factor * factor)

    def shift(self, offset: float) -> "NormalDistribution":
        return NormalDistribution(self.mean + offset, self.variance)

    def __add__(self, other: "NormalDistribution") -> "NormalDistribution":
        """Sum of independent normals."""
        return NormalDistribution(
            self.mean + other.mean, self.variance + other.variance
        )
