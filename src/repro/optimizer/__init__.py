"""Cost-based optimizer: cardinality estimation, cost model, join order."""

from .cardinality import CardinalityEstimator
from .cost_model import COST_UNIT_NAMES, PLANNER_UNITS, CostModel, ResourceCounts
from .join_order import JoinTree, best_join_order
from .optimizer import Optimizer, OptimizerConfig, PlannedQuery

__all__ = [
    "CardinalityEstimator",
    "COST_UNIT_NAMES",
    "PLANNER_UNITS",
    "CostModel",
    "ResourceCounts",
    "JoinTree",
    "best_join_order",
    "Optimizer",
    "OptimizerConfig",
    "PlannedQuery",
]
