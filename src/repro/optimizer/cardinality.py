"""Histogram/NDV-based cardinality estimation (the optimizer's view).

This is the classic System-R style estimator the paper contrasts with
its sampling-based one: it powers plan choice, and supplies the fallback
selectivities used above aggregates (Algorithm 1, lines 3-5).
"""

from __future__ import annotations

import numpy as np

from ..plan.logical import JoinEdge
from ..plan.predicates import ColumnPairScanPredicate, PredicateKind
from ..storage import Database

__all__ = ["CardinalityEstimator", "DEFAULT_UNKNOWN_SELECTIVITY"]

#: Fallback selectivity when statistics cannot answer (PostgreSQL uses 0.005
#: to 0.33 depending on operator; we use a third for ranges).
DEFAULT_UNKNOWN_SELECTIVITY = 0.33
_MIN_SELECTIVITY = 1e-9


class CardinalityEstimator:
    """Estimates selectivities and cardinalities from catalog statistics."""

    def __init__(self, database: Database):
        self._db = database

    # -- scans ----------------------------------------------------------
    def predicate_selectivity(self, table_name: str, predicate) -> float:
        if isinstance(predicate, ColumnPairScanPredicate):
            # Column-vs-column comparisons have no histogram support;
            # PostgreSQL-style default.
            return DEFAULT_UNKNOWN_SELECTIVITY
        stats = self._db.table_stats(table_name).column(predicate.column)
        kind = predicate.kind
        if kind is PredicateKind.EQ:
            selectivity = stats.eq_selectivity(predicate.values[0])
        elif kind is PredicateKind.NE:
            selectivity = 1.0 - stats.eq_selectivity(predicate.values[0])
        elif kind is PredicateKind.IN:
            selectivity = sum(stats.eq_selectivity(v) for v in predicate.values)
        elif kind is PredicateKind.BETWEEN:
            low, high = predicate.values
            selectivity = stats.range_selectivity(low=low, high=high)
        elif kind in (PredicateKind.LT, PredicateKind.LE):
            selectivity = stats.range_selectivity(high=predicate.values[0])
        elif kind in (PredicateKind.GT, PredicateKind.GE):
            selectivity = stats.range_selectivity(low=predicate.values[0])
        elif kind is PredicateKind.PREFIX:
            selectivity = self._prefix_selectivity(stats, predicate.values[0])
        else:
            selectivity = DEFAULT_UNKNOWN_SELECTIVITY
        return float(np.clip(selectivity, _MIN_SELECTIVITY, 1.0))

    @staticmethod
    def _prefix_selectivity(stats, prefix: str) -> float:
        mcv_mass = sum(
            fraction
            for value, fraction in zip(stats.mcv_values, stats.mcv_fractions)
            if str(value).startswith(prefix)
        )
        # Assume the non-MCV remainder matches proportionally to one distinct
        # value per prefix character of discrimination.
        residual = max(0.0, 1.0 - sum(stats.mcv_fractions))
        rest_distinct = max(stats.num_distinct - len(stats.mcv_values), 1)
        return mcv_mass + residual / rest_distinct

    def scan_selectivity(self, table_name: str, predicates) -> float:
        """Combined selectivity of ANDed predicates (independence assumed)."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(table_name, predicate)
        return max(selectivity, _MIN_SELECTIVITY)

    def scan_rows(self, table_name: str, predicates) -> float:
        rows = self._db.table_stats(table_name).num_rows
        return max(rows * self.scan_selectivity(table_name, predicates), 1.0)

    # -- joins ------------------------------------------------------------
    def join_edge_selectivity(self, edge: JoinEdge, alias_tables: dict[str, str]) -> float:
        """Equijoin selectivity: 1 / max(ndv(left), ndv(right))."""
        left_stats = self._db.table_stats(alias_tables[edge.left_alias])
        right_stats = self._db.table_stats(alias_tables[edge.right_alias])
        ndv_left = max(left_stats.column(edge.left_column).num_distinct, 1)
        ndv_right = max(right_stats.column(edge.right_column).num_distinct, 1)
        return 1.0 / max(ndv_left, ndv_right)

    # -- aggregates --------------------------------------------------------
    def group_count(
        self,
        group_key_ndvs: list[int],
        input_rows: float,
    ) -> float:
        """Estimated number of groups, capped by the input cardinality."""
        if not group_key_ndvs:
            return 1.0
        product = 1.0
        for ndv in group_key_ndvs:
            product *= max(ndv, 1)
        return float(min(product, max(input_rows, 1.0)))

    def column_ndv(self, table_name: str, column: str) -> int:
        return self._db.table_stats(table_name).column(column).num_distinct
