"""The PostgreSQL-style cost model (Example 1 in the paper).

Every operator's runtime overhead is modeled as

    t_O = ns*cs + nr*cr + nt*ct + ni*ci + no*co        (Eq. 1)

where the ``n``'s are *logical cost functions* of the operator's
input/output cardinalities. This module is the single source of truth
for those functions. It is used three ways:

1. by the optimizer, with *estimated* cardinalities, to pick plans;
2. by the executor + hardware simulator, with *true* cardinalities, to
   produce ground-truth running times;
3. by the predictor's cost-function fitting (Section 4), which invokes
   it on a grid of candidate selectivities to recover the coefficients
   of the C1..C6 families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PlanError
from ..plan.physical import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    OpKind,
    PlanNode,
    SeqScanNode,
)
from ..storage import Database

__all__ = [
    "COST_UNIT_NAMES",
    "PLANNER_UNITS",
    "ResourceCounts",
    "CostModel",
]

#: The five cost units of Table 1, in canonical order.
COST_UNIT_NAMES = ("cs", "cr", "ct", "ci", "co")

#: PostgreSQL's default planner constants (seq_page_cost, random_page_cost,
#: cpu_tuple_cost, cpu_index_tuple_cost, cpu_operator_cost).
PLANNER_UNITS = {"cs": 1.0, "cr": 4.0, "ct": 0.01, "ci": 0.005, "co": 0.0025}

#: Assumed B-tree descent cost in random page touches per index scan.
INDEX_DESCENT_PAGES = 3.0
#: CPU operations charged per tuple for hashing (build or probe).
HASH_OPS_PER_TUPLE = 2.0
#: CPU operations charged per comparison in sorts and merge joins.
COMPARE_OPS = 1.0


@dataclass(frozen=True)
class ResourceCounts:
    """The five ``n`` counters of Eq. 1."""

    ns: float = 0.0  # pages read sequentially
    nr: float = 0.0  # pages read randomly
    nt: float = 0.0  # tuples processed
    ni: float = 0.0  # tuples processed via index access
    no: float = 0.0  # primitive CPU operations

    def __add__(self, other: "ResourceCounts") -> "ResourceCounts":
        return ResourceCounts(
            self.ns + other.ns,
            self.nr + other.nr,
            self.nt + other.nt,
            self.ni + other.ni,
            self.no + other.no,
        )

    def as_dict(self) -> dict[str, float]:
        return {"cs": self.ns, "cr": self.nr, "ct": self.nt, "ci": self.ni, "co": self.no}

    def total_cost(self, units: dict[str, float]) -> float:
        """Evaluate Eq. 1 with the given cost-unit values."""
        counts = self.as_dict()
        return sum(counts[name] * units[name] for name in COST_UNIT_NAMES)


class CostModel:
    """Computes :class:`ResourceCounts` per operator from cardinalities."""

    def __init__(self, database: Database):
        self._db = database

    # ------------------------------------------------------------------
    def operator_counts(
        self,
        node: PlanNode,
        n_left: float,
        n_right: float,
        m_out: float,
        fetched: float | None = None,
    ) -> ResourceCounts:
        """Resource counts for one operator.

        ``n_left`` / ``n_right`` are the input cardinalities, ``m_out`` the
        output cardinality. For index scans, ``fetched`` overrides the
        modeled number of heap fetches (the executor passes the true
        value; the optimizer and the fitting grid leave it None).
        """
        kind = node.kind
        if kind is OpKind.SEQ_SCAN:
            return self._seq_scan_counts(node)
        if kind is OpKind.INDEX_SCAN:
            return self._index_scan_counts(node, m_out, fetched)
        if kind is OpKind.FILTER:
            return self._filter_counts(node, n_left)
        if kind is OpKind.HASH_JOIN:
            return ResourceCounts(
                nt=n_left + n_right,
                no=HASH_OPS_PER_TUPLE * (n_left + n_right),
            )
        if kind is OpKind.MERGE_JOIN:
            return ResourceCounts(
                nt=n_left + n_right,
                no=COMPARE_OPS * (n_left + n_right),
            )
        if kind is OpKind.NESTLOOP_JOIN:
            return ResourceCounts(
                nt=n_left + n_left * n_right,
                no=COMPARE_OPS * n_left * n_right,
            )
        if kind is OpKind.SORT:
            comparisons = n_left * math.log2(max(n_left, 2.0))
            return ResourceCounts(nt=n_left, no=2.0 * COMPARE_OPS * comparisons)
        if kind is OpKind.AGGREGATE:
            return self._aggregate_counts(node, n_left)
        if kind is OpKind.MATERIALIZE:
            return ResourceCounts(nt=n_left, no=n_left)
        if kind is OpKind.LIMIT:
            return ResourceCounts(nt=min(n_left, m_out))
        raise PlanError(f"cost model: unknown operator kind {kind}")

    # -- per-operator helpers -------------------------------------------
    def _seq_scan_counts(self, node: SeqScanNode) -> ResourceCounts:
        stats = self._db.table_stats(node.table)
        ops_per_tuple = sum(p.num_ops for p in node.predicates)
        return ResourceCounts(
            ns=float(stats.num_pages),
            nt=float(stats.num_rows),
            no=float(ops_per_tuple * stats.num_rows),
        )

    def _index_scan_counts(
        self, node: IndexScanNode, m_out: float, fetched: float | None
    ) -> ResourceCounts:
        if fetched is None:
            fetched = getattr(node, "index_fetch_factor", 1.0) * m_out
        ops_per_tuple = sum(p.num_ops for p in node.predicates)
        return ResourceCounts(
            nr=fetched + INDEX_DESCENT_PAGES,
            nt=fetched,
            ni=fetched,
            no=ops_per_tuple * fetched,
        )

    @staticmethod
    def _filter_counts(node: FilterNode, n_left: float) -> ResourceCounts:
        ops_per_tuple = sum(p.num_ops for p in node.scan_predicates)
        ops_per_tuple += sum(p.num_ops for p in node.compare_predicates)
        return ResourceCounts(nt=n_left, no=max(ops_per_tuple, 1) * n_left)

    @staticmethod
    def _aggregate_counts(node: AggregateNode, n_left: float) -> ResourceCounts:
        per_tuple = HASH_OPS_PER_TUPLE if node.group_keys else 0.0
        per_tuple += sum(spec.num_ops for spec in node.aggregates)
        return ResourceCounts(nt=n_left, no=max(per_tuple, 1.0) * n_left)

    # ------------------------------------------------------------------
    def plan_counts(
        self, root: PlanNode, cardinalities: dict[int, float], fetched: dict[int, float] | None = None
    ) -> dict[int, ResourceCounts]:
        """Counts for every node given per-node output cardinalities.

        ``cardinalities`` maps op_id -> output rows; input cardinalities
        are read off the children. ``fetched`` optionally maps index-scan
        op_ids to true heap-fetch counts.
        """
        fetched = fetched or {}
        result: dict[int, ResourceCounts] = {}
        for node in root.walk():
            n_left = cardinalities[node.children[0].op_id] if node.children else 0.0
            n_right = (
                cardinalities[node.children[1].op_id]
                if len(node.children) > 1
                else 0.0
            )
            result[node.op_id] = self.operator_counts(
                node,
                n_left,
                n_right,
                cardinalities[node.op_id],
                fetched=fetched.get(node.op_id),
            )
        return result

    def plan_cost(
        self,
        root: PlanNode,
        cardinalities: dict[int, float],
        units: dict[str, float] | None = None,
    ) -> float:
        """Total plan cost under ``units`` (planner constants by default)."""
        units = units or PLANNER_UNITS
        counts = self.plan_counts(root, cardinalities)
        return sum(c.total_cost(units) for c in counts.values())
