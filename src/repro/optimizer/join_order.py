"""Join-order enumeration: dynamic programming over connected subsets.

Classic DPsize with the C_out cost metric (sum of intermediate result
cardinalities). Cross products are only considered when the join graph
is disconnected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizerError
from ..plan.logical import JoinEdge

__all__ = ["JoinTree", "best_join_order"]


@dataclass(frozen=True)
class JoinTree:
    """A binary join tree over aliases.

    Leaves have ``alias`` set; internal nodes have ``left``/``right`` and
    the edges connecting the two sides.
    """

    alias: str | None = None
    left: "JoinTree | None" = None
    right: "JoinTree | None" = None
    edges: tuple[JoinEdge, ...] = ()
    rows: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.alias is not None

    def aliases(self) -> tuple[str, ...]:
        if self.is_leaf:
            return (self.alias,)
        return self.left.aliases() + self.right.aliases()


def best_join_order(
    base_rows: dict[str, float],
    edges: list[JoinEdge],
    edge_selectivity,
) -> JoinTree:
    """Find the cheapest (C_out) bushy join order.

    ``base_rows`` maps alias -> estimated scan output rows;
    ``edge_selectivity`` maps a :class:`JoinEdge` to its selectivity.
    """
    aliases = sorted(base_rows)
    if not aliases:
        raise OptimizerError("no relations to join")
    index_of = {alias: i for i, alias in enumerate(aliases)}

    def edge_mask(edge: JoinEdge) -> int:
        return (1 << index_of[edge.left_alias]) | (1 << index_of[edge.right_alias])

    # best[mask] = (cost, rows, tree)
    best: dict[int, tuple[float, float, JoinTree]] = {}
    for alias in aliases:
        mask = 1 << index_of[alias]
        rows = base_rows[alias]
        best[mask] = (0.0, rows, JoinTree(alias=alias, rows=rows))

    full_mask = (1 << len(aliases)) - 1
    if full_mask == 1:
        return best[1][2]

    edge_masks = [(edge, edge_mask(edge)) for edge in edges]

    for size in range(2, len(aliases) + 1):
        for mask in _subsets_of_size(full_mask, size):
            candidate: tuple[float, float, JoinTree] | None = None
            submask = (mask - 1) & mask
            while submask > 0:
                other = mask ^ submask
                # Enumerate each unordered split once.
                if submask < other:
                    submask = (submask - 1) & mask
                    continue
                if submask in best and other in best:
                    connecting = [
                        edge
                        for edge, em in edge_masks
                        if (em & submask) and (em & other) and (em & ~mask) == 0
                    ]
                    if connecting:
                        candidate = _consider(
                            candidate, best[submask], best[other], connecting,
                            edge_selectivity,
                        )
                submask = (submask - 1) & mask
            if candidate is not None:
                best[mask] = candidate

    if full_mask in best:
        return best[full_mask][2]
    return _connect_components(best, full_mask, aliases)


def _consider(current, left_entry, right_entry, connecting, edge_selectivity):
    left_cost, left_rows, left_tree = left_entry
    right_cost, right_rows, right_tree = right_entry
    selectivity = 1.0
    for edge in connecting:
        selectivity *= edge_selectivity(edge)
    rows = max(left_rows * right_rows * selectivity, 1.0)
    cost = left_cost + right_cost + rows
    if current is not None and current[0] <= cost:
        return current
    # Put the smaller side on the right (build side convention).
    if right_rows > left_rows:
        left_tree, right_tree = right_tree, left_tree
    tree = JoinTree(left=left_tree, right=right_tree, edges=tuple(connecting), rows=rows)
    return (cost, rows, tree)


def _subsets_of_size(full_mask: int, size: int):
    """All submasks of ``full_mask`` with ``size`` bits set."""
    n = full_mask.bit_length()
    # Gosper's hack over n-bit integers, filtered to submasks of full_mask.
    subset = (1 << size) - 1
    limit = 1 << n
    while subset < limit:
        if (subset & full_mask) == subset:
            yield subset
        # next subset with same popcount
        c = subset & -subset
        r = subset + c
        subset = (((r ^ subset) >> 2) // c) | r


def _connect_components(best, full_mask, aliases):
    """Cross-join the best trees of disconnected components."""
    remaining = full_mask
    parts: list[tuple[float, float, JoinTree]] = []
    # Greedily extract the largest solved masks.
    solved = sorted(best, key=lambda m: -bin(m).count("1"))
    for mask in solved:
        if mask & remaining == mask:
            parts.append(best[mask])
            remaining &= ~mask
        if remaining == 0:
            break
    if remaining != 0:
        raise OptimizerError(f"could not cover aliases {aliases} with join trees")
    parts.sort(key=lambda entry: entry[1], reverse=True)
    cost, rows, tree = parts[0]
    for part_cost, part_rows, part_tree in parts[1:]:
        rows = max(rows * part_rows, 1.0)
        cost += part_cost + rows
        tree = JoinTree(left=tree, right=part_tree, edges=(), rows=rows)
    return tree
