"""Physical plan construction: the cost-based optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OptimizerError
from ..plan.logical import BoundQuery, bind_query
from ..plan.physical import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    NestLoopJoinNode,
    PlanNode,
    SeqScanNode,
    SortNode,
    assign_op_ids,
)
from ..sql.parser import parse_query
from ..storage import Database
from .cardinality import CardinalityEstimator
from .cost_model import CostModel
from .join_order import JoinTree, best_join_order

__all__ = ["OptimizerConfig", "PlannedQuery", "Optimizer"]

#: Selectivity applied per non-equi cross-table comparison.
CROSS_FILTER_SELECTIVITY = 1.0 / 3.0


@dataclass
class OptimizerConfig:
    """Tunables for physical plan selection."""

    #: use an index scan when the indexed predicate selects less than this
    index_scan_threshold: float = 0.15
    #: use a nested-loop join when the inner (build) side is at most this big
    nestloop_max_inner_rows: float = 64.0
    enable_index_scans: bool = True


@dataclass
class PlannedQuery:
    """The optimizer's output: a physical plan plus planning metadata."""

    root: PlanNode
    bound: BoundQuery
    database: Database
    alias_tables: dict[str, str]
    alias_rows: dict[str, int]
    est_cards: dict[int, float] = field(default_factory=dict)

    def leaf_row_product(self, node: PlanNode) -> float:
        """``prod |R|`` over the leaf tables of ``node`` (Eq. 3 denominator)."""
        product = 1.0
        for alias in node.leaf_aliases():
            product *= self.alias_rows[alias]
        return product

    def est_selectivity(self, node: PlanNode) -> float:
        """The optimizer's selectivity estimate X = M / prod|R| for a node."""
        return self.est_cards[node.op_id] / max(self.leaf_row_product(node), 1.0)

    def explain(self) -> str:
        return self.root.pretty()


class Optimizer:
    """Builds physical plans: scans -> DP join order -> joins -> agg/sort."""

    def __init__(self, database: Database, config: OptimizerConfig | None = None):
        self._db = database
        self._config = config or OptimizerConfig()
        self._cardinality = CardinalityEstimator(database)
        self._cost_model = CostModel(database)

    @property
    def cardinality(self) -> CardinalityEstimator:
        return self._cardinality

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    # ------------------------------------------------------------------
    def plan_sql(self, sql: str) -> PlannedQuery:
        """Parse, bind, and optimize a SQL string."""
        return self.plan(bind_query(parse_query(sql), self._db))

    def plan(self, bound: BoundQuery) -> PlannedQuery:
        """Build the physical plan for a bound query."""
        est_cards: dict[PlanNode, float] = {}

        scans: dict[str, PlanNode] = {}
        for alias, table_name in bound.tables.items():
            node, rows = self._build_scan(alias, table_name, bound)
            scans[alias] = node
            est_cards[node] = rows

        root = self._build_join_tree(bound, scans, est_cards)

        if bound.cross_filters:
            selectivity = CROSS_FILTER_SELECTIVITY ** len(bound.cross_filters)
            filtered = FilterNode(
                compare_predicates=list(bound.cross_filters), children=[root]
            )
            est_cards[filtered] = max(est_cards[root] * selectivity, 1.0)
            root = filtered

        if bound.has_aggregates:
            root = self._build_aggregate(bound, root, est_cards)

        if bound.order_by:
            sort = SortNode(keys=list(bound.order_by), children=[root])
            est_cards[sort] = est_cards[root]
            root = sort

        if bound.limit is not None:
            limit = LimitNode(count=bound.limit, children=[root])
            est_cards[limit] = min(est_cards[root], bound.limit)
            root = limit

        assign_op_ids(root)
        by_id = {node.op_id: est_cards[node] for node in root.walk()}
        for node in root.walk():
            node.est_rows = by_id[node.op_id]

        alias_rows = {
            alias: self._db.table_stats(table).num_rows
            for alias, table in bound.tables.items()
        }
        return PlannedQuery(
            root=root,
            bound=bound,
            database=self._db,
            alias_tables=dict(bound.tables),
            alias_rows=alias_rows,
            est_cards=by_id,
        )

    # -- scans ------------------------------------------------------------
    def _build_scan(
        self, alias: str, table_name: str, bound: BoundQuery
    ) -> tuple[PlanNode, float]:
        predicates = bound.scan_predicates.get(alias, [])
        total_rows = self._db.table_stats(table_name).num_rows
        out_rows = self._cardinality.scan_rows(table_name, predicates)

        index_choice = None
        if self._config.enable_index_scans:
            index_choice = self._pick_index_predicate(table_name, predicates)
        if index_choice is not None:
            index_predicate, index_selectivity = index_choice
            remaining = [p for p in predicates if p is not index_predicate]
            node = IndexScanNode(
                table=table_name,
                alias=alias,
                index_column=index_predicate.column,
                index_predicate=index_predicate,
                predicates=remaining,
            )
            fetched_est = max(index_selectivity * total_rows, 1.0)
            node.index_fetch_factor = max(fetched_est / out_rows, 1.0)
            return node, out_rows
        return (
            SeqScanNode(table=table_name, alias=alias, predicates=predicates),
            out_rows,
        )

    def _pick_index_predicate(self, table_name: str, predicates):
        """The most selective indexed range predicate under the threshold."""
        best = None
        for predicate in predicates:
            if not predicate.is_range:
                continue
            if not self._db.has_index(table_name, predicate.column):
                continue
            selectivity = self._cardinality.predicate_selectivity(
                table_name, predicate
            )
            if selectivity > self._config.index_scan_threshold:
                continue
            if best is None or selectivity < best[1]:
                best = (predicate, selectivity)
        return best

    # -- joins ---------------------------------------------------------
    def _build_join_tree(
        self,
        bound: BoundQuery,
        scans: dict[str, PlanNode],
        est_cards: dict[PlanNode, float],
    ) -> PlanNode:
        if len(scans) == 1:
            return next(iter(scans.values()))

        base_rows = {alias: est_cards[node] for alias, node in scans.items()}
        tree = best_join_order(
            base_rows,
            bound.join_edges,
            lambda edge: self._cardinality.join_edge_selectivity(
                edge, bound.tables
            ),
        )
        return self._materialize_join_tree(tree, scans, est_cards)

    def _materialize_join_tree(
        self,
        tree: JoinTree,
        scans: dict[str, PlanNode],
        est_cards: dict[PlanNode, float],
    ) -> PlanNode:
        if tree.is_leaf:
            return scans[tree.alias]
        left = self._materialize_join_tree(tree.left, scans, est_cards)
        right = self._materialize_join_tree(tree.right, scans, est_cards)
        left_aliases = set(tree.left.aliases())

        keys: list[tuple[str, str]] = []
        for edge in tree.edges:
            if edge.left_alias in left_aliases:
                keys.append(
                    (
                        f"{edge.left_alias}.{edge.left_column}",
                        f"{edge.right_alias}.{edge.right_column}",
                    )
                )
            else:
                keys.append(
                    (
                        f"{edge.right_alias}.{edge.right_column}",
                        f"{edge.left_alias}.{edge.left_column}",
                    )
                )

        inner_rows = est_cards[right]
        if not keys or inner_rows <= self._config.nestloop_max_inner_rows:
            node: PlanNode = NestLoopJoinNode(keys=keys, children=[left, right])
        else:
            node = HashJoinNode(keys=keys, children=[left, right])
        est_cards[node] = tree.rows
        return node

    # -- aggregates -----------------------------------------------------
    def _build_aggregate(
        self,
        bound: BoundQuery,
        child: PlanNode,
        est_cards: dict[PlanNode, float],
    ) -> PlanNode:
        node = AggregateNode(
            group_keys=list(bound.group_keys),
            aggregates=list(bound.aggregates),
            children=[child],
        )
        ndvs = []
        for key in bound.group_keys:
            alias, column = key.split(".", 1)
            if alias not in bound.tables:
                raise OptimizerError(f"group key {key!r} references unknown alias")
            ndvs.append(self._cardinality.column_ndv(bound.tables[alias], column))
        est_cards[node] = self._cardinality.group_count(ndvs, est_cards[child])
        return node
