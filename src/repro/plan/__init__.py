"""Logical binding and physical plan representation."""

from .expressions import AggSpec, ScalarExpr, compile_scalar
from .logical import BoundQuery, JoinEdge, bind_query
from .physical import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MaterializeNode,
    MergeJoinNode,
    NestLoopJoinNode,
    OpKind,
    PlanNode,
    SeqScanNode,
    SortNode,
    assign_op_ids,
    plan_nodes,
)
from .predicates import (
    ColumnComparePredicate,
    ColumnPairScanPredicate,
    PredicateKind,
    ScanPredicate,
)

__all__ = [
    "BoundQuery",
    "JoinEdge",
    "bind_query",
    "AggSpec",
    "ScalarExpr",
    "compile_scalar",
    "PredicateKind",
    "ScanPredicate",
    "ColumnComparePredicate",
    "ColumnPairScanPredicate",
    "OpKind",
    "PlanNode",
    "SeqScanNode",
    "IndexScanNode",
    "FilterNode",
    "HashJoinNode",
    "MergeJoinNode",
    "NestLoopJoinNode",
    "SortNode",
    "AggregateNode",
    "MaterializeNode",
    "LimitNode",
    "assign_op_ids",
    "plan_nodes",
]
