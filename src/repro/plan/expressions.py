"""Compiled scalar expressions evaluated over qualified column arrays."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlanError
from ..sql.ast import Arith, ColumnRef, Literal

__all__ = ["ScalarExpr", "compile_scalar", "AggSpec"]


@dataclass(frozen=True)
class ScalarExpr:
    """An executable scalar expression tree.

    ``node`` is one of:
      * ``("col", qualified_name)``
      * ``("lit", value)``
      * ``("arith", op, left_node, right_node)``
    """

    node: tuple

    def evaluate(self, env: dict[str, np.ndarray], num_rows: int) -> np.ndarray:
        return _eval(self.node, env, num_rows)

    @property
    def columns(self) -> tuple[str, ...]:
        """All qualified column names referenced by the expression."""
        found: list[str] = []
        _collect_columns(self.node, found)
        return tuple(found)

    @property
    def num_ops(self) -> int:
        """Arithmetic operations per row (drives the ``co`` cost unit)."""
        return _count_ops(self.node)


def _eval(node: tuple, env: dict[str, np.ndarray], num_rows: int) -> np.ndarray:
    tag = node[0]
    if tag == "col":
        try:
            return env[node[1]]
        except KeyError:
            raise PlanError(f"column not in scope: {node[1]}") from None
    if tag == "lit":
        return np.full(num_rows, node[1])
    if tag == "arith":
        _, op, left, right = node
        a = _eval(left, env, num_rows)
        b = _eval(right, env, num_rows)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a / b
    raise PlanError(f"bad expression node: {node!r}")


def _collect_columns(node: tuple, out: list[str]) -> None:
    if node[0] == "col":
        out.append(node[1])
    elif node[0] == "arith":
        _collect_columns(node[2], out)
        _collect_columns(node[3], out)


def _count_ops(node: tuple) -> int:
    if node[0] == "arith":
        return 1 + _count_ops(node[2]) + _count_ops(node[3])
    return 0


def compile_scalar(expression, resolver) -> ScalarExpr:
    """Compile a SQL scalar AST into a :class:`ScalarExpr`.

    ``resolver`` maps a :class:`~repro.sql.ast.ColumnRef` to its qualified
    name ``"alias.column"``.
    """
    return ScalarExpr(node=_compile(expression, resolver))


def _compile(expression, resolver) -> tuple:
    if isinstance(expression, ColumnRef):
        return ("col", resolver(expression))
    if isinstance(expression, Literal):
        return ("lit", expression.value)
    if isinstance(expression, Arith):
        return (
            "arith",
            expression.op,
            _compile(expression.left, resolver),
            _compile(expression.right, resolver),
        )
    raise PlanError(f"unsupported scalar expression: {expression!r}")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: FUNC(expression) AS output_name."""

    func: str  # COUNT | SUM | AVG | MIN | MAX
    argument: ScalarExpr | None  # None = COUNT(*)
    output_name: str
    distinct: bool = False

    @property
    def num_ops(self) -> int:
        ops = 1  # the accumulation itself
        if self.argument is not None:
            ops += self.argument.num_ops
        return ops
