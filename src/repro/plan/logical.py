"""Binding: resolve a parsed query against a database into logical form.

The bound query is the optimizer's input: per-alias scan predicates, the
equijoin graph, residual cross-table filters, and the aggregate /
projection spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError
from ..sql.ast import (
    AggCall,
    Between,
    ColumnRef,
    Comparison,
    InList,
    LikePrefix,
    Literal,
    Query,
)
from ..storage import Database
from .expressions import AggSpec, ScalarExpr, compile_scalar
from .predicates import (
    ColumnComparePredicate,
    ColumnPairScanPredicate,
    PredicateKind,
    ScanPredicate,
)

__all__ = ["JoinEdge", "BoundQuery", "bind_query"]


@dataclass(frozen=True)
class JoinEdge:
    """An equijoin predicate between two aliases."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def touches(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass
class BoundQuery:
    """A query resolved against a catalog, ready for optimization."""

    tables: dict[str, str]  # alias -> table name
    scan_predicates: dict[str, list[ScanPredicate]]
    join_edges: list[JoinEdge]
    cross_filters: list[ColumnComparePredicate]
    group_keys: list[str] = field(default_factory=list)  # qualified names
    aggregates: list[AggSpec] = field(default_factory=list)
    projections: list[tuple[str, ScalarExpr]] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None
    select_star: bool = False

    @property
    def aliases(self) -> list[str]:
        return list(self.tables)

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates) or bool(self.group_keys)


_OP_KIND = {
    "=": PredicateKind.EQ,
    "<>": PredicateKind.NE,
    "<": PredicateKind.LT,
    "<=": PredicateKind.LE,
    ">": PredicateKind.GT,
    ">=": PredicateKind.GE,
}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


class _Resolver:
    """Maps column references to ``(alias, column)`` pairs."""

    def __init__(self, query: Query, database: Database):
        self._by_alias: dict[str, set[str]] = {}
        self.tables: dict[str, str] = {}
        for ref in query.tables:
            alias = ref.effective_name
            if alias in self.tables:
                raise PlanError(f"duplicate table alias: {alias!r}")
            table = database.table(ref.table)
            self.tables[alias] = ref.table
            self._by_alias[alias] = set(table.schema.names)

    def resolve(self, ref: ColumnRef) -> tuple[str, str]:
        if ref.qualifier is not None:
            if ref.qualifier not in self._by_alias:
                raise PlanError(f"unknown table alias: {ref.qualifier!r}")
            if ref.name not in self._by_alias[ref.qualifier]:
                raise PlanError(f"unknown column: {ref}")
            return ref.qualifier, ref.name
        owners = [a for a, cols in self._by_alias.items() if ref.name in cols]
        if not owners:
            raise PlanError(f"unknown column: {ref.name!r}")
        if len(owners) > 1:
            raise PlanError(f"ambiguous column: {ref.name!r} (in {owners})")
        return owners[0], ref.name

    def qualified(self, ref: ColumnRef) -> str:
        alias, column = self.resolve(ref)
        return f"{alias}.{column}"


def bind_query(query: Query, database: Database) -> BoundQuery:
    """Resolve ``query`` against ``database``."""
    resolver = _Resolver(query, database)
    scan_predicates: dict[str, list[ScanPredicate]] = {
        alias: [] for alias in resolver.tables
    }
    join_edges: list[JoinEdge] = []
    cross_filters: list[ColumnComparePredicate] = []

    for predicate in query.predicates:
        _bind_predicate(predicate, resolver, scan_predicates, join_edges, cross_filters)

    group_keys = [resolver.qualified(ref) for ref in query.group_by]

    aggregates: list[AggSpec] = []
    projections: list[tuple[str, ScalarExpr]] = []
    for position, item in enumerate(query.select):
        expression = item.expression
        if isinstance(expression, AggCall):
            name = item.alias or f"{expression.func.lower()}_{position}"
            argument = None
            if expression.argument is not None:
                argument = compile_scalar(expression.argument, resolver.qualified)
            aggregates.append(
                AggSpec(
                    func=expression.func,
                    argument=argument,
                    output_name=name,
                    distinct=expression.distinct,
                )
            )
        else:
            compiled = compile_scalar(expression, resolver.qualified)
            if isinstance(expression, ColumnRef):
                name = item.alias or resolver.qualified(expression)
            else:
                name = item.alias or f"expr_{position}"
            projections.append((name, compiled))

    if aggregates and projections:
        # Plain columns alongside aggregates must be group keys.
        for name, compiled in projections:
            for column in compiled.columns:
                if column not in group_keys:
                    raise PlanError(
                        f"non-aggregated column {column!r} requires GROUP BY"
                    )

    order_by = [
        (resolver.qualified(item.expression), item.descending)
        for item in query.order_by
    ]

    return BoundQuery(
        tables=resolver.tables,
        scan_predicates=scan_predicates,
        join_edges=join_edges,
        cross_filters=cross_filters,
        group_keys=group_keys,
        aggregates=aggregates,
        projections=projections,
        order_by=order_by,
        limit=query.limit,
        select_star=query.select_star,
    )


def _bind_predicate(predicate, resolver, scan_predicates, join_edges, cross_filters):
    if isinstance(predicate, Comparison):
        left_alias, left_column = resolver.resolve(predicate.left)
        if isinstance(predicate.right, ColumnRef):
            right_alias, right_column = resolver.resolve(predicate.right)
            if left_alias == right_alias:
                scan_predicates[left_alias].append(
                    ColumnPairScanPredicate(
                        alias=left_alias,
                        left_column=left_column,
                        op=_OP_KIND[predicate.op],
                        right_column=right_column,
                    )
                )
                return
            if predicate.op == "=":
                join_edges.append(
                    JoinEdge(left_alias, left_column, right_alias, right_column)
                )
            else:
                cross_filters.append(
                    ColumnComparePredicate(
                        left_alias,
                        left_column,
                        _OP_KIND[predicate.op],
                        right_alias,
                        right_column,
                    )
                )
            return
        if not isinstance(predicate.right, Literal):
            raise PlanError(f"unsupported comparison operand: {predicate.right!r}")
        scan_predicates[left_alias].append(
            ScanPredicate(
                alias=left_alias,
                column=left_column,
                kind=_OP_KIND[predicate.op],
                values=(predicate.right.value,),
            )
        )
        return
    if isinstance(predicate, Between):
        alias, column = resolver.resolve(predicate.column)
        scan_predicates[alias].append(
            ScanPredicate(
                alias=alias,
                column=column,
                kind=PredicateKind.BETWEEN,
                values=(predicate.low.value, predicate.high.value),
            )
        )
        return
    if isinstance(predicate, InList):
        alias, column = resolver.resolve(predicate.column)
        scan_predicates[alias].append(
            ScanPredicate(
                alias=alias,
                column=column,
                kind=PredicateKind.IN,
                values=tuple(v.value for v in predicate.values),
            )
        )
        return
    if isinstance(predicate, LikePrefix):
        alias, column = resolver.resolve(predicate.column)
        scan_predicates[alias].append(
            ScanPredicate(
                alias=alias,
                column=column,
                kind=PredicateKind.PREFIX,
                values=(predicate.prefix,),
            )
        )
        return
    raise PlanError(f"unsupported predicate: {predicate!r}")
