"""Physical plan trees.

Every node carries an ``op_id`` (postorder-assigned), its children, and
the optimizer's row estimate. The uncertainty-aware predictor keys its
per-operator selectivity variables by ``op_id``; the paper's
``Desc(O)`` relation is the tree's ancestor/descendant relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import PlanError
from .expressions import AggSpec
from .predicates import ColumnComparePredicate, ScanPredicate

__all__ = [
    "OpKind",
    "PlanNode",
    "SeqScanNode",
    "IndexScanNode",
    "FilterNode",
    "HashJoinNode",
    "MergeJoinNode",
    "NestLoopJoinNode",
    "SortNode",
    "AggregateNode",
    "MaterializeNode",
    "LimitNode",
    "assign_op_ids",
    "plan_nodes",
]


class OpKind(Enum):
    SEQ_SCAN = "SeqScan"
    INDEX_SCAN = "IndexScan"
    FILTER = "Filter"
    HASH_JOIN = "HashJoin"
    MERGE_JOIN = "MergeJoin"
    NESTLOOP_JOIN = "NestLoopJoin"
    SORT = "Sort"
    AGGREGATE = "Aggregate"
    MATERIALIZE = "Materialize"
    LIMIT = "Limit"


@dataclass(eq=False)
class PlanNode:
    """Base class for physical operators."""

    children: list["PlanNode"] = field(default_factory=list, kw_only=True)
    op_id: int = field(default=-1, kw_only=True)
    est_rows: float = field(default=0.0, kw_only=True)

    kind: OpKind = field(init=False, repr=False, default=None)  # type: ignore

    # -- tree structure ------------------------------------------------
    @property
    def left(self) -> "PlanNode":
        return self.children[0]

    @property
    def right(self) -> "PlanNode":
        if len(self.children) < 2:
            raise PlanError(f"{self.kind} has no right child")
        return self.children[1]

    @property
    def is_join(self) -> bool:
        return self.kind in (
            OpKind.HASH_JOIN,
            OpKind.MERGE_JOIN,
            OpKind.NESTLOOP_JOIN,
        )

    @property
    def is_scan(self) -> bool:
        return self.kind in (OpKind.SEQ_SCAN, OpKind.INDEX_SCAN)

    def leaf_aliases(self) -> tuple[str, ...]:
        """Aliases of all base tables in this subtree, in leaf order."""
        if self.is_scan:
            return (self.alias,)  # type: ignore[attr-defined]
        result: list[str] = []
        for child in self.children:
            result.extend(child.leaf_aliases())
        return tuple(result)

    def walk(self):
        """Postorder traversal of the subtree."""
        for child in self.children:
            yield from child.walk()
        yield self

    # -- presentation ----------------------------------------------------
    def label(self) -> str:
        return self.kind.value

    def pretty(self, indent: int = 0) -> str:
        lines = [" " * indent + f"{self.label()}  [op {self.op_id}, ~{self.est_rows:.0f} rows]"]
        for child in self.children:
            lines.append(child.pretty(indent + 2))
        return "\n".join(lines)


@dataclass(eq=False)
class SeqScanNode(PlanNode):
    table: str = ""
    alias: str = ""
    predicates: list[ScanPredicate] = field(default_factory=list)

    def __post_init__(self):
        self.kind = OpKind.SEQ_SCAN

    def label(self) -> str:
        return f"SeqScan({self.alias}:{self.table})"


@dataclass(eq=False)
class IndexScanNode(PlanNode):
    table: str = ""
    alias: str = ""
    index_column: str = ""
    #: predicate served by the index
    index_predicate: ScanPredicate | None = None
    #: remaining predicates applied while scanning
    predicates: list[ScanPredicate] = field(default_factory=list)

    def __post_init__(self):
        self.kind = OpKind.INDEX_SCAN

    def label(self) -> str:
        return f"IndexScan({self.alias}:{self.table} on {self.index_column})"


@dataclass(eq=False)
class FilterNode(PlanNode):
    scan_predicates: list[ScanPredicate] = field(default_factory=list)
    compare_predicates: list[ColumnComparePredicate] = field(default_factory=list)

    def __post_init__(self):
        self.kind = OpKind.FILTER


@dataclass(eq=False)
class _JoinBase(PlanNode):
    #: equijoin key pairs as qualified names: (left, right)
    keys: list[tuple[str, str]] = field(default_factory=list)

    def label(self) -> str:
        conds = ", ".join(f"{l} = {r}" for l, r in self.keys)
        return f"{self.kind.value}({conds})"


@dataclass(eq=False)
class HashJoinNode(_JoinBase):
    def __post_init__(self):
        self.kind = OpKind.HASH_JOIN


@dataclass(eq=False)
class MergeJoinNode(_JoinBase):
    def __post_init__(self):
        self.kind = OpKind.MERGE_JOIN


@dataclass(eq=False)
class NestLoopJoinNode(_JoinBase):
    def __post_init__(self):
        self.kind = OpKind.NESTLOOP_JOIN


@dataclass(eq=False)
class SortNode(PlanNode):
    #: (qualified column, descending) pairs
    keys: list[tuple[str, bool]] = field(default_factory=list)

    def __post_init__(self):
        self.kind = OpKind.SORT


@dataclass(eq=False)
class AggregateNode(PlanNode):
    group_keys: list[str] = field(default_factory=list)
    aggregates: list[AggSpec] = field(default_factory=list)

    def __post_init__(self):
        self.kind = OpKind.AGGREGATE

    def label(self) -> str:
        funcs = ", ".join(spec.output_name for spec in self.aggregates)
        keys = ", ".join(self.group_keys)
        return f"Aggregate([{keys}] -> {funcs})"


@dataclass(eq=False)
class MaterializeNode(PlanNode):
    def __post_init__(self):
        self.kind = OpKind.MATERIALIZE


@dataclass(eq=False)
class LimitNode(PlanNode):
    count: int = 0

    def __post_init__(self):
        self.kind = OpKind.LIMIT


def assign_op_ids(root: PlanNode) -> PlanNode:
    """Assign postorder op ids (0..n-1) to every node; return ``root``."""
    for position, node in enumerate(root.walk()):
        node.op_id = position
    return root


def plan_nodes(root: PlanNode) -> list[PlanNode]:
    """All nodes in postorder (index == op_id once ids are assigned)."""
    return list(root.walk())
