"""Compiled predicates: executable filters with cost-model metadata."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..errors import PlanError

__all__ = [
    "PredicateKind",
    "ScanPredicate",
    "ColumnPairScanPredicate",
    "ColumnComparePredicate",
]


class PredicateKind(Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"
    IN = "in"
    PREFIX = "prefix"


_COMPARE = {
    PredicateKind.EQ: lambda a, v: a == v,
    PredicateKind.NE: lambda a, v: a != v,
    PredicateKind.LT: lambda a, v: a < v,
    PredicateKind.LE: lambda a, v: a <= v,
    PredicateKind.GT: lambda a, v: a > v,
    PredicateKind.GE: lambda a, v: a >= v,
}


@dataclass(frozen=True)
class ScanPredicate:
    """A single-column predicate, evaluable over a numpy column."""

    alias: str
    column: str
    kind: PredicateKind
    values: tuple

    def mask(self, array: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate."""
        if self.kind in _COMPARE:
            return _COMPARE[self.kind](array, self.values[0])
        if self.kind is PredicateKind.BETWEEN:
            low, high = self.values
            return (array >= low) & (array <= high)
        if self.kind is PredicateKind.IN:
            mask = np.zeros(len(array), dtype=bool)
            for value in self.values:
                mask |= array == value
            return mask
        if self.kind is PredicateKind.PREFIX:
            return np.char.startswith(array.astype(str), self.values[0])
        raise PlanError(f"unknown predicate kind: {self.kind}")

    @property
    def num_ops(self) -> int:
        """Primitive comparisons per tuple (drives the ``co`` cost unit)."""
        if self.kind is PredicateKind.BETWEEN:
            return 2
        if self.kind is PredicateKind.IN:
            return len(self.values)
        return 1

    @property
    def is_range(self) -> bool:
        """True when a sorted index can serve this predicate."""
        return self.kind in (
            PredicateKind.EQ,
            PredicateKind.LT,
            PredicateKind.LE,
            PredicateKind.GT,
            PredicateKind.GE,
            PredicateKind.BETWEEN,
        )

    def range_bounds(self) -> tuple:
        """``(low, high)`` bounds for index lookups (None = unbounded)."""
        if self.kind is PredicateKind.EQ:
            return self.values[0], self.values[0]
        if self.kind is PredicateKind.BETWEEN:
            return self.values
        if self.kind in (PredicateKind.LT, PredicateKind.LE):
            return None, self.values[0]
        if self.kind in (PredicateKind.GT, PredicateKind.GE):
            return self.values[0], None
        raise PlanError(f"predicate {self.kind} has no range bounds")

    def __str__(self) -> str:
        return f"{self.alias}.{self.column} {self.kind.value} {self.values}"


@dataclass(frozen=True)
class ColumnPairScanPredicate:
    """A same-table column comparison, e.g. ``l_commitdate < l_receiptdate``."""

    alias: str
    left_column: str
    op: PredicateKind
    right_column: str

    def mask(self, left_array: np.ndarray, right_array: np.ndarray) -> np.ndarray:
        if self.op not in _COMPARE:
            raise PlanError(f"unsupported column-pair comparison: {self.op}")
        return _COMPARE[self.op](left_array, right_array)

    @property
    def num_ops(self) -> int:
        return 1

    @property
    def is_range(self) -> bool:
        return False

    def __str__(self) -> str:
        return (
            f"{self.alias}.{self.left_column} {self.op.value} "
            f"{self.alias}.{self.right_column}"
        )


@dataclass(frozen=True)
class ColumnComparePredicate:
    """A non-equijoin comparison between columns of two inputs."""

    left_alias: str
    left_column: str
    op: PredicateKind
    right_alias: str
    right_column: str

    def mask(self, left_array: np.ndarray, right_array: np.ndarray) -> np.ndarray:
        if self.op not in _COMPARE:
            raise PlanError(f"unsupported column comparison: {self.op}")
        return _COMPARE[self.op](left_array, right_array)

    @property
    def num_ops(self) -> int:
        return 1

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} {self.op.value} "
            f"{self.right_alias}.{self.right_column}"
        )
