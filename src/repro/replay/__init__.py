"""Workload replay and load generation for the serving stack.

The paper's headline claim is that uncertainty-aware predictions stay
calibrated under realistic *workloads*, not just on isolated queries
(Section 6.3.4). This package is the machinery that drives the serving
front door (:class:`repro.api.Session`, or a live ``repro serve``
endpoint) with sustained, mixed, multi-tenant traffic and measures what
comes back:

* :class:`WorkloadMix` — composable, weighted traffic mixes over the
  TPC-H templates and the MICRO benchmark, with optional per-component
  prediction fan-out (variants × multiprogramming levels × confidence
  levels) and bounded parameter pools for dashboard-style repetition;
* :mod:`repro.replay.arrival` — seeded open-loop arrival processes
  (Poisson, bursty on/off, uniform) and the closed-loop model
  (N concurrent clients with think time);
* :func:`build_schedule` — a **deterministic** request schedule: same
  seed + mix + arrival model ⇒ the identical sequence of (time, client,
  SQL, fan-out) requests, pinned by :meth:`ReplaySchedule.fingerprint`;
* :mod:`repro.replay.targets` — the drive targets: an in-process
  :class:`~repro.api.Session`, a live HTTP endpoint via
  :class:`~repro.api.HttpClient`, or a wire-app stack (admission gate
  included) via :class:`WireAppTarget`;
* :class:`ReplayRunner` — executes a schedule open- or closed-loop and
  collects per-request observations;
* :class:`ReplayReport` — throughput, p50/p95/p99 latency, error/503
  rates, the cache-hit trajectory, per-tenant breakdowns and
  deadline-miss rates (``docs/scheduling.md``), and
  prediction-uncertainty calibration measured *under load* against an
  idle baseline.

* :func:`run_feedback_loop` — the replayed v2 feedback loop:
  sequential predict -> simulated-ground-truth observe, with an
  optional mid-replay hardware shift, yielding a
  :class:`DriftTrajectory` of online-vs-static interval coverage.

``repro replay`` is the CLI entry point (see ``docs/replay.md``).
"""

from .arrival import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoop,
    PoissonArrivals,
    UniformArrivals,
    parse_arrival,
)
from .feedback import (
    DriftTrajectory,
    FeedbackPoint,
    run_feedback_loop,
    simulated_actuals,
)
from .mix import MIX_PRESETS, MixComponent, WorkloadMix, parse_mix
from .report import (
    CalibrationSummary,
    LatencySummary,
    ReplayReport,
    TenantSummary,
)
from .runner import Observation, ReplayRunner, ReplayRun
from .schedule import ReplaySchedule, ScheduledRequest, build_schedule
from .targets import (
    HttpTarget,
    InProcessTarget,
    ReplayTarget,
    WireAppTarget,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "CalibrationSummary",
    "ClosedLoop",
    "DriftTrajectory",
    "FeedbackPoint",
    "HttpTarget",
    "InProcessTarget",
    "LatencySummary",
    "MIX_PRESETS",
    "MixComponent",
    "Observation",
    "PoissonArrivals",
    "ReplayReport",
    "ReplayRun",
    "ReplayRunner",
    "ReplaySchedule",
    "ReplayTarget",
    "ScheduledRequest",
    "TenantSummary",
    "UniformArrivals",
    "WireAppTarget",
    "WorkloadMix",
    "build_schedule",
    "parse_arrival",
    "parse_mix",
    "run_feedback_loop",
    "simulated_actuals",
]
