"""Load models: open-loop arrival processes and the closed-loop model.

Open-loop models emit a fixed schedule of request arrival times that
does **not** react to the system under test — the standard way to
measure latency under a controlled offered load (and to surface
overload, since arrivals keep coming whether or not the server keeps
up). All processes draw from a caller-supplied seeded generator, so a
schedule is a pure function of (mix, arrival model, seed, duration).

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate;
* :class:`BurstyArrivals` — an on/off modulated Poisson process: the
  same average rate, concentrated into periodic bursts;
* :class:`UniformArrivals` — evenly spaced arrivals (the most gentle
  schedule with a given rate, useful as a control).

The closed-loop model (:class:`ClosedLoop`) is the opposite regime:
``clients`` concurrent clients each issue a request, wait for the
response, think for ``think_seconds``, and repeat — in-flight requests
are bounded by the client count by construction, which is what the
admission-control test leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ClosedLoop",
    "PoissonArrivals",
    "UniformArrivals",
    "parse_arrival",
]


class ArrivalProcess:
    """Base class: a deterministic generator of arrival-time offsets."""

    #: average offered load in requests per second (set by subclasses)
    rate: float

    def offsets(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        """Sorted arrival offsets (seconds) within ``[0, duration)``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``"poisson @ 20.0 req/s"``."""
        raise NotImplementedError

    @staticmethod
    def _check(rate: float) -> None:
        if not rate > 0:
            raise ReproError(f"arrival rate must be positive, got {rate}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps at ``rate``."""

    rate: float

    def __post_init__(self):
        self._check(self.rate)

    def offsets(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        """Draw gaps until the horizon is passed; O(rate * duration)."""
        expected = max(int(self.rate * duration * 1.5) + 16, 16)
        times: list[float] = []
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / self.rate, size=expected)
            for gap in gaps:
                t += float(gap)
                if t >= duration:
                    return np.array(times)
                times.append(t)

    def describe(self) -> str:
        return f"poisson @ {self.rate:g} req/s"


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` (a deterministic control)."""

    rate: float

    def __post_init__(self):
        self._check(self.rate)

    def offsets(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        count = int(np.floor(self.rate * duration))
        return np.arange(count) / self.rate

    def describe(self) -> str:
        return f"uniform @ {self.rate:g} req/s"


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson arrivals with the same *average* rate.

    Each ``period_seconds`` window spends ``on_fraction`` of its length
    in a burst. The burst rate is ``burst_factor`` times the quiet
    rate, and both are scaled so the long-run average equals ``rate`` —
    bursty and plain Poisson schedules of equal rate offer the same
    total load, concentrated differently.
    """

    rate: float
    burst_factor: float = 4.0
    period_seconds: float = 1.0
    on_fraction: float = 0.3

    def __post_init__(self):
        self._check(self.rate)
        if self.burst_factor < 1:
            raise ReproError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 < self.on_fraction < 1.0:
            raise ReproError(
                f"on_fraction must lie in (0, 1), got {self.on_fraction}"
            )
        if not self.period_seconds > 0:
            raise ReproError(
                f"period_seconds must be positive, got {self.period_seconds}"
            )

    def _phase_rates(self) -> tuple[float, float]:
        """(burst rate, quiet rate) preserving the average ``rate``."""
        quiet = self.rate / (
            self.on_fraction * self.burst_factor + (1.0 - self.on_fraction)
        )
        return quiet * self.burst_factor, quiet

    def offsets(self, rng: np.random.Generator, duration: float) -> np.ndarray:
        burst_rate, quiet_rate = self._phase_rates()
        on_len = self.period_seconds * self.on_fraction
        times: list[float] = []
        start = 0.0
        while start < duration:
            for phase_rate, phase_len in (
                (burst_rate, on_len),
                (quiet_rate, self.period_seconds - on_len),
            ):
                end = min(start + phase_len, duration)
                t = start
                while True:
                    t += float(rng.exponential(1.0 / phase_rate))
                    if t >= end:
                        break
                    times.append(t)
                start = end
                if start >= duration:
                    break
        return np.array(times)

    def describe(self) -> str:
        return (
            f"bursty @ {self.rate:g} req/s "
            f"(x{self.burst_factor:g} bursts, "
            f"{self.on_fraction:.0%} of each {self.period_seconds:g}s)"
        )


@dataclass(frozen=True)
class ClosedLoop:
    """The closed-loop model: N clients, think time, fixed request count.

    Each client serially issues ``requests_per_client`` requests,
    sleeping ``think_seconds`` between a response and the next request.
    In-flight concurrency is bounded by ``clients`` by construction.
    """

    clients: int
    requests_per_client: int = 10
    think_seconds: float = 0.0

    def __post_init__(self):
        if self.clients < 1:
            raise ReproError(f"need at least 1 client, got {self.clients}")
        if self.requests_per_client < 1:
            raise ReproError(
                f"need at least 1 request per client, "
                f"got {self.requests_per_client}"
            )
        if self.think_seconds < 0:
            raise ReproError(
                f"think_seconds must be >= 0, got {self.think_seconds}"
            )

    def describe(self) -> str:
        """``"closed-loop, 4 clients x 10 requests, think 0.05s"``."""
        return (
            f"closed-loop, {self.clients} clients x "
            f"{self.requests_per_client} requests, "
            f"think {self.think_seconds:g}s"
        )


def parse_arrival(spec: str) -> ArrivalProcess:
    """An arrival process from a CLI spec like ``"poisson:20"``.

    Forms: ``poisson:<rate>``, ``uniform:<rate>``,
    ``bursty:<rate>[:<burst_factor>[:<period>[:<on_fraction>]]]``.
    """
    name, _, rest = spec.strip().partition(":")
    parts = [p for p in rest.split(":") if p] if rest else []
    try:
        values = [float(p) for p in parts]
    except ValueError:
        raise ReproError(
            f"bad arrival spec {spec!r}: numeric parameters expected"
        ) from None
    if not values:
        raise ReproError(
            f"arrival spec {spec!r} needs a rate, e.g. 'poisson:20'"
        )
    if name == "poisson" and len(values) == 1:
        return PoissonArrivals(values[0])
    if name == "uniform" and len(values) == 1:
        return UniformArrivals(values[0])
    if name == "bursty" and len(values) <= 4:
        defaults = [None, 4.0, 1.0, 0.3]
        filled = values + defaults[len(values):]
        return BurstyArrivals(*filled)
    raise ReproError(
        f"unknown arrival spec {spec!r}; expected poisson:<rate>, "
        "uniform:<rate>, or bursty:<rate>[:factor[:period[:on_fraction]]]"
    )
