"""The replayed feedback loop: simulated ground truth, optional shift.

This module closes the loop the v2 observation API opens. It drives a
schedule *sequentially* against a target (in-process or HTTP), and
after every prediction feeds the simulated actual runtime back through
``observe`` — the same path a production deployment would use with real
runtimes. Ground truth comes from executing each plan once on the
session's database and pricing the resource counts on the calibrated
hardware simulator, exactly like
:func:`repro.replay.report.calibration_under_load`.

``shift_at`` injects a mid-replay hardware/load shift: from that
fraction of the schedule onward every actual runtime is multiplied by
``shift_factor``, modelling a machine that suddenly runs hotter (or a
co-located load stealing cycles) while the predictor's calibration
profile goes stale. The resulting :class:`DriftTrajectory` records,
point by point, whether the *online* (feedback-corrected) interval and
the *static* (untouched mirror session) interval covered the shifted
actual — the static mirror is the control arm, so recovery is
attributable to the feedback loop and not to the workload drifting
back on its own.

The loop is deliberately closed-loop and single-threaded: observation
order is the experiment's independent variable, and interleaving would
make the drift detector's firing point schedule-dependent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..api.session import Session
from ..api.wire import Observation as WireObservation
from ..api.wire import PredictRequest
from ..errors import ReproError
from ..executor import Executor
from ..feedback import DEFAULT_TENANT
from .schedule import ReplaySchedule
from .targets import ReplayTarget

__all__ = [
    "DriftTrajectory",
    "FeedbackPoint",
    "run_feedback_loop",
    "simulated_actuals",
]


@dataclass(frozen=True)
class FeedbackPoint:
    """One step of the replayed loop: predict, compare, observe."""

    index: int
    sql: str
    actual_seconds: float
    shifted: bool
    online_covered: bool | None
    static_covered: bool | None
    drift_detected: bool
    scale: float | None


@dataclass(frozen=True)
class DriftTrajectory:
    """The point-by-point record of one replayed feedback loop."""

    confidence: float
    shift_index: int | None
    shift_factor: float
    points: tuple[FeedbackPoint, ...]
    drifts_detected: int

    def coverage(
        self, start: int = 0, end: int | None = None, static: bool = False
    ) -> float | None:
        """Interval coverage over ``points[start:end]``; None if empty.

        ``static=True`` reads the control arm (the observation-free
        mirror) instead of the online target.
        """
        window = self.points[start:end]
        flags = [
            p.static_covered if static else p.online_covered
            for p in window
        ]
        flags = [flag for flag in flags if flag is not None]
        if not flags:
            return None
        return sum(flags) / len(flags)

    def post_shift_coverage(self, static: bool = False) -> float | None:
        """Coverage from the shift onward (whole run when no shift)."""
        start = self.shift_index if self.shift_index is not None else 0
        return self.coverage(start=start, static=static)

    def summary(self) -> dict:
        """A JSON-ready digest of the trajectory (for reports and CLI)."""
        return {
            "confidence": self.confidence,
            "points": len(self.points),
            "shift_index": self.shift_index,
            "shift_factor": self.shift_factor,
            "drifts_detected": self.drifts_detected,
            "pre_shift_coverage_online": self.coverage(end=self.shift_index),
            "pre_shift_coverage_static": self.coverage(
                end=self.shift_index, static=True
            ),
            "post_shift_coverage_online": self.post_shift_coverage(),
            "post_shift_coverage_static": self.post_shift_coverage(static=True),
            "recovery_observations": self.recovery_observations(),
        }

    def render(self) -> str:
        """Human-readable trajectory summary."""
        digest = self.summary()

        def pct(value):
            return "n/a" if value is None else f"{value:.1%}"

        lines = [
            f"feedback loop: {digest['points']} observations at "
            f"{self.confidence:.0%} confidence, "
            f"{digest['drifts_detected']} drift(s) detected",
        ]
        if self.shift_index is None:
            lines.append(
                f"coverage: online {pct(digest['post_shift_coverage_online'])}"
                f", static {pct(digest['post_shift_coverage_static'])}"
                " (no shift injected)"
            )
        else:
            recovery = digest["recovery_observations"]
            lines.append(
                f"shift at observation {self.shift_index} "
                f"(actuals x{self.shift_factor:g})"
            )
            lines.append(
                f"pre-shift coverage: online "
                f"{pct(digest['pre_shift_coverage_online'])}, static "
                f"{pct(digest['pre_shift_coverage_static'])}"
            )
            lines.append(
                f"post-shift coverage: online "
                f"{pct(digest['post_shift_coverage_online'])}, static "
                f"{pct(digest['post_shift_coverage_static'])}"
            )
            lines.append(
                "recovered after "
                + (
                    f"{recovery} post-shift observations"
                    if recovery is not None
                    else "... never (within this run)"
                )
            )
        return "\n".join(lines)

    def recovery_observations(
        self, window: int = 20, target: float = 0.8
    ) -> int | None:
        """Post-shift observations until online coverage re-forms.

        Scans forward from the shift point keeping a rolling window of
        the last ``window`` online-coverage flags; returns how many
        post-shift observations it took for the rolling coverage to
        reach ``target``. ``None`` means the loop never recovered
        within this trajectory (or there was no shift to recover from).
        """
        if self.shift_index is None:
            return None
        if window < 1:
            raise ReproError(f"window must be >= 1, got {window}")
        rolling: deque[bool] = deque(maxlen=window)
        for count, point in enumerate(
            self.points[self.shift_index:], start=1
        ):
            if point.online_covered is None:
                continue
            rolling.append(point.online_covered)
            if (
                len(rolling) == window
                and sum(rolling) / window >= target
            ):
                return count
        return None


def simulated_actuals(session: Session, queries) -> dict[str, float]:
    """Ground-truth runtimes for ``queries`` on the session's hardware.

    Each distinct query is planned and executed once against the
    session's database; the collected resource counts are priced on the
    calibrated simulator. Deterministic for a fixed session config.
    """
    executor = Executor(session.database)
    actuals: dict[str, float] = {}
    for sql in queries:
        if sql not in actuals:
            executed = executor.execute(session.plan(sql))
            actuals[sql] = session.simulator.run_repeated(executed.counts)
    return actuals


def run_feedback_loop(
    schedule: ReplaySchedule,
    target: ReplayTarget,
    mirror: Session,
    confidence: float = 0.9,
    tenant: str = DEFAULT_TENANT,
    shift_at: float | None = None,
    shift_factor: float = 1.0,
) -> DriftTrajectory:
    """Replay ``schedule`` through ``target`` with ground-truth feedback.

    ``mirror`` is the observation-free control: a session built from
    the same configuration as the target that never sees an
    observation, so its intervals are the static profile throughout.
    It also provides the simulated ground truth, keeping the oracle
    identical for both arms.

    ``shift_at`` (a fraction in [0, 1)) marks where the simulated
    hardware shifts; every subsequent actual is multiplied by
    ``shift_factor``.
    """
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must lie in (0, 1), got {confidence}")
    if shift_at is not None and not 0.0 <= shift_at < 1.0:
        raise ReproError(f"shift_at must lie in [0, 1), got {shift_at}")
    if shift_factor <= 0:
        raise ReproError(f"shift_factor must be > 0, got {shift_factor}")
    requests = schedule.requests
    shift_index = None
    if shift_at is not None and requests:
        shift_index = int(len(requests) * shift_at)
    actuals = simulated_actuals(mirror, (r.sql for r in requests))
    points = []
    drifts = 0
    for position, request in enumerate(requests):
        wire = PredictRequest(
            sql=request.sql,
            variants=request.variants,
            mpls=request.mpls,
            confidences=request.confidences,
            tenant=tenant,
        )
        online = target.predict_wire(wire)
        static = mirror.predict(
            PredictRequest(
                sql=request.sql,
                variants=request.variants,
                mpls=request.mpls,
                confidences=request.confidences,
            )
        )
        shifted = shift_index is not None and position >= shift_index
        actual = actuals[request.sql] * (shift_factor if shifted else 1.0)
        online_covered = _covered(online, confidence, actual)
        static_covered = _covered(static, confidence, actual)
        result = online.results[0] if online.results else None
        if result is not None:
            observation = WireObservation(
                sql=request.sql,
                actual_seconds=actual,
                tenant=tenant,
                predicted_mean=result.mean,
                predicted_std=result.std,
                variant=result.variant,
                mpl=result.mpl,
            )
        else:
            observation = WireObservation(
                sql=request.sql, actual_seconds=actual, tenant=tenant
            )
        ack = target.observe(observation)
        drifts = ack.drifts_total
        points.append(
            FeedbackPoint(
                index=request.index,
                sql=request.sql,
                actual_seconds=actual,
                shifted=shifted,
                online_covered=online_covered,
                static_covered=static_covered,
                drift_detected=ack.drift_detected,
                scale=ack.scale,
            )
        )
    return DriftTrajectory(
        confidence=confidence,
        shift_index=shift_index,
        shift_factor=shift_factor,
        points=tuple(points),
        drifts_detected=drifts,
    )


def _covered(response, confidence: float, actual: float) -> bool | None:
    """Whether the first result's ``confidence`` interval holds ``actual``."""
    if not response.results:
        return None
    for interval in response.results[0].intervals:
        if interval.confidence == confidence:
            return interval.low <= actual <= interval.high
    return None
