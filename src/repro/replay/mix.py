"""Composable workload mixes: what traffic a replay is made of.

A :class:`WorkloadMix` is a weighted set of :class:`MixComponent`\\ s.
Each component names a query source — the TPC-H templates (all of them
or one specific template), or the MICRO benchmark's scan / join grids —
and may carry its own prediction fan-out (variants × multiprogramming
levels × confidence levels), so one mix can model a multi-tenant blend:
a dashboard tenant replaying a small pool of parameterized templates
with a wide confidence fan-out next to an ad-hoc tenant issuing
always-fresh instantiations.

Drawing queries is deterministic: the schedule builder hands every mix
one seeded generator, and each draw consumes from it in a fixed order.
``pool_size`` bounds the number of *distinct* parameterizations a
component cycles through — small pools model recurring dashboard
traffic (high prepared-cache hit rates), ``None`` draws a fresh
instantiation every time (cold ad-hoc traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from ..util import ensure_rng
from ..workloads.micro import micro_join_queries, micro_scan_queries
from ..workloads.tpch_templates import TPCH_TEMPLATES, template_by_number

__all__ = ["MIX_PRESETS", "MixComponent", "WorkloadMix", "parse_mix"]

#: Component kinds understood by :class:`MixComponent`.
COMPONENT_KINDS = ("tpch", "micro-scan", "micro-join")


@dataclass(frozen=True)
class MixComponent:
    """One weighted traffic source inside a :class:`WorkloadMix`.

    ``kind`` is ``"tpch"`` (every template), ``"tpch:<n>"`` (one
    specific template number), ``"micro-scan"`` or ``"micro-join"``.
    ``variants`` / ``mpls`` / ``confidences`` left as ``None`` defer to
    the serving session's defaults; setting them makes every request
    drawn from this component carry its own fan-out. ``pool_size``
    bounds the distinct parameterizations the component cycles through
    (``None`` = a fresh instantiation per draw).

    ``tenant`` / ``deadline_ms`` stamp every request drawn from this
    component with a v2 tenant attribution and latency budget — what
    lets a mix model distinct tenants with distinct SLOs against the
    uncertainty-aware scheduler (``docs/scheduling.md``). ``None``
    leaves the wire fields absent, i.e. today's behavior.
    """

    kind: str
    weight: float = 1.0
    variants: tuple[str, ...] | None = None
    mpls: tuple[int, ...] | None = None
    confidences: tuple[float, ...] | None = None
    pool_size: int | None = None
    tenant: str | None = None
    deadline_ms: int | None = None

    def __post_init__(self):
        base = self.kind.split(":", 1)[0]
        if base not in COMPONENT_KINDS:
            raise ReproError(
                f"unknown mix component kind {self.kind!r}; expected one of "
                f"{COMPONENT_KINDS} (tpch may carry a template number, "
                f"e.g. 'tpch:6')"
            )
        if base != "tpch" and ":" in self.kind:
            raise ReproError(
                f"only tpch components take a template number, got {self.kind!r}"
            )
        if ":" in self.kind:
            number = self.kind.split(":", 1)[1]
            try:
                template_by_number(int(number))
            except (ValueError, KeyError) as error:
                raise ReproError(
                    f"bad template number in {self.kind!r}: {error}"
                ) from None
        if not self.weight > 0:
            raise ReproError(
                f"component {self.kind!r} needs a positive weight, "
                f"got {self.weight}"
            )
        if self.pool_size is not None and self.pool_size < 1:
            raise ReproError(
                f"component {self.kind!r}: pool_size must be >= 1 or None, "
                f"got {self.pool_size}"
            )
        if self.tenant is not None and not self.tenant:
            raise ReproError(
                f"component {self.kind!r}: tenant must be a non-empty "
                "string or None"
            )
        if self.deadline_ms is not None and self.deadline_ms < 1:
            raise ReproError(
                f"component {self.kind!r}: deadline_ms must be >= 1 or None, "
                f"got {self.deadline_ms}"
            )

    def describe(self) -> str:
        """``"tpch:6 x0.30 (pool 4)"``-style one-liner."""
        text = f"{self.kind} x{self.weight:g}"
        if self.pool_size is not None:
            text += f" (pool {self.pool_size})"
        if self.tenant is not None:
            text += f" [{self.tenant}]"
        if self.deadline_ms is not None:
            text += f" <{self.deadline_ms}ms>"
        return text


class _ComponentDrawer:
    """Draws concrete SQL strings for one component, deterministically.

    Built once per schedule construction; owns the component's bounded
    query pool (micro queries and ``pool_size``-limited template
    parameterizations are materialized eagerly so draws are pure
    index picks).
    """

    def __init__(self, component: MixComponent, database, rng):
        self.component = component
        self._rng = rng
        base, _, number = component.kind.partition(":")
        self._templates = (
            (template_by_number(int(number)),) if number else TPCH_TEMPLATES
        )
        self._pool: list[str] | None = None
        if base == "micro-scan":
            self._pool = micro_scan_queries(database)
        elif base == "micro-join":
            self._pool = micro_join_queries(database)
        if component.pool_size is not None:
            if self._pool is None:
                self._pool = [self._fresh() for _ in range(component.pool_size)]
            else:
                size = min(component.pool_size, len(self._pool))
                chosen = self._rng.choice(
                    len(self._pool), size=size, replace=False
                )
                self._pool = [self._pool[i] for i in sorted(chosen)]

    def _fresh(self) -> str:
        template = self._templates[
            int(self._rng.integers(0, len(self._templates)))
        ]
        return template.instantiate(self._rng)

    def draw(self) -> str:
        """The next query for this component (consumes the shared rng)."""
        if self._pool is not None:
            return self._pool[int(self._rng.integers(0, len(self._pool)))]
        return self._fresh()


@dataclass(frozen=True)
class WorkloadMix:
    """A named, weighted blend of traffic components."""

    name: str
    components: tuple[MixComponent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.components:
            raise ReproError(f"mix {self.name!r} needs at least one component")

    def weights(self) -> np.ndarray:
        """Component weights normalized to sum to 1."""
        raw = np.array([c.weight for c in self.components], dtype=float)
        return raw / raw.sum()

    def drawer(self, database, seed_or_rng) -> "MixDrawer":
        """A deterministic query drawer over ``database``.

        The same database + seed yields the identical draw sequence —
        the property :meth:`ReplaySchedule.fingerprint
        <repro.replay.schedule.ReplaySchedule.fingerprint>` pins.
        """
        return MixDrawer(self, database, ensure_rng(seed_or_rng))

    def describe(self) -> str:
        """``"mixed = tpch x0.5 + micro-scan x0.25 + ..."``."""
        parts = " + ".join(c.describe() for c in self.components)
        return f"{self.name} = {parts}"


class MixDrawer:
    """Stateful deterministic sampler over a mix's components."""

    def __init__(self, mix: WorkloadMix, database, rng):
        self._mix = mix
        self._rng = rng
        self._weights = mix.weights()
        self._drawers = [
            _ComponentDrawer(component, database, rng)
            for component in mix.components
        ]

    def draw(self) -> tuple[str, MixComponent]:
        """``(sql, component)`` for the next request."""
        index = int(
            self._rng.choice(len(self._drawers), p=self._weights)
        )
        return self._drawers[index].draw(), self._mix.components[index]


#: Named mixes selectable from the CLI (``repro replay --mix <name>``).
MIX_PRESETS = {
    # Ad-hoc analytics: always-fresh TPC-H template instantiations.
    "tpch": WorkloadMix("tpch", (MixComponent("tpch"),)),
    # The MICRO benchmark's selectivity-space grids.
    "micro": WorkloadMix(
        "micro",
        (MixComponent("micro-scan"), MixComponent("micro-join")),
    ),
    # The default blend: half template traffic, half micro queries.
    "mixed": WorkloadMix(
        "mixed",
        (
            MixComponent("tpch", weight=0.5),
            MixComponent("micro-scan", weight=0.25),
            MixComponent("micro-join", weight=0.25),
        ),
    ),
    # Multi-tenant: a dashboard tenant replaying a small parameter pool
    # with a wide fan-out next to an ad-hoc tenant and a micro tenant.
    "multitenant": WorkloadMix(
        "multitenant",
        (
            MixComponent(
                "tpch",
                weight=0.5,
                pool_size=6,
                variants=("all", "nocov"),
                mpls=(1, 4),
                confidences=(0.5, 0.9, 0.99),
            ),
            MixComponent("tpch", weight=0.3),
            MixComponent("micro-scan", weight=0.2),
        ),
    ),
}


def parse_mix(spec: str) -> WorkloadMix:
    """A mix from a CLI spec: a preset name or ``kind=weight,...``.

    ``"mixed"`` resolves a preset; ``"tpch=0.6,micro-scan=0.4"`` (and
    ``"tpch:6=1"``) builds an ad-hoc mix. Weights are relative — they
    need not sum to 1.
    """
    spec = spec.strip()
    if spec in MIX_PRESETS:
        return MIX_PRESETS[spec]
    components = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, weight = part.partition("=")
        try:
            components.append(
                MixComponent(kind.strip(), weight=float(weight) if weight else 1.0)
            )
        except ValueError:
            raise ReproError(
                f"bad mix component {part!r}; expected kind=weight"
            ) from None
    if not components:
        raise ReproError(
            f"unknown mix {spec!r}; presets: {', '.join(sorted(MIX_PRESETS))} "
            "or a kind=weight,... spec"
        )
    return WorkloadMix(spec, tuple(components))
