"""Replay outcomes: latency/throughput/error summaries + calibration.

A :class:`ReplayReport` condenses one :class:`~repro.replay.runner.ReplayRun`
into the numbers a load study quotes: achieved throughput, the latency
distribution (p50/p95/p99), error and 503 rates, the prepared-cache
hit-rate trajectory over the run, and — the paper's actual claim — how
prediction uncertainty behaves *under load*:

* :func:`calibration_under_load` re-serves the replayed queries on an
  idle session, executes each distinct query once for (simulated)
  ground truth, and reports the fraction of actual times covered by the
  predicted confidence intervals both under load and idle;
* ``matches_idle`` pins the stronger property the in-process stack
  actually has: predictions served under concurrent load are
  **bitwise identical** to idle ones — load moves latency, never the
  predicted distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.session import Session
from ..api.wire import PredictRequest
from ..errors import ReproError
from ..executor import Executor
from .runner import ReplayRun

__all__ = [
    "CalibrationSummary",
    "LatencySummary",
    "ReplayReport",
    "TenantSummary",
    "calibration_under_load",
]


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency distribution of one replay (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies) -> "LatencySummary":
        """Summarize a sequence of per-request latencies."""
        values = np.asarray(list(latencies), dtype=float)
        if values.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(np.percentile(values, 50)),
            p95=float(np.percentile(values, 95)),
            p99=float(np.percentile(values, 99)),
            max=float(values.max()),
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass(frozen=True)
class TenantSummary:
    """One tenant's slice of a replay (see ``docs/scheduling.md``).

    Built only when the schedule stamps tenants on its requests —
    the per-tenant view of what a scheduling policy did to each
    tenant's throughput, tail latency, and deadline behavior.
    """

    tenant: str
    requests_total: int
    requests_succeeded: int
    requests_failed: int
    throughput_qps: float
    p99_seconds: float
    deadline_requests: int
    deadline_misses: int

    @property
    def error_rate(self) -> float:
        """Failed requests per issued request for this tenant."""
        return self.requests_failed / max(self.requests_total, 1)

    @property
    def deadline_miss_rate(self) -> float:
        """Missed deadlines per deadline-carrying request."""
        return self.deadline_misses / max(self.deadline_requests, 1)

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "tenant": self.tenant,
            "requests_total": self.requests_total,
            "requests_succeeded": self.requests_succeeded,
            "requests_failed": self.requests_failed,
            "throughput_qps": self.throughput_qps,
            "p99_seconds": self.p99_seconds,
            "error_rate": self.error_rate,
            "deadline_requests": self.deadline_requests,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
        }


@dataclass(frozen=True)
class CalibrationSummary:
    """Interval coverage of (simulated) actual times, loaded vs idle."""

    confidence: float
    #: fraction of actuals inside the interval predicted *under load*
    coverage_under_load: float
    #: the same fraction for predictions served on an idle session
    coverage_idle: float
    #: True when every under-load prediction is bitwise equal to idle
    matches_idle: bool
    samples: int

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "confidence": self.confidence,
            "coverage_under_load": self.coverage_under_load,
            "coverage_idle": self.coverage_idle,
            "matches_idle": self.matches_idle,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class ReplayReport:
    """The quotable summary of one replay run."""

    target: str
    mode: str
    schedule_fingerprint: str
    requests_total: int
    requests_succeeded: int
    requests_failed: int
    error_counts: dict
    wall_seconds: float
    throughput_qps: float
    latency: LatencySummary
    max_in_flight: int
    #: ((completed requests, cumulative prepared-cache hit rate), ...)
    cache_trajectory: tuple
    calibration: CalibrationSummary | None = None
    #: requests that carried a latency budget (deadline_ms on the schedule)
    deadline_requests: int = 0
    #: deadline-carrying requests that finished late or failed outright
    deadline_misses: int = 0
    #: per-tenant breakdowns, present when the schedule stamps tenants
    tenants: tuple = ()

    @classmethod
    def from_run(
        cls, run: ReplayRun, calibration: CalibrationSummary | None = None
    ) -> "ReplayReport":
        """Condense a finished :class:`ReplayRun`."""
        succeeded = run.succeeded
        wall = max(run.wall_seconds, 1e-12)
        deadline_requests, deadline_misses = _deadline_outcomes(run)
        return cls(
            target=run.target_description,
            mode=run.schedule.mode,
            schedule_fingerprint=run.schedule.fingerprint(),
            requests_total=len(run.observations),
            requests_succeeded=len(succeeded),
            requests_failed=len(run.failed),
            error_counts=run.error_counts(),
            wall_seconds=run.wall_seconds,
            throughput_qps=len(succeeded) / wall,
            latency=LatencySummary.from_latencies(
                o.latency_seconds for o in succeeded
            ),
            max_in_flight=run.max_in_flight,
            cache_trajectory=_cache_trajectory(run),
            calibration=calibration,
            deadline_requests=deadline_requests,
            deadline_misses=deadline_misses,
            tenants=_tenant_summaries(run, wall),
        )

    @property
    def error_rate(self) -> float:
        """Failed requests per issued request."""
        return self.requests_failed / max(self.requests_total, 1)

    @property
    def deadline_miss_rate(self) -> float:
        """Missed deadlines per deadline-carrying request.

        A request misses when its observed latency exceeds its
        ``deadline_ms`` budget *or* it failed outright (a refusal never
        answers within any budget). Zero when the schedule carried no
        deadlines.
        """
        return self.deadline_misses / max(self.deadline_requests, 1)

    @property
    def over_capacity_rate(self) -> float:
        """503-refused requests per issued request."""
        refused = self.error_counts.get("over-capacity", 0)
        return refused / max(self.requests_total, 1)

    def to_dict(self) -> dict:
        """JSON-ready mapping (the CLI's ``--json`` output)."""
        return {
            "target": self.target,
            "mode": self.mode,
            "schedule_fingerprint": self.schedule_fingerprint,
            "requests_total": self.requests_total,
            "requests_succeeded": self.requests_succeeded,
            "requests_failed": self.requests_failed,
            "error_counts": dict(self.error_counts),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "latency": self.latency.to_dict(),
            "max_in_flight": self.max_in_flight,
            "cache_trajectory": [list(point) for point in self.cache_trajectory],
            "calibration": (
                self.calibration.to_dict() if self.calibration else None
            ),
            "deadline_requests": self.deadline_requests,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    def render(self) -> str:
        """The multi-line human-readable report the CLI prints."""
        lines = [
            f"target         : {self.target} ({self.mode}-loop)",
            f"schedule       : fingerprint {self.schedule_fingerprint}",
            f"requests       : {self.requests_succeeded}/{self.requests_total} ok"
            + (
                f", {self.requests_failed} failed {self._errors_text()}"
                if self.requests_failed
                else ""
            ),
            f"wall time      : {self.wall_seconds:.3f} s "
            f"({self.throughput_qps:.1f} q/s, "
            f"max {self.max_in_flight} in flight)",
            f"latency        : mean {self.latency.mean * 1e3:.1f} ms, "
            f"p50 {self.latency.p50 * 1e3:.1f} ms, "
            f"p95 {self.latency.p95 * 1e3:.1f} ms, "
            f"p99 {self.latency.p99 * 1e3:.1f} ms",
        ]
        if self.cache_trajectory:
            points = ", ".join(
                f"{count}:{'--' if rate is None else f'{rate:.0%}'}"
                for count, rate in self.cache_trajectory
            )
            lines.append(f"cache hit rate : {points}  (completed:cumulative)")
        if self.deadline_requests:
            lines.append(
                f"deadlines      : {self.deadline_misses}/"
                f"{self.deadline_requests} missed "
                f"({self.deadline_miss_rate:.0%})"
            )
        for tenant in self.tenants:
            lines.append(
                f"tenant {tenant.tenant:<8}: "
                f"{tenant.requests_succeeded}/{tenant.requests_total} ok, "
                f"{tenant.throughput_qps:.1f} q/s, "
                f"p99 {tenant.p99_seconds * 1e3:.1f} ms, "
                f"errors {tenant.error_rate:.0%}"
                + (
                    f", deadline misses {tenant.deadline_miss_rate:.0%}"
                    if tenant.deadline_requests
                    else ""
                )
            )
        if self.calibration is not None:
            c = self.calibration
            lines.append(
                f"calibration    : {c.confidence:.0%} interval covers "
                f"{c.coverage_under_load:.0%} under load / "
                f"{c.coverage_idle:.0%} idle over {c.samples} queries; "
                f"predictions {'bitwise equal to' if c.matches_idle else 'DIFFER from'} idle"
            )
        return "\n".join(lines)

    def _errors_text(self) -> str:
        counts = ", ".join(
            f"{code} x{count}" for code, count in sorted(self.error_counts.items())
        )
        return f"({counts})" if counts else ""


def _missed(observation, request) -> bool:
    """Whether a deadline-carrying request blew its latency budget."""
    if not observation.ok:
        return True
    return observation.latency_seconds * 1000.0 > request.deadline_ms


def _deadline_outcomes(run: ReplayRun) -> tuple[int, int]:
    """``(deadline_requests, deadline_misses)`` over the whole run."""
    by_index = {request.index: request for request in run.schedule.requests}
    requests = misses = 0
    for observation in run.observations:
        request = by_index.get(observation.index)
        if request is None or request.deadline_ms is None:
            continue
        requests += 1
        if _missed(observation, request):
            misses += 1
    return requests, misses


def _tenant_summaries(run: ReplayRun, wall: float) -> tuple:
    """Per-tenant breakdowns, first-seen schedule order; () without tenants."""
    by_index = {request.index: request for request in run.schedule.requests}
    order: list[str] = []
    grouped: dict[str, list] = {}
    for observation in run.observations:
        request = by_index.get(observation.index)
        if request is None or request.tenant is None:
            continue
        if request.tenant not in grouped:
            order.append(request.tenant)
            grouped[request.tenant] = []
        grouped[request.tenant].append((observation, request))
    summaries = []
    for tenant in order:
        pairs = grouped[tenant]
        succeeded = [o for o, _ in pairs if o.ok]
        with_deadline = [
            (o, r) for o, r in pairs if r.deadline_ms is not None
        ]
        latencies = np.asarray(
            [o.latency_seconds for o in succeeded], dtype=float
        )
        summaries.append(
            TenantSummary(
                tenant=tenant,
                requests_total=len(pairs),
                requests_succeeded=len(succeeded),
                requests_failed=len(pairs) - len(succeeded),
                throughput_qps=len(succeeded) / wall,
                p99_seconds=(
                    float(np.percentile(latencies, 99))
                    if latencies.size
                    else 0.0
                ),
                deadline_requests=len(with_deadline),
                deadline_misses=sum(
                    1 for o, r in with_deadline if _missed(o, r)
                ),
            )
        )
    return tuple(summaries)


def _cache_trajectory(run: ReplayRun, points: int = 8) -> tuple:
    """Cumulative prepared-cache hit rate at ~``points`` checkpoints.

    Observations are taken in completion order (issue time + latency),
    so the trajectory shows the cache warming *as the replay
    experienced it*.
    """
    completed = sorted(
        run.succeeded, key=lambda o: o.issued_at + o.latency_seconds
    )
    if not completed:
        return ()
    hits = np.cumsum([1 if o.prepare_was_cached else 0 for o in completed])
    total = len(completed)
    checkpoints = sorted(
        {max(1, round(total * (i + 1) / points)) for i in range(points)}
    )
    return tuple(
        (int(n), float(hits[n - 1] / n)) for n in checkpoints
    )


def calibration_under_load(
    run: ReplayRun, session: Session, confidence: float = 0.9
) -> CalibrationSummary:
    """Compare interval coverage and bitwise stability against idle.

    ``session`` must serve the same configuration the replay targeted
    (for an in-process replay, the very session; for an HTTP replay, a
    local mirror built from the same :class:`~repro.api.SessionConfig`).
    Each distinct query is executed once on the session's database and
    (simulated) hardware for ground truth; coverage is the fraction of
    actual times inside the ``confidence`` interval of (a) the response
    observed under load and (b) a fresh idle re-serve of the same
    request.
    """
    if not 0.0 < confidence < 1.0:
        raise ReproError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    by_index = {request.index: request for request in run.schedule.requests}
    executor = Executor(session.database)
    actuals: dict[str, float] = {}
    covered_load = covered_idle = samples = 0
    matches_idle = True
    for observation in run.succeeded:
        request = by_index[observation.index]
        wire = PredictRequest(
            sql=request.sql,
            variants=request.variants,
            mpls=request.mpls,
            confidences=request.confidences,
        )
        idle_response = session.predict(wire)
        if idle_response.results != observation.response.results:
            matches_idle = False
        if request.sql not in actuals:
            executed = executor.execute(session.plan(request.sql))
            actuals[request.sql] = session.simulator.run_repeated(
                executed.counts
            )
        actual = actuals[request.sql]
        interval = _interval_at(observation.response, confidence)
        idle_interval = _interval_at(idle_response, confidence)
        if interval is None or idle_interval is None:
            continue
        samples += 1
        if interval.low <= actual <= interval.high:
            covered_load += 1
        if idle_interval.low <= actual <= idle_interval.high:
            covered_idle += 1
    return CalibrationSummary(
        confidence=confidence,
        coverage_under_load=covered_load / samples if samples else 0.0,
        coverage_idle=covered_idle / samples if samples else 0.0,
        matches_idle=matches_idle,
        samples=samples,
    )


def _interval_at(response, confidence: float):
    """The first result's interval at ``confidence``, or None."""
    if not response.results:
        return None
    for interval in response.results[0].intervals:
        if interval.confidence == confidence:
            return interval
    return None
