"""The replay driver: execute a schedule against a target, observe.

Open-loop mode paces request *issue* times off the schedule's arrival
offsets regardless of completions (a saturated target makes latencies
grow — arrivals never slow down), fanning work over a thread pool.
Closed-loop mode runs one thread per client, each serially walking its
slice of the schedule with think-time pauses — in-flight requests are
bounded by the client count by construction, and the runner's
``max_in_flight`` gauge proves it.

Every request yields one :class:`Observation` whatever happens: a
response, a structured server error (admission 503s keep their
``over-capacity`` code), or a local library error. The runner never
raises out of a request — a load test must observe failure, not die of
it.

``time_scale`` compresses or stretches open-loop schedules (0.1 replays
a 10-second trace in one second of offered-load time), which is how the
bench scenario keeps wall time in the CI budget while replaying a
meaningfully sized trace.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..api.client import ApiError
from ..api.wire import PredictResponse
from ..errors import ReproError, error_code
from .schedule import ReplaySchedule, ScheduledRequest
from .targets import ReplayTarget

__all__ = ["Observation", "ReplayRun", "ReplayRunner"]

#: Worker-pool bound for open-loop dispatch. Arrivals beyond this many
#: concurrently outstanding requests queue in the pool (observable as
#: growing latency, exactly what an overloaded open-loop run should show).
DEFAULT_MAX_WORKERS = 32


@dataclass(frozen=True)
class Observation:
    """What happened to one scheduled request."""

    index: int
    client: int
    scheduled_at: float
    #: seconds from replay start to the moment the request was issued
    issued_at: float
    latency_seconds: float
    ok: bool
    #: stable wire code on failure (``"over-capacity"``, ``"sql-parse"``, ...)
    error_code: str | None = None
    error: str | None = None
    prepare_was_cached: bool = False
    response: PredictResponse | None = None


@dataclass
class ReplayRun:
    """The raw outcome of one replay: observations plus run-level gauges."""

    schedule: ReplaySchedule
    target_description: str
    observations: list[Observation] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: the largest number of requests observed in flight at once
    max_in_flight: int = 0

    @property
    def succeeded(self) -> list[Observation]:
        return [o for o in self.observations if o.ok]

    @property
    def failed(self) -> list[Observation]:
        return [o for o in self.observations if not o.ok]

    def error_counts(self) -> dict[str, int]:
        """Failure counts keyed by stable wire code."""
        counts: dict[str, int] = {}
        for observation in self.failed:
            code = observation.error_code or "internal"
            counts[code] = counts.get(code, 0) + 1
        return counts

    def results_signature(self) -> tuple:
        """Every successful response's floats, in schedule order.

        Two runs of the same schedule against deterministic targets
        must produce equal signatures — the bitwise under-load
        reproducibility claim the tests and the bench scenario pin.
        """
        rows = []
        for observation in sorted(self.succeeded, key=lambda o: o.index):
            response = observation.response
            for result in response.results:
                rows.append(
                    (
                        observation.index,
                        result.variant,
                        result.mpl,
                        result.mean,
                        result.variance,
                        result.std,
                        tuple(
                            (i.confidence, i.low, i.high)
                            for i in result.intervals
                        ),
                    )
                )
        return tuple(rows)


class _InFlightGauge:
    """A thread-safe concurrency counter with a high-water mark."""

    def __init__(self):
        self._lock = threading.Lock()
        self._current = 0
        self.peak = 0

    def __enter__(self):
        with self._lock:
            self._current += 1
            self.peak = max(self.peak, self._current)
        return self

    def __exit__(self, *exc_info):
        with self._lock:
            self._current -= 1


class ReplayRunner:
    """Executes a :class:`ReplaySchedule` against one target."""

    def __init__(
        self,
        target: ReplayTarget,
        *,
        time_scale: float = 1.0,
        max_workers: int = DEFAULT_MAX_WORKERS,
    ):
        if not time_scale > 0:
            raise ReproError(f"time_scale must be positive, got {time_scale}")
        if max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        self._target = target
        self._time_scale = time_scale
        self._max_workers = max_workers

    def run(self, schedule: ReplaySchedule) -> ReplayRun:
        """Replay ``schedule`` to completion; never raises per-request."""
        run = ReplayRun(
            schedule=schedule, target_description=self._target.describe()
        )
        gauge = _InFlightGauge()
        lock = threading.Lock()
        started = time.perf_counter()

        def issue(request: ScheduledRequest) -> None:
            issued_at = time.perf_counter() - started
            with gauge:
                observation = self._observe(request, issued_at)
            with lock:
                run.observations.append(observation)

        if schedule.mode == "closed":
            self._run_closed(schedule, issue)
        else:
            self._run_open(schedule, issue, started)

        run.wall_seconds = time.perf_counter() - started
        run.max_in_flight = gauge.peak
        run.observations.sort(key=lambda o: o.index)
        return run

    # -- internals ---------------------------------------------------------
    def _observe(
        self, request: ScheduledRequest, issued_at: float
    ) -> Observation:
        request_started = time.perf_counter()
        try:
            response = self._target.predict(request)
        except ApiError as error:
            return Observation(
                index=request.index,
                client=request.client,
                scheduled_at=request.at_seconds,
                issued_at=issued_at,
                latency_seconds=time.perf_counter() - request_started,
                ok=False,
                error_code=error.code,
                error=error.remote_message,
            )
        except Exception as error:  # noqa: BLE001 — per-request isolation
            return Observation(
                index=request.index,
                client=request.client,
                scheduled_at=request.at_seconds,
                issued_at=issued_at,
                latency_seconds=time.perf_counter() - request_started,
                ok=False,
                error_code=error_code(error),
                error=f"{type(error).__name__}: {error}",
            )
        return Observation(
            index=request.index,
            client=request.client,
            scheduled_at=request.at_seconds,
            issued_at=issued_at,
            latency_seconds=time.perf_counter() - request_started,
            ok=True,
            prepare_was_cached=response.prepare_was_cached,
            response=response,
        )

    def _run_open(self, schedule: ReplaySchedule, issue, started: float) -> None:
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            futures = []
            for request in schedule.requests:
                due = request.at_seconds * self._time_scale
                delay = due - (time.perf_counter() - started)
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(issue, request))
            for future in futures:
                future.result()

    def _run_closed(self, schedule: ReplaySchedule, issue) -> None:
        def client_loop(client: int) -> None:
            requests = schedule.client_requests(client)
            think = schedule.think_seconds
            for position, request in enumerate(requests):
                issue(request)
                if think > 0 and position + 1 < len(requests):
                    time.sleep(think)

        threads = [
            threading.Thread(target=client_loop, args=(client,), daemon=True)
            for client in range(schedule.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
