"""Deterministic request schedules: the replayable unit of a load test.

A :class:`ReplaySchedule` is the fully materialized list of requests a
replay will issue — for open-loop runs each request carries its arrival
offset; for closed-loop runs each carries the issuing client and its
position in that client's serial sequence. Construction is a pure
function of (mix, load model, database config, seed): building the same
schedule twice yields **identical** request tuples, which
:meth:`ReplaySchedule.fingerprint` pins cheaply so two processes (or
two PRs) can assert they replayed the same traffic.

The schedule deliberately stores concrete SQL strings, not template
references: a schedule built locally can be thrown at a remote
``repro serve`` endpoint that has never seen the mix machinery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import ReproError
from ..util import ensure_rng
from .arrival import ArrivalProcess, ClosedLoop
from .mix import WorkloadMix

__all__ = ["ReplaySchedule", "ScheduledRequest", "build_schedule"]


@dataclass(frozen=True)
class ScheduledRequest:
    """One request of a schedule.

    ``at_seconds`` is the open-loop arrival offset from replay start
    (0.0 for closed-loop requests, whose issue times depend on response
    latencies by design). ``variants``/``mpls``/``confidences`` are the
    drawing component's fan-out overrides (``None`` defers to the
    target session's defaults). ``tenant``/``deadline_ms`` are the
    drawing component's v2 scheduling attribution (``None`` leaves the
    wire fields absent).
    """

    index: int
    at_seconds: float
    client: int
    sql: str
    variants: tuple[str, ...] | None = None
    mpls: tuple[int, ...] | None = None
    confidences: tuple[float, ...] | None = None
    tenant: str | None = None
    deadline_ms: int | None = None

    def canonical(self) -> str:
        """The stable one-line form fingerprints are computed over."""
        return "\t".join(
            (
                str(self.index),
                f"{self.at_seconds:.9f}",
                str(self.client),
                self.sql,
                ",".join(self.variants) if self.variants else "-",
                ",".join(map(str, self.mpls)) if self.mpls else "-",
                ",".join(map(repr, self.confidences)) if self.confidences else "-",
                self.tenant if self.tenant is not None else "-",
                str(self.deadline_ms) if self.deadline_ms is not None else "-",
            )
        )


@dataclass(frozen=True)
class ReplaySchedule:
    """A materialized, deterministic request schedule."""

    mode: str  # "open" | "closed"
    requests: tuple[ScheduledRequest, ...]
    clients: int
    duration_seconds: float
    seed: int
    mix_description: str
    load_description: str
    #: closed-loop pause between a response and the client's next request
    think_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def fingerprint(self) -> str:
        """A stable CRC32 over every request's canonical form.

        Equal fingerprints ⇔ byte-identical schedules (up to CRC
        collision); cheap enough to print in every report and compare
        across processes. Uses :func:`zlib.crc32`, not builtin
        ``hash()``, so the value is stable across interpreter runs.
        """
        payload = "\n".join(request.canonical() for request in self.requests)
        return f"{zlib.crc32(payload.encode('utf-8')):08x}"

    def client_requests(self, client: int) -> tuple[ScheduledRequest, ...]:
        """The serial request sequence of one closed-loop client."""
        return tuple(r for r in self.requests if r.client == client)

    def distinct_queries(self) -> int:
        """How many distinct SQL strings the schedule contains."""
        return len({request.sql for request in self.requests})

    def describe(self) -> str:
        """A multi-line summary (mix, load model, size, fingerprint)."""
        return "\n".join(
            (
                f"schedule   : {len(self.requests)} requests "
                f"({self.distinct_queries()} distinct), seed {self.seed}, "
                f"fingerprint {self.fingerprint()}",
                f"mix        : {self.mix_description}",
                f"load model : {self.load_description}",
            )
        )


def build_schedule(
    mix: WorkloadMix,
    database,
    load: ArrivalProcess | ClosedLoop,
    *,
    seed: int = 0,
    duration_seconds: float = 5.0,
    deadline_ms: int | None = None,
) -> ReplaySchedule:
    """Materialize a deterministic schedule for ``mix`` under ``load``.

    ``database`` anchors the mix's MICRO components (their predicates
    come from catalog statistics) and must be generated from the same
    :class:`~repro.datagen.TpchConfig` the target serves — the CLI
    regenerates it from the shared session config, which is cheap and
    exact. ``duration_seconds`` is the open-loop horizon; closed-loop
    schedules take their size from the load model instead.

    ``deadline_ms`` stamps a latency budget on every request whose
    drawing component does not set its own (a component's
    ``deadline_ms`` always wins) — the knob behind ``repro replay
    --deadline-ms``, which lets any stock mix exercise deadline-aware
    scheduling without defining a custom mix.
    """
    if deadline_ms is not None and deadline_ms < 1:
        raise ReproError(
            f"deadline_ms must be >= 1 or None, got {deadline_ms}"
        )
    rng = ensure_rng(seed)
    drawer = mix.drawer(database, rng)
    requests: list[ScheduledRequest] = []

    def scheduled(index: int, at: float, client: int) -> ScheduledRequest:
        sql, component = drawer.draw()
        return ScheduledRequest(
            index=index,
            at_seconds=at,
            client=client,
            sql=sql,
            variants=component.variants,
            mpls=component.mpls,
            confidences=component.confidences,
            tenant=component.tenant,
            deadline_ms=(
                component.deadline_ms
                if component.deadline_ms is not None
                else deadline_ms
            ),
        )

    if isinstance(load, ClosedLoop):
        index = 0
        # Client-major order: each client's serial sequence is drawn as
        # one contiguous block, so adding a client never perturbs the
        # queries earlier clients replay.
        for client in range(load.clients):
            for _ in range(load.requests_per_client):
                requests.append(scheduled(index, 0.0, client))
                index += 1
        return ReplaySchedule(
            mode="closed",
            requests=tuple(requests),
            clients=load.clients,
            duration_seconds=0.0,
            seed=seed,
            mix_description=mix.describe(),
            load_description=load.describe(),
            think_seconds=load.think_seconds,
        )

    if not isinstance(load, ArrivalProcess):
        raise ReproError(
            f"load must be an ArrivalProcess or ClosedLoop, "
            f"got {type(load).__name__}"
        )
    if not duration_seconds > 0:
        raise ReproError(
            f"open-loop schedules need a positive duration, "
            f"got {duration_seconds}"
        )
    offsets = load.offsets(rng, duration_seconds)
    for index, at in enumerate(offsets):
        requests.append(scheduled(index, float(at), 0))
    if not requests:
        raise ReproError(
            f"empty schedule: {load.describe()} produced no arrivals "
            f"within {duration_seconds}s; raise the rate or the duration"
        )
    return ReplaySchedule(
        mode="open",
        requests=tuple(requests),
        clients=1,
        duration_seconds=duration_seconds,
        seed=seed,
        mix_description=mix.describe(),
        load_description=load.describe(),
    )
