"""Replay targets: where the generated traffic is sent.

Two targets cover the serving stack end to end with one driver:

* :class:`InProcessTarget` wraps a live :class:`~repro.api.Session` —
  no transport, measures the engine + facade;
* :class:`HttpTarget` wraps an :class:`~repro.api.HttpClient` against a
  running ``repro serve`` — measures the full wire path including
  admission control (503s surface as coded observations, optionally
  absorbed by the client's seeded retry policy);
* :class:`WireAppTarget` drives a wire-app stack (typically an
  :class:`~repro.serving.admission.AdmissionGate` over a
  :class:`~repro.serving.app.SessionApp`) through its record-level
  interface — the admission/scheduling path without sockets, which is
  what the ``scheduling_overload`` bench measures.

All speak the same typed wire objects, so the runner is oblivious to
the transport and per-request observations are comparable across
targets — the basis of the retained-throughput metrics in the
``replay_load`` bench scenario.
"""

from __future__ import annotations

from ..api.client import ApiError, HttpClient
from ..api.session import Session
from ..api.wire import Observation as WireObservation
from ..api.wire import (
    ObserveResponse,
    PredictRequest,
    PredictResponse,
    StatsSnapshot,
)
from .schedule import ScheduledRequest

__all__ = ["HttpTarget", "InProcessTarget", "ReplayTarget", "WireAppTarget"]


def _wire_request(request: ScheduledRequest) -> PredictRequest:
    return PredictRequest(
        sql=request.sql,
        variants=request.variants,
        mpls=request.mpls,
        confidences=request.confidences,
        tenant=request.tenant,
        deadline_ms=request.deadline_ms,
    )


class ReplayTarget:
    """Base class: issues one scheduled request, exposes serving stats."""

    name: str = "target"

    def predict(self, request: ScheduledRequest):
        """Serve one request; returns the typed ``PredictResponse``."""
        raise NotImplementedError

    def predict_wire(self, request: PredictRequest):
        """Serve one fully-specified wire request (tenant included).

        The feedback loop uses this to attribute its predictions to the
        tenant whose calibration window it is feeding.
        """
        raise NotImplementedError

    def observe(self, observation: WireObservation) -> ObserveResponse:
        """Feed one ground-truth observation back (the v2 loop)."""
        raise NotImplementedError

    def stats(self) -> StatsSnapshot | None:
        """A point-in-time stats snapshot, or None when unreachable."""
        return None

    def describe(self) -> str:
        """Human-readable target identity for reports."""
        return self.name


class InProcessTarget(ReplayTarget):
    """Drive a :class:`~repro.api.Session` directly (no transport)."""

    name = "inproc"

    def __init__(self, session: Session):
        self._session = session

    @property
    def session(self) -> Session:
        return self._session

    def predict(self, request: ScheduledRequest):
        """Serve through the session facade (thread-safe by contract)."""
        return self._session.predict(_wire_request(request))

    def predict_wire(self, request: PredictRequest):
        """Serve a fully-specified wire request through the facade."""
        return self._session.predict(request)

    def observe(self, observation: WireObservation) -> ObserveResponse:
        """Feed the session's recalibrator directly."""
        return self._session.observe(observation)

    def stats(self) -> StatsSnapshot:
        """The session's stats snapshot (non-blocking under traffic)."""
        return self._session.stats()

    def describe(self) -> str:
        return "in-process session"


class WireAppTarget(ReplayTarget):
    """Drive a wire-app stack through its record-level interface.

    ``app`` is any :class:`~repro.serving.app.WireApp` — in practice an
    admission gate over a session app, which makes this the one target
    that measures admission *and* scheduling behavior with in-process
    latencies. Non-200 answers raise :class:`~repro.api.client.ApiError`
    with the structured code and ``Retry-After`` hint, exactly like the
    HTTP client, so the runner's per-request observations are
    transport-agnostic.
    """

    name = "wire-app"

    def __init__(self, app):
        self._app = app

    @property
    def app(self):
        return self._app

    def _post(self, path: str, record: dict) -> dict:
        response = self._app.handle_post(path, lambda: record)
        if response.status != 200:
            error = response.record.get("error") or {}
            # staticcheck: disable=error-taxonomy — ApiError *is* the
            # coded client-side error surface (it re-wraps the server's
            # structured code), mirroring HttpClient exactly so the
            # runner classifies failures identically across targets.
            raise ApiError(
                response.status,
                error.get("code", "internal"),
                error.get("message", "request failed"),
                retry_after=response.retry_after,
            )
        return response.record

    def predict(self, request: ScheduledRequest):
        """POST-equivalent /v1/predict through the app stack (v2 wire)."""
        return self.predict_wire(_wire_request(request))

    def predict_wire(self, request: PredictRequest):
        """Serve one fully-specified wire request through the stack."""
        record = self._post("/v1/predict", request.to_dict(version=2))
        return PredictResponse.from_dict(record)

    def observe(self, observation: WireObservation) -> ObserveResponse:
        """POST-equivalent /v1/observe through the app stack."""
        record = self._post("/v1/observe", observation.to_dict(version=2))
        return ObserveResponse.from_dict(record)

    def stats(self) -> StatsSnapshot | None:
        """GET-equivalent /v1/stats at v2; None on a non-200 answer."""
        response = self._app.handle_get("/v1/stats?schema_version=2")
        if response.status != 200:
            return None
        return StatsSnapshot.from_dict(response.record)

    def describe(self) -> str:
        return f"wire-app {type(self._app).__name__}"


class HttpTarget(ReplayTarget):
    """Drive a live serving endpoint through the wire client."""

    name = "http"

    def __init__(self, client: HttpClient):
        self._client = client

    @property
    def client(self) -> HttpClient:
        return self._client

    def predict(self, request: ScheduledRequest):
        """POST /v1/predict (503s raise ApiError unless the client retries)."""
        return self._client.predict(_wire_request(request))

    def predict_wire(self, request: PredictRequest):
        """POST /v1/predict with the caller's exact wire request."""
        return self._client.predict(request)

    def observe(self, observation: WireObservation) -> ObserveResponse:
        """POST /v1/observe over the wire."""
        return self._client.observe(observation)

    def stats(self) -> StatsSnapshot | None:
        """GET /v1/stats; None when the endpoint is unreachable."""
        try:
            return self._client.stats()
        except Exception:  # noqa: BLE001 — stats are advisory during replay
            return None

    def describe(self) -> str:
        return f"http {self._client.base_url}"
