"""Sampling-based selectivity estimation (Section 3.2, Algorithm 1)."""

from .estimator import NodeSelectivity, SamplingEstimate, SelectivityEstimator
from .gee import gee_distinct_estimate, gee_selectivity
from .sample_db import SampleDatabase

__all__ = [
    "SampleDatabase",
    "SelectivityEstimator",
    "SamplingEstimate",
    "NodeSelectivity",
    "gee_distinct_estimate",
    "gee_selectivity",
]
