"""Sampling-based selectivity estimation (Section 3.2, Algorithm 1)."""

from .engine import SamplingEngine, SubPlanEntry
from .estimator import NodeSelectivity, SamplingEstimate, SelectivityEstimator
from .gee import gee_distinct_estimate, gee_selectivity
from .sample_db import SampleDatabase
from .signature import subplan_signature

__all__ = [
    "SampleDatabase",
    "SamplingEngine",
    "SelectivityEstimator",
    "SamplingEstimate",
    "SubPlanEntry",
    "NodeSelectivity",
    "gee_distinct_estimate",
    "gee_selectivity",
    "subplan_signature",
]
