"""The shared sub-plan sampling engine.

Algorithm 1 — the sample join pipeline — is the dominant cost of a
prediction, and much of it is repeated verbatim: the LEC chooser's five
candidate configurations mostly differ *above* the leaves (scans and
lower joins are shared), and batch queries instantiated from the same
template share whole join subtrees. :class:`SamplingEngine` memoizes
per-subplan results — the sample intermediate, the derived
:class:`~repro.sampling.estimator.NodeSelectivity`, and the sample-run
resource counts — keyed by

* the **sample-set fingerprint**
  (:meth:`~repro.sampling.sample_db.SampleDatabase.fingerprint`), so one
  engine can safely serve several sample databases, and
* the **canonical sub-plan signature**
  (:mod:`repro.sampling.signature`), invariant to op ids, join input
  order, join algorithm, and scan access path — the degrees of freedom
  that vary across LEC candidates without changing the sample-space
  computation.

Entries live in a byte-budgeted LRU (sample intermediates carry real
column arrays, so the budget is measured in bytes, not entries). A hit
returns the stored intermediate for reuse by parent operators and a
re-keyed copy of the stored selectivity; both are bitwise identical to
what a cold pass would compute, which the benchmark and tests assert.

Results computed through the optimizer fallback (an empty sample
intermediate) are *not* stored: their selectivity depends on the
enclosing plan's optimizer estimates, not only on the subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..caching import ByteBudgetLRU, CacheStats
from ..optimizer.cost_model import ResourceCounts

if TYPE_CHECKING:  # import cycle: estimator consults the engine
    from .estimator import NodeSelectivity, _SampleIntermediate

__all__ = ["DEFAULT_ENGINE_BUDGET_BYTES", "SamplingEngine", "SubPlanEntry"]

#: Default byte budget for memoized sample intermediates (128 MiB).
DEFAULT_ENGINE_BUDGET_BYTES = 128 * 1024 * 1024

#: Fixed per-entry overhead charged on top of the array payloads.
_ENTRY_OVERHEAD_BYTES = 512


def _intermediate_nbytes(intermediate: "_SampleIntermediate") -> int:
    """Budgeted size of one entry: its arrays plus a fixed overhead."""
    total = _ENTRY_OVERHEAD_BYTES
    for array in intermediate.columns.values():
        total += array.nbytes
    for array in intermediate.provenance.values():
        total += array.nbytes
    return total


@dataclass
class SubPlanEntry:
    """One memoized sub-plan result.

    Everything in here is shared between cache and consumers and must be
    treated as immutable: the estimator re-keys ``selectivity`` with
    :func:`dataclasses.replace` instead of mutating it, and operators
    only read from the intermediate's arrays.
    """

    intermediate: "_SampleIntermediate"
    selectivity: "NodeSelectivity"
    counts: ResourceCounts

    def rekeyed_selectivity(self, op_id: int) -> "NodeSelectivity":
        """The stored selectivity under the consuming plan's op id."""
        return replace(self.selectivity, op_id=op_id)


class SamplingEngine:
    """Memoizes Algorithm-1 sub-plan results across plans and queries."""

    def __init__(self, max_bytes: int = DEFAULT_ENGINE_BUDGET_BYTES):
        self._cache = ByteBudgetLRU(max_bytes)

    # -- cache protocol ----------------------------------------------------
    def lookup(self, fingerprint: tuple, signature: str) -> SubPlanEntry | None:
        return self._cache.get((fingerprint, signature))

    def store(
        self,
        fingerprint: tuple,
        signature: str,
        intermediate: "_SampleIntermediate",
        selectivity: "NodeSelectivity",
        counts: ResourceCounts,
    ) -> None:
        entry = SubPlanEntry(
            intermediate=intermediate, selectivity=selectivity, counts=counts
        )
        self._cache.put(
            (fingerprint, signature), entry, _intermediate_nbytes(intermediate)
        )

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def snapshot(self) -> tuple[CacheStats, int, int]:
        """Atomic ``(stats copy, entries, bytes used)`` for reporting.

        Delegates to :meth:`repro.caching.ByteBudgetLRU.snapshot`, so a
        monitoring thread reading concurrently with sampling traffic
        never observes a torn :class:`CacheStats`.
        """
        return self._cache.snapshot()

    @property
    def bytes_used(self) -> int:
        return self._cache.bytes_used

    @property
    def max_bytes(self) -> int:
        return self._cache.max_bytes

    def __len__(self) -> int:
        return len(self._cache)

    def __bool__(self) -> bool:
        # An *empty* engine must not read as "no engine" in `if engine:`
        # checks; truthiness follows identity, not fill level.
        return True

    def clear(self) -> None:
        self._cache.clear()

    def describe(self) -> str:
        return (
            f"{len(self)} sub-plans, "
            f"{self.bytes_used / 1024:.0f} KiB / {self.max_bytes / 1024:.0f} KiB, "
            f"hit rate {self.stats.describe()}"
        )
