"""Algorithm 1: selectivity estimates rho_n and variances S_n^2 per operator.

The plan is run once over the sample tables, bottom-up. Every sample
tuple carries provenance (its position in each source sample table), so
the per-relation counts Q_{k,j,n} of Eq. 6 are obtained by scanning the
sample join result once and incrementing per-position counters — the
paper's data-provenance trick. From those:

    v_k  = (1/(n_k - 1)) * sum_j (Q_{k,j} / prod_{k' != k} n_{k'} - rho_n)^2
    S_n^2 = sum_k v_k          (Eq. 5, generalized to unequal sample sizes)
    Var[rho_n] ~= sum_k v_k / n_k

The per-relation components ``v_k / n_k`` are retained: restricted sums
over shared relations give the S^2_{n,m} quantities behind the tighter
covariance bound B1 (Theorem 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SamplingError
from ..executor import kernels
from ..optimizer.cost_model import ResourceCounts
from ..optimizer.optimizer import PlannedQuery
from ..plan.physical import (
    AggregateNode,
    FilterNode,
    OpKind,
    PlanNode,
)
from ..plan.predicates import ColumnPairScanPredicate
from .engine import SamplingEngine
from .sample_db import MIN_SAMPLE_ROWS, SampleDatabase
from .signature import compose_signature

__all__ = ["NodeSelectivity", "SamplingEstimate", "SelectivityEstimator"]


@dataclass
class NodeSelectivity:
    """The estimated distribution of one operator's selectivity X."""

    op_id: int
    mean: float
    variance: float
    #: per-leaf-alias contribution to ``variance`` (v_k / n_k)
    var_components: dict[str, float]
    leaf_aliases: tuple[str, ...]
    sample_sizes: dict[str, int]
    #: "sample" (Algorithm 1), "optimizer" (aggregate fallback), or
    #: "alias" (pass-through operators sharing the child's variable)
    source: str
    #: op_id of the operator whose variable this one aliases (or None)
    alias_of: int | None = None

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def num_relations(self) -> int:
        return len(self.leaf_aliases)

    def min_sample_size(self) -> int:
        """Smallest backing sample size, or the documented sampling floor.

        Estimates that never touched a sample — optimizer fallbacks for
        aggregates, alias pass-throughs (Sort/Materialize), histogram
        nodes — carry no ``sample_sizes``. For those this returns
        :data:`~repro.sampling.sample_db.MIN_SAMPLE_ROWS`, the smallest
        sample any :class:`SampleDatabase` materializes, so downstream
        ``n - 1``-style arithmetic stays well-defined without a silent
        magic number.
        """
        if not self.sample_sizes:
            return MIN_SAMPLE_ROWS
        return min(self.sample_sizes.values())

    def restricted_variance(self, aliases) -> float:
        """S^2_rho(m, n)/n over the given shared relations (Theorem 7)."""
        return sum(self.var_components.get(alias, 0.0) for alias in aliases)


@dataclass
class SamplingEstimate:
    """Output of one sampling pass over a plan."""

    per_node: dict[int, NodeSelectivity]
    #: resource counts of the sample run itself (overhead accounting)
    sample_run_counts: dict[int, ResourceCounts] = field(default_factory=dict)

    def resolve(self, op_id: int) -> NodeSelectivity:
        """Follow alias links to the defining variable of an operator."""
        node = self.per_node[op_id]
        while node.alias_of is not None:
            node = self.per_node[node.alias_of]
        return node


@dataclass
class _SampleIntermediate:
    """Sample rows with provenance: alias -> sample-tuple positions."""

    columns: dict[str, np.ndarray]
    provenance: dict[str, np.ndarray]
    num_rows: int

    def select(self, mask: np.ndarray) -> "_SampleIntermediate":
        return _SampleIntermediate(
            columns={k: v[mask] for k, v in self.columns.items()},
            provenance={k: v[mask] for k, v in self.provenance.items()},
            num_rows=int(mask.sum()),
        )


def _sample_predicate_mask(data: _SampleIntermediate, alias: str, predicate) -> np.ndarray:
    if isinstance(predicate, ColumnPairScanPredicate):
        return predicate.mask(
            data.columns[f"{alias}.{predicate.left_column}"],
            data.columns[f"{alias}.{predicate.right_column}"],
        )
    return predicate.mask(data.columns[f"{alias}.{predicate.column}"])


class SelectivityEstimator:
    """Runs Algorithm 1 over a planned query.

    With an :class:`~repro.sampling.engine.SamplingEngine` attached, the
    estimator consults it at every scan, join, and filter: a hit reuses
    the memoized sample intermediate (and its derived selectivity and
    resource counts) instead of re-executing the sub-plan over the
    sample tables; a miss stores the freshly computed result. Estimates
    are bitwise identical either way — the engine only skips work whose
    outcome is already known.
    """

    def __init__(
        self,
        sample_db: SampleDatabase,
        planned: PlannedQuery,
        use_gee: bool = False,
        engine: SamplingEngine | None = None,
    ):
        self._samples = sample_db
        self._planned = planned
        self._copies = sample_db.assign_copies(planned.alias_tables)
        self._use_gee = use_gee
        self._engine = engine
        self._fingerprint = sample_db.fingerprint() if engine is not None else None

    # ------------------------------------------------------------------
    def estimate(self) -> SamplingEstimate:
        """One bottom-up pass over the sample tables (Algorithm 1)."""
        per_node: dict[int, NodeSelectivity] = {}
        run_counts: dict[int, ResourceCounts] = {}
        self._visit(self._planned.root, per_node, run_counts)
        return SamplingEstimate(per_node=per_node, sample_run_counts=run_counts)

    # -- engine consultation ------------------------------------------------
    def _signature_for(self, node: PlanNode, child_signatures: list) -> str | None:
        """This node's canonical sub-plan signature (None: not memoizable)."""
        if self._engine is None:
            return None
        return compose_signature(node, child_signatures, self._copies)

    def _lookup(self, signature: str | None):
        if self._engine is None or signature is None:
            return None
        return self._engine.lookup(self._fingerprint, signature)

    def _store(
        self,
        signature: str | None,
        result: _SampleIntermediate,
        selectivity: NodeSelectivity,
        counts: ResourceCounts,
    ) -> None:
        if self._engine is None or signature is None:
            return
        if result.num_rows == 0:
            # Empty intermediates take the optimizer fallback, whose
            # selectivity depends on the enclosing plan's estimates, not
            # only on this subtree — unsafe to share across plans.
            return
        self._engine.store(self._fingerprint, signature, result, selectivity, counts)

    # ------------------------------------------------------------------
    def _visit(
        self,
        node: PlanNode,
        per_node: dict[int, NodeSelectivity],
        run_counts: dict[int, ResourceCounts],
    ) -> tuple[_SampleIntermediate | None, str | None]:
        """Returns (sample intermediate, sub-plan signature).

        Both are None above an aggregate; the signature alone is None
        when memoization is off or the subtree is not memoizable.
        """
        kind = node.kind
        if node.is_scan:
            signature = self._signature_for(node, [])
            entry = self._lookup(signature)
            if entry is not None:
                per_node[node.op_id] = entry.rekeyed_selectivity(node.op_id)
                run_counts[node.op_id] = entry.counts
                return entry.intermediate, signature
            result = self._scan(node, run_counts)
            selectivity = self._scan_selectivity(node, result)
            per_node[node.op_id] = selectivity
            self._store(signature, result, selectivity, run_counts[node.op_id])
            return result, signature

        children = [self._visit(c, per_node, run_counts) for c in node.children]
        intermediates = [intermediate for intermediate, _ in children]
        signatures = [signature for _, signature in children]
        aggregate_below = any(intermediate is None for intermediate in intermediates)

        if kind is OpKind.AGGREGATE or aggregate_below:
            if (
                kind is OpKind.AGGREGATE
                and self._use_gee
                and not aggregate_below
                and node.group_keys
            ):
                per_node[node.op_id] = self._gee_selectivity(node, intermediates[0])
            else:
                per_node[node.op_id] = self._optimizer_fallback(node)
            return None, None

        if node.is_join:
            signature = self._signature_for(node, signatures)
            entry = self._lookup(signature)
            if entry is not None:
                per_node[node.op_id] = entry.rekeyed_selectivity(node.op_id)
                run_counts[node.op_id] = entry.counts
                return entry.intermediate, signature
            result = self._join(node, intermediates[0], intermediates[1], run_counts)
            selectivity = self._product_selectivity(node, result)
            per_node[node.op_id] = selectivity
            self._store(signature, result, selectivity, run_counts[node.op_id])
            return result, signature
        if kind is OpKind.FILTER:
            signature = self._signature_for(node, signatures)
            entry = self._lookup(signature)
            if entry is not None:
                per_node[node.op_id] = entry.rekeyed_selectivity(node.op_id)
                run_counts[node.op_id] = entry.counts
                return entry.intermediate, signature
            result = self._filter(node, intermediates[0], run_counts)
            if len(result.provenance) > 1:
                selectivity = self._product_selectivity(node, result)
            else:
                selectivity = self._scan_selectivity(node, result)
            per_node[node.op_id] = selectivity
            self._store(signature, result, selectivity, run_counts[node.op_id])
            return result, signature
        if kind in (OpKind.SORT, OpKind.MATERIALIZE):
            per_node[node.op_id] = self._alias_selectivity(node)
            run_counts[node.op_id] = ResourceCounts(
                nt=float(intermediates[0].num_rows)
            )
            # Sort/Materialize pass the sample intermediate through
            # untouched, so the child's signature stays valid above them.
            return intermediates[0], signatures[0]
        if kind is OpKind.LIMIT:
            per_node[node.op_id] = self._optimizer_fallback(node)
            return intermediates[0], signatures[0]
        raise SamplingError(f"sampling estimator: unknown operator {kind}")

    # -- operators over samples -------------------------------------------
    def _scan(self, node, run_counts) -> _SampleIntermediate:
        table = self._planned.database.table(node.table)
        alias = node.alias
        copy = self._copies[alias]
        positions = self._samples.sample_indices(node.table, copy)
        n = len(positions)
        columns = {
            f"{alias}.{name}": table.column(name)[positions]
            for name in table.schema.names
        }
        result = _SampleIntermediate(
            columns=columns,
            provenance={alias: np.arange(n, dtype=np.int64)},
            num_rows=n,
        )
        predicates = list(node.predicates)
        if node.kind is OpKind.INDEX_SCAN and node.index_predicate is not None:
            predicates.append(node.index_predicate)
        ops = 0
        for predicate in predicates:
            result = result.select(_sample_predicate_mask(result, alias, predicate))
            ops += predicate.num_ops
        run_counts[node.op_id] = ResourceCounts(
            ns=float(self._samples.sample_pages(node.table)),
            nt=float(n),
            no=float(ops * n),
        )
        return result

    def _join(self, node, left, right, run_counts) -> _SampleIntermediate:
        if node.keys:
            left_cols = [left.columns[lk] for lk, _ in node.keys]
            right_cols = [right.columns[rk] for _, rk in node.keys]
            li, ri = kernels.equijoin_pairs(left_cols, right_cols)
        else:
            li, ri = kernels.cross_join_pairs(left.num_rows, right.num_rows)
        columns = {name: arr[li] for name, arr in left.columns.items()}
        for name, arr in right.columns.items():
            columns[name] = arr[ri]
        provenance = {alias: arr[li] for alias, arr in left.provenance.items()}
        for alias, arr in right.provenance.items():
            provenance[alias] = arr[ri]
        run_counts[node.op_id] = ResourceCounts(
            nt=float(left.num_rows + right.num_rows),
            no=2.0 * (left.num_rows + right.num_rows),
        )
        return _SampleIntermediate(columns, provenance, len(li))

    def _filter(self, node: FilterNode, data, run_counts) -> _SampleIntermediate:
        mask = np.ones(data.num_rows, dtype=bool)
        ops = 0
        for predicate in node.scan_predicates:
            mask &= _sample_predicate_mask(data, predicate.alias, predicate)
            ops += predicate.num_ops
        for predicate in node.compare_predicates:
            left = data.columns[f"{predicate.left_alias}.{predicate.left_column}"]
            right = data.columns[f"{predicate.right_alias}.{predicate.right_column}"]
            mask &= predicate.mask(left, right)
            ops += predicate.num_ops
        run_counts[node.op_id] = ResourceCounts(
            nt=float(data.num_rows), no=float(max(ops, 1) * data.num_rows)
        )
        return data.select(mask)

    # -- selectivity distributions -----------------------------------------
    def _scan_selectivity(self, node, result) -> NodeSelectivity:
        if result.num_rows == 0:
            return self._empty_fallback(node)
        alias = node.leaf_aliases()[0]
        n = self._samples.sample_size(self._planned.alias_tables[alias])
        rho = result.num_rows / n
        # S_n^2 = rho(1 - rho) for tuple-level scans; Var[rho_n] ~ S_n^2/n.
        variance = rho * (1.0 - rho) / n
        return NodeSelectivity(
            op_id=node.op_id,
            mean=rho,
            variance=variance,
            var_components={alias: variance},
            leaf_aliases=(alias,),
            sample_sizes={alias: n},
            source="sample",
        )

    def _product_selectivity(self, node, result) -> NodeSelectivity:
        """rho_n and S_n^2 for an operator over a product space (joins).

        An empty result short-circuits to the fallback *before* any
        variance arithmetic: with zero observations the ``Q_{k,j}``
        counters are all zero and the deviations collapse to a spurious
        exact zero variance, so none of the math below is meaningful.
        """
        if result.num_rows == 0:
            return self._empty_fallback(node)
        aliases = node.leaf_aliases()
        sizes = {
            alias: self._samples.sample_size(self._planned.alias_tables[alias])
            for alias in aliases
        }
        total_product = 1.0
        for size in sizes.values():
            total_product *= size
        rho = result.num_rows / total_product

        components: dict[str, float] = {}
        for alias in aliases:
            n_k = sizes[alias]
            if n_k < 2:
                # The n_k - 1 denominator below would divide by zero; the
                # paper sets S_1^2 = 0 for single-tuple samples.
                components[alias] = 0.0
                continue
            q = np.bincount(result.provenance[alias], minlength=n_k).astype(np.float64)
            denominator = total_product / n_k  # prod of the other sample sizes
            deviations = q / denominator - rho
            v_k = float((deviations * deviations).sum() / (n_k - 1))
            components[alias] = v_k / n_k
        return NodeSelectivity(
            op_id=node.op_id,
            mean=rho,
            variance=sum(components.values()),
            var_components=components,
            leaf_aliases=aliases,
            sample_sizes=sizes,
            source="sample",
        )

    def _empty_fallback(self, node) -> NodeSelectivity:
        """Empty sample result: the sampler never observed a qualifying tuple.

        The raw estimator would report rho_n = 0 with S_n^2 = 0, silently
        claiming certainty about a selectivity it cannot resolve (anything
        below 1/prod(n_k) looks identical). We instead fall back to the
        optimizer's estimate for the mean — the same strategy Algorithm 1
        uses for aggregates — and assign a 100% relative standard
        deviation. Theorem 4's absolute bound is far too loose here: it
        scales like sqrt(rho) and, multiplied by the huge leaf-product
        coefficients of deep plans, would predict absurd time variances.
        A unit coefficient of variation keeps the uncertainty honest
        ("we know only the order of magnitude") at the right scale.
        """
        aliases = node.leaf_aliases()
        sizes = {
            alias: self._samples.sample_size(self._planned.alias_tables[alias])
            for alias in aliases
        }
        rho = self._clamped_estimate(node)
        variance = rho * rho
        share = variance / len(aliases) if aliases else 0.0
        return NodeSelectivity(
            op_id=node.op_id,
            mean=rho,
            variance=variance,
            var_components={alias: share for alias in aliases},
            leaf_aliases=aliases,
            sample_sizes=sizes,
            source="sample",
        )

    def _clamped_estimate(self, node) -> float:
        """The optimizer's selectivity estimate, NaN-guarded into [0, 1].

        ``min(nan, 1.0)`` is nan, so a non-finite estimate must be
        replaced before clamping or it poisons every moment downstream.
        """
        estimated = self._planned.est_selectivity(node)
        if not math.isfinite(estimated):
            return 0.0
        return min(max(estimated, 0.0), 1.0)

    def _optimizer_fallback(self, node) -> NodeSelectivity:
        """Aggregates (and anything above them): optimizer estimate, S^2=0."""
        aliases = node.leaf_aliases()
        sizes = {
            alias: self._samples.sample_size(self._planned.alias_tables[alias])
            for alias in aliases
        }
        return NodeSelectivity(
            op_id=node.op_id,
            mean=self._clamped_estimate(node),
            variance=0.0,
            var_components={alias: 0.0 for alias in aliases},
            leaf_aliases=aliases,
            sample_sizes=sizes,
            source="optimizer",
        )

    def _gee_selectivity(self, node: AggregateNode, child) -> NodeSelectivity:
        """GEE extension: sample-based aggregate output estimate."""
        from .gee import gee_selectivity

        aliases = node.leaf_aliases()
        sizes = {
            alias: self._samples.sample_size(self._planned.alias_tables[alias])
            for alias in aliases
        }
        fraction = 1.0
        for alias in aliases:
            full = self._planned.alias_rows[alias]
            fraction *= sizes[alias] / max(full, 1)
        keys = [child.columns[key] for key in node.group_keys if key in child.columns]
        if not keys:
            return self._optimizer_fallback(node)
        denominator = self._planned.leaf_row_product(node)
        mean, variance = gee_selectivity(keys, 1.0 / max(fraction, 1e-12), denominator)
        if mean <= 0.0:
            return self._optimizer_fallback(node)
        share = variance / len(aliases)
        return NodeSelectivity(
            op_id=node.op_id,
            mean=mean,
            variance=variance,
            var_components={alias: share for alias in aliases},
            leaf_aliases=aliases,
            sample_sizes=sizes,
            source="gee",
        )

    def _alias_selectivity(self, node) -> NodeSelectivity:
        child_id = node.children[0].op_id
        return NodeSelectivity(
            op_id=node.op_id,
            mean=float("nan"),
            variance=0.0,
            var_components={},
            leaf_aliases=node.leaf_aliases(),
            sample_sizes={},
            source="alias",
            alias_of=child_id,
        )
