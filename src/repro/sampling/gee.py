"""GEE distinct-value estimation for aggregate output cardinalities.

Section 3.2.2 notes that the sampling estimator cannot handle
aggregates and that incorporating a distinct-value estimator such as
GEE (Charikar et al., PODS'00) is future work. This module implements
that extension: the Guaranteed-Error Estimator

    D_hat = sqrt(N / n) * f_1 + sum_{j >= 2} f_j

where f_j is the number of distinct values appearing exactly j times in
a sample of n rows out of N. For aggregates over join results we use
the effective sampling fraction q = prod_k (n_k / N_k) and scale by
sqrt(1 / q).
"""

from __future__ import annotations

import numpy as np

from ..util import group_ids

__all__ = ["gee_distinct_estimate", "gee_selectivity"]


def gee_distinct_estimate(sample_keys: list[np.ndarray], scale_up: float) -> float:
    """Estimate the number of distinct key combinations in the population.

    ``sample_keys`` are the group-key columns of the sample rows;
    ``scale_up`` is 1/q where q is the effective sampling fraction.
    """
    if not sample_keys or len(sample_keys[0]) == 0:
        return 0.0
    ids, representatives = group_ids(*sample_keys)
    counts = np.bincount(ids, minlength=len(representatives))
    f1 = int((counts == 1).sum())
    f_rest = int((counts >= 2).sum())
    return float(np.sqrt(max(scale_up, 1.0)) * f1 + f_rest)


def gee_selectivity(
    sample_keys: list[np.ndarray],
    scale_up: float,
    denominator: float,
) -> tuple[float, float]:
    """(mean, variance) of an aggregate's selectivity via GEE.

    The mean is D_hat / denominator (Eq. 3's product of leaf-table
    sizes). The variance is a heuristic: the singleton mass f_1 is the
    uncertain part of D_hat, so we attribute a relative variance of
    f_1 / (n * D_sample) to the estimate.
    """
    if not sample_keys or len(sample_keys[0]) == 0:
        return 0.0, 0.0
    ids, representatives = group_ids(*sample_keys)
    counts = np.bincount(ids, minlength=len(representatives))
    f1 = int((counts == 1).sum())
    d_sample = len(representatives)
    n = len(sample_keys[0])
    d_hat = float(np.sqrt(max(scale_up, 1.0)) * f1 + int((counts >= 2).sum()))
    mean = min(d_hat / max(denominator, 1.0), 1.0)
    relative_variance = (f1 / max(d_sample, 1)) / max(n, 1)
    return mean, (mean * mean) * relative_variance
