"""A histogram-based selectivity estimator with uncertainty (Section 3.2).

The paper notes that quantifying selectivity uncertainty "depends on the
nature of the selectivity estimator used" and leaves non-sampling
estimators (histograms) as future work. This module implements that
alternative: selectivity means come from the catalog statistics (the
same machinery the optimizer uses) and variances from explicit error
models:

* **range predicates**: within-bucket linear interpolation can be off by
  at most one bucket's mass per bound; treating the interpolation error
  as uniform over that bucket gives variance ``(1/B)^2 / 12`` per bound.
* **equality / IN**: the non-MCV residual is spread over the remaining
  distinct values; its dispersion contributes a relative variance of
  roughly one (the estimator only knows the average frequency).
* **joins**: the ``1/max(ndv)`` rule is exact under containment +
  uniformity; skew breaks it, so we attach a relative variance that
  grows with the key-frequency skew observable from the MCV fractions.

Output is :class:`~repro.sampling.estimator.SamplingEstimate`-shaped, so
the unmodified predictor can consume it; per-relation variance
components are attributed to the alias whose statistics produced the
uncertainty (there are no shared samples, hence no covariances — the
predictor's bounds all evaluate to zero for "histogram" sources because
the components are attached to single relations and the variance carries
no cross-operator correlation structure anyway; we conservatively leave
them in place so the bound machinery still applies).
"""

from __future__ import annotations


from ..optimizer.cardinality import CardinalityEstimator
from ..optimizer.optimizer import PlannedQuery
from ..plan.physical import OpKind
from ..plan.predicates import ColumnPairScanPredicate, PredicateKind
from ..storage.statistics import DEFAULT_HISTOGRAM_BUCKETS
from .estimator import NodeSelectivity, SamplingEstimate

__all__ = ["HistogramSelectivityEstimator"]

#: Relative variance attached to predicates histograms cannot resolve.
UNRESOLVED_RELATIVE_VARIANCE = 1.0 / 3.0


class HistogramSelectivityEstimator:
    """Estimates per-operator selectivity distributions from the catalog."""

    def __init__(self, planned: PlannedQuery):
        self._planned = planned
        self._cardinality = CardinalityEstimator(planned.database)

    def estimate(self) -> SamplingEstimate:
        per_node: dict[int, NodeSelectivity] = {}
        for node in self._planned.root.walk():
            per_node[node.op_id] = self._node_selectivity(node, per_node)
        return SamplingEstimate(per_node=per_node, sample_run_counts={})

    # ------------------------------------------------------------------
    def _node_selectivity(self, node, per_node) -> NodeSelectivity:
        kind = node.kind
        if node.is_scan:
            return self._scan(node)
        if kind in (OpKind.SORT, OpKind.MATERIALIZE):
            return NodeSelectivity(
                op_id=node.op_id,
                mean=float("nan"),
                variance=0.0,
                var_components={},
                leaf_aliases=node.leaf_aliases(),
                sample_sizes={},
                source="alias",
                alias_of=node.children[0].op_id,
            )
        if node.is_join:
            return self._join(node, per_node)
        if kind is OpKind.FILTER:
            return self._filter(node, per_node)
        # Aggregates / limits: the optimizer estimate, no variance — the
        # same fallback Algorithm 1 uses.
        return self._fallback(node)

    def _fallback(self, node) -> NodeSelectivity:
        aliases = node.leaf_aliases()
        return NodeSelectivity(
            op_id=node.op_id,
            mean=min(self._planned.est_selectivity(node), 1.0),
            variance=0.0,
            var_components={alias: 0.0 for alias in aliases},
            leaf_aliases=aliases,
            sample_sizes={},
            source="optimizer",
        )

    # -- scans -----------------------------------------------------------
    def _predicate_distribution(self, table: str, predicate) -> tuple[float, float]:
        """(mean, variance) of one predicate's selectivity."""
        mean = self._cardinality.predicate_selectivity(table, predicate)
        if isinstance(predicate, ColumnPairScanPredicate):
            return mean, mean * mean * UNRESOLVED_RELATIVE_VARIANCE
        kind = predicate.kind
        bucket = 1.0 / DEFAULT_HISTOGRAM_BUCKETS
        per_bound = bucket * bucket / 12.0
        if kind is PredicateKind.BETWEEN:
            return mean, 2.0 * per_bound
        if kind in (
            PredicateKind.LT,
            PredicateKind.LE,
            PredicateKind.GT,
            PredicateKind.GE,
        ):
            return mean, per_bound
        if kind in (PredicateKind.EQ, PredicateKind.NE, PredicateKind.IN):
            # Average-frequency assumption: order-of-magnitude knowledge.
            return mean, mean * mean * UNRESOLVED_RELATIVE_VARIANCE
        return mean, mean * mean * UNRESOLVED_RELATIVE_VARIANCE

    def _scan(self, node) -> NodeSelectivity:
        table = node.table
        predicates = list(node.predicates)
        if node.kind is OpKind.INDEX_SCAN and node.index_predicate is not None:
            predicates.append(node.index_predicate)
        mean = 1.0
        relative_variance = 0.0
        for predicate in predicates:
            p_mean, p_var = self._predicate_distribution(table, predicate)
            mean *= p_mean
            if p_mean > 0:
                # independent factors: relative variances add (first order)
                relative_variance += p_var / (p_mean * p_mean)
        variance = mean * mean * relative_variance
        alias = node.alias
        return NodeSelectivity(
            op_id=node.op_id,
            mean=min(mean, 1.0),
            variance=variance,
            var_components={alias: variance},
            leaf_aliases=(alias,),
            sample_sizes={},
            source="histogram",
        )

    # -- joins ------------------------------------------------------------
    def _join_edge_relative_variance(self, table_left, column_left, table_right, column_right) -> float:
        """Skew-driven relative variance of the 1/max(ndv) rule."""
        stats = self._planned.database.table_stats(table_left).column(column_left)
        other = self._planned.database.table_stats(table_right).column(column_right)
        skew = 0.0
        for column_stats in (stats, other):
            if column_stats.mcv_fractions:
                top = column_stats.mcv_fractions[0]
                uniform = 1.0 / max(column_stats.num_distinct, 1)
                # top-frequency inflation over the uniform assumption
                skew = max(skew, top / uniform - 1.0)
        return min(skew, 9.0) / 3.0 + 0.05

    def _join(self, node, per_node) -> NodeSelectivity:
        left = self._resolve(per_node, node.children[0].op_id)
        right = self._resolve(per_node, node.children[1].op_id)
        edge_mean = 1.0
        edge_rel_var = 0.0
        for left_key, right_key in node.keys:
            left_alias, left_column = left_key.split(".", 1)
            right_alias, right_column = right_key.split(".", 1)
            table_left = self._planned.alias_tables[left_alias]
            table_right = self._planned.alias_tables[right_alias]
            ndv_l = self._cardinality.column_ndv(table_left, left_column)
            ndv_r = self._cardinality.column_ndv(table_right, right_column)
            edge_mean *= 1.0 / max(ndv_l, ndv_r, 1)
            edge_rel_var += self._join_edge_relative_variance(
                table_left, left_column, table_right, right_column
            )
        mean = left.mean * right.mean * edge_mean
        relative_variance = edge_rel_var
        if left.mean > 0:
            relative_variance += left.variance / (left.mean * left.mean)
        if right.mean > 0:
            relative_variance += right.variance / (right.mean * right.mean)
        variance = mean * mean * relative_variance
        aliases = node.leaf_aliases()
        share = variance / len(aliases)
        return NodeSelectivity(
            op_id=node.op_id,
            mean=min(mean, 1.0),
            variance=variance,
            var_components={alias: share for alias in aliases},
            leaf_aliases=aliases,
            sample_sizes={},
            source="histogram",
        )

    def _filter(self, node, per_node) -> NodeSelectivity:
        child = self._resolve(per_node, node.children[0].op_id)
        # Cross-table comparisons: the PostgreSQL-style default with
        # order-of-magnitude uncertainty.
        mean = child.mean
        relative_variance = 0.0
        if child.mean > 0:
            relative_variance = child.variance / (child.mean * child.mean)
        num_predicates = len(node.scan_predicates) + len(node.compare_predicates)
        for _ in range(num_predicates):
            mean *= 1.0 / 3.0
            relative_variance += UNRESOLVED_RELATIVE_VARIANCE
        variance = mean * mean * relative_variance
        aliases = node.leaf_aliases()
        share = variance / len(aliases)
        return NodeSelectivity(
            op_id=node.op_id,
            mean=min(mean, 1.0),
            variance=variance,
            var_components={alias: share for alias in aliases},
            leaf_aliases=aliases,
            sample_sizes={},
            source="histogram",
        )

    @staticmethod
    def _resolve(per_node, op_id: int) -> NodeSelectivity:
        node = per_node[op_id]
        while node.alias_of is not None:
            node = per_node[node.alias_of]
        return node
