"""Sample tables: offline tuple-level samples with provenance identifiers.

Samples are taken offline and stored as materialized views (Section
3.2.2). Tuple-level partitioning makes each "block" one tuple, so the
estimator's cross-product of blocks reduces to a cross-product of
tuples, and the provenance identifier of a sample tuple is simply its
position in the sample table. Several independent sample copies per
relation support the Lemma-3 workaround (use a different sample table
for each appearance of a shared relation).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SamplingError
from ..storage import Database
from ..storage.schema import PAGE_SIZE_BYTES
from ..util import ensure_rng

__all__ = ["SampleDatabase"]

#: Sample tables smaller than this are pointless for variance estimation
#: (the paper sets S_1^2 = 0; we simply refuse to go below 2 rows).
MIN_SAMPLE_ROWS = 2

_database_tokens = itertools.count()


def _database_token(database: Database) -> int:
    """A process-unique, never-recycled identity for a Database instance."""
    token = getattr(database, "_sample_fingerprint_token", None)
    if token is None:
        token = next(_database_tokens)
        database._sample_fingerprint_token = token
    return token


@dataclass
class SampleDatabase:
    """Per-table simple random samples (without replacement), in copies."""

    database: Database
    sampling_ratio: float
    num_copies: int = 2
    seed: int = 0
    _samples: dict[tuple[str, int], np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 < self.sampling_ratio <= 1.0:
            raise SamplingError(
                f"sampling ratio must be in (0, 1], got {self.sampling_ratio}"
            )
        if self.num_copies < 1:
            raise SamplingError("need at least one sample copy")
        rng = ensure_rng(self.seed)
        for name in self.database.table_names:
            table = self.database.table(name)
            size = self.sample_size(name)
            for copy in range(self.num_copies):
                indices = rng.choice(table.num_rows, size=size, replace=False)
                self._samples[(name, copy)] = np.sort(indices)

    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """A hashable identity for caching artifacts derived from this
        sample set: the underlying database instance plus every parameter
        that determines which tuples were drawn. Two SampleDatabase
        instances with equal fingerprints hold identical samples. The
        database is identified by a monotonically assigned token (not
        ``id()``, which the allocator recycles after garbage collection,
        and not the object itself, which is unhashable)."""
        return (
            _database_token(self.database),
            self.sampling_ratio,
            self.num_copies,
            self.seed,
        )

    def sample_size(self, table_name: str) -> int:
        """Number of sample tuples (= sampling steps n) for a table."""
        rows = self.database.table(table_name).num_rows
        return max(MIN_SAMPLE_ROWS, min(rows, math.ceil(rows * self.sampling_ratio)))

    def sample_indices(self, table_name: str, copy: int = 0) -> np.ndarray:
        try:
            return self._samples[(table_name, copy)]
        except KeyError:
            raise SamplingError(
                f"no sample copy {copy} for table {table_name!r}"
            ) from None

    def sample_column(self, table_name: str, column: str, copy: int = 0) -> np.ndarray:
        table = self.database.table(table_name)
        return table.column(column)[self.sample_indices(table_name, copy)]

    def sample_pages(self, table_name: str) -> int:
        """Pages occupied by one sample table (for the overhead metric)."""
        table = self.database.table(table_name)
        size = self.sample_size(table_name)
        total_bytes = size * table.schema.row_width_bytes
        return max(1, math.ceil(total_bytes / PAGE_SIZE_BYTES))

    def assign_copies(self, alias_tables: dict[str, str]) -> dict[str, int]:
        """Give each alias of a repeated table its own sample copy."""
        seen: dict[str, int] = {}
        assignment: dict[str, int] = {}
        for alias in sorted(alias_tables):
            table = alias_tables[alias]
            occurrence = seen.get(table, 0)
            if occurrence >= self.num_copies:
                raise SamplingError(
                    f"table {table!r} appears {occurrence + 1} times but only "
                    f"{self.num_copies} sample copies exist"
                )
            assignment[alias] = occurrence
            seen[table] = occurrence + 1
        return assignment
