"""Canonical sub-plan signatures for memoizing Algorithm-1 work.

:func:`repro.service.cache.plan_signature` identifies a *whole* planned
query exactly — including physical operator choices, since fitted cost
functions depend on them. The signatures here extend that idea downward
to individual sub-plans, but deliberately identify *less*: they name
exactly what the sampling pass of Algorithm 1 computes from a subtree,
and nothing more. Two subtrees with equal sampling signatures produce
sample intermediates with the same row multiset and the same
per-relation provenance counters, so every statistic Algorithm 1
derives from them (``rho_n``, the ``Q_{k,j}`` counters, ``S_n^2`` and
its per-relation components) is bitwise identical.

Invariances, each justified by how the estimator executes:

* **op_id free** — node numbering never reaches the sample run;
* **join input order** — ``equijoin_pairs`` emits the same pair
  multiset either way round, and all downstream statistics are
  position-bincounts, which do not depend on row order;
* **join algorithm** — hash/merge/nestloop all sample via the same
  equijoin (or cross-product) kernel;
* **scan access path** — a SeqScan predicate set and an IndexScan's
  index-plus-residual predicates select the same sample rows;
* **Sort/Materialize/Limit transparency** — those operators pass the
  child's intermediate through untouched, so a subtree signature skips
  them entirely (a merge-join candidate's sort does not defeat reuse).

What *is* captured: alias, base table, and sample-copy assignment per
scan (different copies hold different tuples), the full predicate
constants, and the equijoin key sets. Aggregates have no sample
intermediate (Algorithm 1 stops below them), so any subtree containing
one has no signature.
"""

from __future__ import annotations

from ..plan.physical import OpKind, PlanNode

__all__ = [
    "compose_signature",
    "filter_signature",
    "join_signature",
    "scan_signature",
    "subplan_signature",
]


def scan_signature(node: PlanNode, copy: int) -> str:
    """Signature of a scan's sample output: table sample + predicate set."""
    predicates = [str(p) for p in node.predicates]
    index_predicate = getattr(node, "index_predicate", None)
    if index_predicate is not None:
        predicates.append(str(index_predicate))
    predicates.sort()
    return f"scan[{node.alias}={node.table}#{copy}|{';'.join(predicates)}]"


def join_signature(
    keys: list[tuple[str, str]], left_signature: str, right_signature: str
) -> str:
    """Signature of an (equi- or cross-) join over two signed inputs.

    Key pairs and child signatures are sorted so that ``A JOIN B ON
    a.x = b.y`` and ``B JOIN A ON b.y = a.x`` — the same sample-space
    computation — share one signature. An empty key list is the cross
    join.
    """
    pairs = sorted("~".join(sorted(pair)) for pair in keys)
    first, second = sorted((left_signature, right_signature))
    return f"join[{','.join(pairs)}]({first},{second})"


def filter_signature(node: PlanNode, child_signature: str) -> str:
    """Signature of a filter applied to a signed input."""
    scan_parts = sorted(str(p) for p in node.scan_predicates)
    compare_parts = sorted(str(p) for p in node.compare_predicates)
    return (
        f"filter[{';'.join(scan_parts)}|{';'.join(compare_parts)}]"
        f"({child_signature})"
    )


def compose_signature(
    node: PlanNode, child_signatures: list[str | None], copies: dict[str, int]
) -> str | None:
    """One node's signature from its children's already-computed ones.

    The single composition rule shared by the recursive
    :func:`subplan_signature` and the estimator's incremental bottom-up
    pass — both must key the cache identically or entries get served
    under stale keys. Returns None when the subtree has no sample
    intermediate (aggregates and everything above them) or the operator
    is not one the sampling pass recognizes.
    """
    if node.is_scan:
        return scan_signature(node, copies.get(node.alias, 0))
    if any(signature is None for signature in child_signatures):
        return None
    if node.is_join:
        return join_signature(node.keys, child_signatures[0], child_signatures[1])
    if node.kind is OpKind.FILTER:
        return filter_signature(node, child_signatures[0])
    if node.kind in (OpKind.SORT, OpKind.MATERIALIZE, OpKind.LIMIT):
        return child_signatures[0]
    return None


def subplan_signature(node: PlanNode, copies: dict[str, int]) -> str | None:
    """The canonical sampling signature of a whole subtree.

    ``copies`` maps each alias to its assigned sample copy (from
    :meth:`~repro.sampling.sample_db.SampleDatabase.assign_copies`);
    unlisted aliases default to copy 0. Returns None for subtrees whose
    sample intermediate does not exist (anything containing an
    aggregate) or whose operators the sampling pass does not recognize.
    """
    child_signatures = [subplan_signature(child, copies) for child in node.children]
    return compose_signature(node, child_signatures, copies)
