"""Uncertainty-aware scheduling: dispatch by predicted time + variance.

The paper's machinery predicts a *distribution* of running times, not a
point estimate. This package turns that distribution outward, onto the
serving tier's own traffic: instead of the blind bounded-in-flight
FIFO admission the HTTP front door shipped with, an admission layer can
*defer* excess requests into a :class:`PredictedCostQueue` — each
annotated, at enqueue time, with the engine's predicted mean/std for
its SQL (one cached-prepare-path prediction) — and dispatch them under
a pluggable :class:`SchedulingPolicy`:

* ``fifo`` — arrival order (the compatibility twin of the default
  non-queueing admission);
* ``edf-slack`` — earliest effective deadline first, each deadline
  shrunk by an uncertainty slack ``k·std`` so less-certain predictions
  start sooner (:class:`EdfSlackPolicy`);
* ``budget-fair`` — deficit round-robin across tenants in
  **predicted-seconds** (:class:`TenantBudgets`), so a tenant's share
  is measured in engine time the predictor expects to spend, not in
  request counts.

The serving integration — the queueing
:class:`~repro.serving.admission.SchedulingAdmission` policy, the
``scheduler`` stats section, and the ``deadline_ms``/``priority`` v2
wire fields — lives in :mod:`repro.serving.admission` and
:mod:`repro.api.wire`; this package is transport-agnostic and depends
only on the error taxonomy. See ``docs/scheduling.md``.
"""

from .budgets import TenantBudgets
from .policy import (
    DEFAULT_SLACK,
    SCHEDULER_POLICIES,
    BudgetFairPolicy,
    EdfSlackPolicy,
    FifoPolicy,
    SchedulingPolicy,
    make_policy,
)
from .queue import CostEstimate, PredictedCostQueue, QueueEntry

__all__ = [
    "DEFAULT_SLACK",
    "SCHEDULER_POLICIES",
    "BudgetFairPolicy",
    "CostEstimate",
    "EdfSlackPolicy",
    "FifoPolicy",
    "PredictedCostQueue",
    "QueueEntry",
    "SchedulingPolicy",
    "TenantBudgets",
    "make_policy",
]
