"""Per-tenant fair sharing in predicted-seconds: deficit round-robin.

:class:`TenantBudgets` implements the classic deficit-round-robin
scheduler with one twist — the "packet length" charged against a
tenant's deficit is the request's **predicted mean running time**, not
a byte count or a request count. A tenant issuing ten 2 ms dashboard
lookups and a tenant issuing one 20 ms cold prepare consume the same
budget, which is the fairness a prediction-serving tier actually wants:
equal shares of *predicted engine time*.

Mechanics (Shreedhar & Varghese): tenants sit on a rotation in
first-seen order; *arriving* at a tenant adds ``quantum_seconds`` to
its deficit once, and the tenant then dispatches head requests (charge
taken at dispatch) for as long as the carried deficit covers the next
head's predicted mean — when it no longer does, the rotation moves on,
carrying the remainder. A tenant with nothing pending loses its
deficit — hoarding credit while idle would let it monopolize the queue
after a burst.

All methods assume the caller holds the owning admission lock; the
class keeps no lock of its own.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..errors import SchedulerError
from .queue import QueueEntry

__all__ = ["TenantBudgets"]

#: Safety bound on round-robin visits inside one selection. The loop
#: terminates because every visit adds a positive quantum, but a
#: misconfigured (tiny) quantum against a huge predicted cost should
#: fail loudly rather than spin.
_MAX_VISITS = 1_000_000


class TenantBudgets:
    """Deficit-round-robin state over tenants, in predicted-seconds."""

    def __init__(self, quantum_seconds: float = 0.05):
        if not (math.isfinite(quantum_seconds) and quantum_seconds > 0):
            raise SchedulerError(
                f"quantum_seconds must be > 0, got {quantum_seconds}"
            )
        self.quantum_seconds = quantum_seconds
        self._deficits: dict[str, float] = {}
        self._rotation: list[str] = []
        self._cursor = 0
        # True when the cursor has just *arrived* at its tenant — the
        # one moment the tenant's quantum is granted. Stays False while
        # the tenant keeps dispatching on carried deficit.
        self._fresh_visit = True

    # -- selection ---------------------------------------------------------
    def choose(self, entries: Sequence[QueueEntry]) -> QueueEntry:
        """The next entry to dispatch under deficit round-robin.

        Within a tenant, requests go in arrival order (lowest ``seq``)
        — fairness is *between* tenants; reordering inside one would
        buy nothing. Deterministic given the entries and this object's
        state: the rotation advances identically however many threads
        feed the queue, because the caller serializes selections under
        the admission lock.
        """
        if not entries:
            raise SchedulerError("cannot choose from an empty queue")
        heads: dict[str, QueueEntry] = {}
        for entry in entries:
            head = heads.get(entry.tenant)
            if head is None or entry.seq < head.seq:
                heads[entry.tenant] = entry
        self._sync_rotation(heads)
        for _ in range(_MAX_VISITS):
            tenant = self._rotation[self._cursor]
            head = heads.get(tenant)
            if head is None:
                # Idle tenants drop out of the visit (and, via
                # _sync_rotation, lose their deficit) without consuming
                # a quantum.
                self._advance()
                continue
            if self._fresh_visit:
                self._deficits[tenant] = (
                    self._deficits.get(tenant, 0.0) + self.quantum_seconds
                )
                self._fresh_visit = False
            if head.estimate.mean <= self._deficits[tenant]:
                # Cursor stays put with the visit marked stale: the
                # tenant keeps its turn while the carried deficit still
                # covers its next head, and only then does the rotation
                # move on.
                return head
            self._advance()
        raise SchedulerError(
            "deficit round-robin failed to converge; quantum_seconds "
            f"{self.quantum_seconds} is too small for the queued costs"
        )

    def charge(self, entry: QueueEntry) -> None:
        """Debit a dispatched entry's predicted mean from its tenant."""
        if entry.tenant in self._deficits:
            self._deficits[entry.tenant] -= entry.estimate.mean

    def clear(self) -> None:
        """Zero all state (a drained queue owes nobody anything)."""
        self._deficits.clear()
        self._rotation.clear()
        self._cursor = 0
        self._fresh_visit = True

    # -- introspection -----------------------------------------------------
    def deficit(self, tenant: str) -> float:
        """The tenant's current deficit in predicted-seconds."""
        return self._deficits.get(tenant, 0.0)

    def tenants(self) -> tuple[str, ...]:
        """The tenants currently on the rotation, in rotation order."""
        return tuple(self._rotation)

    # -- internals ---------------------------------------------------------
    def _sync_rotation(self, heads: dict[str, QueueEntry]) -> None:
        """Admit new tenants to the rotation; drop idle ones' deficits.

        New tenants join in first-seen order — the order their first
        queued request arrived in (lowest head ``seq`` first), so the
        rotation is a pure function of arrival history, not dict
        iteration luck.
        """
        for tenant in sorted(
            (t for t in heads if t not in self._rotation),
            key=lambda t: heads[t].seq,
        ):
            self._rotation.append(tenant)
        for tenant in list(self._deficits):
            if tenant not in heads:
                del self._deficits[tenant]
        if self._cursor >= len(self._rotation):
            self._cursor = 0
            self._fresh_visit = True

    def _advance(self) -> None:
        """Move the cursor to the next tenant, opening a fresh visit."""
        self._cursor = (self._cursor + 1) % len(self._rotation)
        self._fresh_visit = True
