"""The scheduling-policy catalogue: who leaves the queue next.

A :class:`SchedulingPolicy` is a pure dispatch-order strategy over the
entries a :class:`~repro.scheduler.queue.PredictedCostQueue` holds.
Three implementations (see ``docs/scheduling.md``):

* :class:`FifoPolicy` — arrival order, the behavioral twin of the
  pre-scheduler :class:`~repro.serving.admission.BoundedInFlight` path
  (which remains the actual default wiring and never queues at all);
* :class:`EdfSlackPolicy` — earliest *effective* deadline first, where
  each request's deadline is pulled **earlier** by an uncertainty
  slack ``k·std``: of two requests due at the same instant, the one
  whose predicted time is less certain must start sooner to hold the
  same confidence of finishing in budget. ``k`` is the config's
  ``scheduler_slack`` (default 1.645, the one-sided 95% normal
  quantile — the paper's distributions are what make this number mean
  something);
* :class:`BudgetFairPolicy` — deficit round-robin across tenants in
  predicted-seconds (:class:`~repro.scheduler.budgets.TenantBudgets`),
  arrival order within a tenant.

Every policy breaks exact ties by arrival sequence number, so dispatch
order is a deterministic function of the queue's contents — invariant
to how many threads fed it.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..errors import SchedulerError
from .budgets import TenantBudgets
from .queue import QueueEntry

__all__ = [
    "DEFAULT_SLACK",
    "SCHEDULER_POLICIES",
    "BudgetFairPolicy",
    "EdfSlackPolicy",
    "FifoPolicy",
    "SchedulingPolicy",
    "make_policy",
]

#: Policy names selectable via ``SessionConfig.scheduler_policy`` /
#: ``repro serve --scheduler``.
SCHEDULER_POLICIES = ("fifo", "edf-slack", "budget-fair")

#: One-sided 95% normal quantile: the default uncertainty slack factor.
DEFAULT_SLACK = 1.645


class SchedulingPolicy:
    """Selects the next entry to dispatch from a non-empty queue."""

    #: The policy's stable wire name (reported in the stats section).
    name: str = "?"

    def select(self, entries: Sequence[QueueEntry]) -> QueueEntry:
        """The entry to dispatch next; ``entries`` is never empty."""
        raise NotImplementedError

    def on_dispatch(self, entry: QueueEntry) -> None:
        """Hook: ``entry`` was removed from the queue and granted a slot."""

    def on_drained(self) -> None:
        """Hook: the queue just became empty (reset any carried state)."""


class FifoPolicy(SchedulingPolicy):
    """Arrival order — the queueing twin of bounded-in-flight admission."""

    name = "fifo"

    def select(self, entries: Sequence[QueueEntry]) -> QueueEntry:
        """The oldest entry by arrival sequence."""
        return min(entries, key=lambda entry: entry.seq)


class EdfSlackPolicy(SchedulingPolicy):
    """Earliest effective deadline first, shrunk by ``slack * std``.

    The effective deadline of an entry is::

        arrival + deadline - slack * predicted_std

    Higher ``priority`` always dispatches first; within a priority
    class the earliest effective deadline wins; exact ties break by
    arrival sequence.
    """

    name = "edf-slack"

    def __init__(self, slack: float = DEFAULT_SLACK):
        if not (math.isfinite(slack) and slack >= 0):
            raise SchedulerError(f"slack must be >= 0, got {slack}")
        self.slack = slack

    def effective_deadline(self, entry: QueueEntry) -> float:
        """The entry's deadline pulled earlier by the uncertainty slack."""
        return entry.absolute_deadline() - self.slack * entry.estimate.std

    def select(self, entries: Sequence[QueueEntry]) -> QueueEntry:
        """Highest priority, then earliest effective deadline, then seq."""
        return min(
            entries,
            key=lambda entry: (
                -entry.priority,
                self.effective_deadline(entry),
                entry.seq,
            ),
        )


class BudgetFairPolicy(SchedulingPolicy):
    """Per-tenant deficit round-robin in predicted-seconds."""

    name = "budget-fair"

    def __init__(self, quantum_seconds: float = 0.05):
        self.budgets = TenantBudgets(quantum_seconds)

    def select(self, entries: Sequence[QueueEntry]) -> QueueEntry:
        """The head of the tenant whose deficit covers its head's cost."""
        return self.budgets.choose(entries)

    def on_dispatch(self, entry: QueueEntry) -> None:
        """Debit the dispatched entry's predicted mean from its tenant."""
        self.budgets.charge(entry)

    def on_drained(self) -> None:
        """An empty queue owes nobody anything: zero the DRR state."""
        self.budgets.clear()


def make_policy(
    name: str,
    *,
    slack: float = DEFAULT_SLACK,
    quantum_seconds: float = 0.05,
) -> SchedulingPolicy:
    """Build the named policy with the config's tuning knobs."""
    if name == "fifo":
        return FifoPolicy()
    if name == "edf-slack":
        return EdfSlackPolicy(slack)
    if name == "budget-fair":
        return BudgetFairPolicy(quantum_seconds)
    raise SchedulerError(
        f"unknown scheduling policy {name!r}; "
        f"expected one of {', '.join(SCHEDULER_POLICIES)}"
    )
