"""The predicted-cost queue: deferred requests with their cost estimates.

A :class:`PredictedCostQueue` holds the requests an admission layer has
deferred rather than refused, each annotated with the prediction
engine's own estimate of its running time — the
:class:`CostEstimate` ``(mean, std)`` obtained by running the cached
prepare path at enqueue time. Dispatch order is delegated to a
:class:`~repro.scheduler.policy.SchedulingPolicy`; the queue itself
only stores entries, tracks its predicted-seconds backlog, and memoizes
cost estimates per SQL string so a recurring query is estimated once.

Thread model: the estimate cache has its own short-held lock (the
estimator itself — a prediction through the engine — always runs
*outside* it), while every structural mutation (:meth:`push`,
:meth:`pop_next`, :meth:`remove`) must happen under the owning
admission policy's lock. That split keeps the expensive prepare path
out of every lock this module knows about.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import SchedulerError

__all__ = ["CostEstimate", "PredictedCostQueue", "QueueEntry"]

#: Bound on the memoized per-SQL estimate cache. Estimates are two
#: floats, so the bound exists to keep pathological never-repeating
#: traffic from growing the dict without limit, not to save memory on
#: realistic working sets.
DEFAULT_ESTIMATE_CACHE_SIZE = 1024


@dataclass(frozen=True)
class CostEstimate:
    """The prediction engine's cost guess for one queued request.

    ``mean``/``std`` are the predicted running-time distribution's
    moments in seconds (zero when the request could not be estimated —
    a malformed statement still flows through the queue so the inner
    app can produce its structured error).
    """

    mean: float = 0.0
    std: float = 0.0


@dataclass
class QueueEntry:
    """One deferred request awaiting dispatch.

    ``seq`` is the arrival sequence number (assigned by :meth:`push`,
    strictly increasing) — the stable tie-breaker every policy falls
    back to, which is what makes dispatch order invariant to thread
    scheduling. ``deadline_seconds`` is the client's latency budget
    relative to ``arrival_seconds``; ``granted`` flips under the
    admission lock when a dispatcher hands this entry a slot, and
    ``event`` wakes the thread parked in admit.
    """

    arrival_seconds: float
    tenant: str
    deadline_seconds: float
    priority: int
    estimate: CostEstimate
    seq: int = -1
    event: threading.Event = field(default_factory=threading.Event)
    granted: bool = False

    def absolute_deadline(self) -> float:
        """Arrival-relative absolute deadline in queue-clock seconds."""
        return self.arrival_seconds + self.deadline_seconds


class PredictedCostQueue:
    """Deferred requests plus a memoized per-SQL cost estimator.

    ``estimator`` maps a SQL string to ``(mean, std)`` — typically
    :meth:`repro.api.session.Session.estimate`, which runs the cached
    prepare path. Estimation failures are absorbed into a zero
    estimate: admission must never reject what the serving app would
    answer with a structured error body.
    """

    def __init__(
        self,
        estimator: Callable[[str], tuple[float, float]] | None = None,
        cache_size: int = DEFAULT_ESTIMATE_CACHE_SIZE,
    ):
        if cache_size < 1:
            raise SchedulerError(
                f"estimate cache_size must be >= 1, got {cache_size}"
            )
        self._estimator = estimator
        self._cache_size = cache_size
        self._cache: dict[str, CostEstimate] = {}
        self._cache_lock = threading.Lock()
        self._entries: list[QueueEntry] = []
        self._next_seq = 0

    # -- cost estimation (thread-safe, runs outside the admission lock) ----
    def estimate(self, sql: str | None) -> CostEstimate:
        """The memoized cost estimate for ``sql`` (zero when unknown)."""
        if sql is None or self._estimator is None:
            return CostEstimate()
        with self._cache_lock:
            cached = self._cache.get(sql)
        if cached is not None:
            return cached
        try:
            mean, std = self._estimator(sql)
            estimate = CostEstimate(mean=float(mean), std=float(std))
        except Exception:  # noqa: BLE001 — the serving app owns the error
            estimate = CostEstimate()
        with self._cache_lock:
            if len(self._cache) >= self._cache_size:
                # Drop the oldest insertion; dict order makes this FIFO.
                self._cache.pop(next(iter(self._cache)))
            self._cache[sql] = estimate
        return estimate

    def estimate_cache_entries(self) -> int:
        """How many SQL strings currently have a memoized estimate."""
        with self._cache_lock:
            return len(self._cache)

    # -- structure (caller must hold the owning admission lock) ------------
    def push(self, entry: QueueEntry) -> QueueEntry:
        """Append ``entry``, assigning its arrival sequence number."""
        entry.seq = self._next_seq
        self._next_seq += 1
        self._entries.append(entry)
        return entry

    def pop_next(self, policy) -> QueueEntry | None:
        """Remove and return the entry ``policy`` selects, or None."""
        if not self._entries:
            return None
        entry = policy.select(self._entries)
        self._entries.remove(entry)
        policy.on_dispatch(entry)
        if not self._entries:
            policy.on_drained()
        return entry

    def remove(self, entry: QueueEntry, policy=None) -> None:
        """Withdraw a timed-out entry (no-op if already dispatched).

        When the withdrawal empties the queue, ``policy`` (if given) is
        told it drained so round-robin/deficit state resets exactly as
        it does on a dispatch that empties the queue.
        """
        try:
            self._entries.remove(entry)
        except ValueError:
            return
        if policy is not None and not self._entries:
            policy.on_drained()

    def depth(self) -> int:
        """How many requests are currently deferred."""
        return len(self._entries)

    def predicted_seconds(self) -> float:
        """The queue's backlog in predicted seconds (sum of means)."""
        return sum(entry.estimate.mean for entry in self._entries)
