"""Batch prediction serving on top of the uncertainty predictor."""

from .cache import CacheStats, PreparedCache, plan_signature
from .service import (
    BatchPrediction,
    PredictionService,
    QueryPrediction,
    ServiceStats,
)

__all__ = [
    "BatchPrediction",
    "CacheStats",
    "PredictionService",
    "PreparedCache",
    "QueryPrediction",
    "ServiceStats",
    "plan_signature",
]
