"""Batch prediction serving on top of the uncertainty predictor."""

from .cache import CacheStats, PreparedCache, plan_signature, subplan_signature
from .service import (
    BatchPrediction,
    PredictionService,
    QueryFailure,
    QueryPrediction,
    ServiceReport,
    ServiceStats,
)

__all__ = [
    "BatchPrediction",
    "CacheStats",
    "PredictionService",
    "PreparedCache",
    "QueryFailure",
    "QueryPrediction",
    "ServiceReport",
    "ServiceStats",
    "plan_signature",
    "subplan_signature",
]
