"""Batch prediction serving on top of the uncertainty predictor."""

from .cache import (
    CacheStats,
    PreparedCache,
    plan_signature,
    plan_signature_hash,
    subplan_signature,
)
from .kernels import (
    BATCH_KERNELS,
    BatchAssembly,
    BatchPlan,
    assemble_batch,
    batch_intervals,
    build_batch_plan,
    segment_sum,
)
from .service import (
    BatchPrediction,
    PredictionService,
    QueryFailure,
    QueryPrediction,
    ServiceReport,
    ServiceStats,
)

__all__ = [
    "BATCH_KERNELS",
    "BatchAssembly",
    "BatchPlan",
    "BatchPrediction",
    "CacheStats",
    "PredictionService",
    "PreparedCache",
    "QueryFailure",
    "QueryPrediction",
    "ServiceReport",
    "ServiceStats",
    "assemble_batch",
    "batch_intervals",
    "build_batch_plan",
    "plan_signature",
    "plan_signature_hash",
    "segment_sum",
    "subplan_signature",
]
