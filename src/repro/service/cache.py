"""Caching of prepared prediction artifacts.

A :class:`~repro.core.predictor.PreparedPrediction` (sampling estimates
+ fitted cost functions + the vectorized assembler hanging off it) is
the expensive part of a prediction, and it is fully determined by

* the physical plan — shape *and* predicate constants, since the
  sampling pass evaluates the actual predicates over the sample tuples;
* the sample set it is estimated on (database identity, sampling ratio,
  number of copies, seed);
* the preparation parameters (grid width, estimator method, GEE flag).

:func:`plan_signature` renders the first item into a stable string;
:class:`PreparedCache` is a small LRU keyed by the full triple. Repeated
queries — dashboards re-issuing identical SQL, template workloads with
recurring parameter bindings — skip planning's expensive tail entirely.

Two granularities of signature exist. :func:`plan_signature` (here) is
*exact*: it distinguishes physical operator choices and join input
order, because fitted cost functions depend on them. Its per-subtree
extension, :func:`~repro.sampling.signature.subplan_signature`
(re-exported here), identifies only what Algorithm 1's sampling pass
computes and is deliberately invariant to op ids, join input order, and
the physical operator flavor — it keys the
:class:`~repro.sampling.engine.SamplingEngine`'s memoized sample
intermediates, which *are* interchangeable across those differences.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import replace

from ..caching import CacheStats
from ..core.predictor import PreparedPrediction
from ..optimizer.optimizer import PlannedQuery
from ..plan.physical import OpKind, PlanNode
from ..sampling.signature import subplan_signature

__all__ = [
    "CacheStats",
    "PreparedCache",
    "plan_signature",
    "plan_signature_hash",
    "subplan_signature",
]


def _node_signature(node: PlanNode) -> str:
    """One line per operator: label plus everything prepare depends on."""
    parts = [node.label()]
    predicates = getattr(node, "predicates", None)
    if predicates:
        parts.append(";".join(str(p) for p in predicates))
    index_predicate = getattr(node, "index_predicate", None)
    if index_predicate is not None:
        parts.append(f"idx:{index_predicate}")
    if node.kind is OpKind.FILTER:
        parts.append(";".join(str(p) for p in node.scan_predicates))
        parts.append(";".join(str(p) for p in node.compare_predicates))
    if node.kind is OpKind.SORT:
        parts.append(";".join(f"{col}:{desc}" for col, desc in node.keys))
    if node.kind is OpKind.AGGREGATE:
        # label() carries only group keys and output names; the aggregate
        # mode — function, DISTINCT flag, argument expression — changes
        # the prepared artifacts too and must not collide.
        parts.append(
            ";".join(
                f"{spec.func}:{'distinct' if spec.distinct else 'all'}:"
                f"{spec.argument.node if spec.argument is not None else '*'}"
                for spec in node.aggregates
            )
        )
    if node.kind is OpKind.LIMIT:
        parts.append(f"limit:{node.count}")
    return "|".join(parts)


#: Attribute used to intern ``(root, signature, crc32)`` on the planned
#: query itself, keyed by root identity like
#: :meth:`~repro.core.predictor.PreparedPrediction.assembler`'s cache.
_SIGNATURE_ATTR = "cached_plan_signature"


def plan_signature(planned: PlannedQuery) -> str:
    """A stable identity for a planned query's prepare-relevant content.

    Two planned queries with equal signatures run the same operators with
    the same predicates over the same aliases, so their prepared
    artifacts are interchangeable.

    The rendered string (and its CRC-32, see :func:`plan_signature_hash`)
    is interned on ``planned`` so every consumer — the
    :class:`PreparedCache` key, the routing ring, the batch interner —
    reads the *same* string and hash and can never diverge. The cache is
    invalidated if ``planned.root`` is replaced.
    """
    cached = getattr(planned, _SIGNATURE_ATTR, None)
    if cached is not None and cached[0] is planned.root:
        return cached[1]
    lines = [
        f"{depth}:{_node_signature(node)}"
        for node, depth in _walk_with_depth(planned.root, 0)
    ]
    aliases = ",".join(
        f"{alias}={table}" for alias, table in sorted(planned.alias_tables.items())
    )
    text = "\n".join(lines) + "\n@" + aliases
    try:
        setattr(
            planned,
            _SIGNATURE_ATTR,
            (planned.root, text, zlib.crc32(text.encode("utf-8"))),
        )
    except (AttributeError, TypeError):
        pass  # frozen/slotted stand-ins still get a (non-interned) answer
    return text


def plan_signature_hash(planned: PlannedQuery) -> int:
    """The CRC-32 of :func:`plan_signature`, interned alongside it.

    CRC-32 rather than ``hash()`` because all worker processes must
    agree (Python randomizes string hashes per process). This is the
    single definition of "the hash of a plan's signature": the routing
    ring and the batch kernel's interner both call it, so a change to
    the signature format can never leave them disagreeing.
    """
    cached = getattr(planned, _SIGNATURE_ATTR, None)
    if cached is not None and cached[0] is planned.root:
        return cached[2]
    text = plan_signature(planned)
    cached = getattr(planned, _SIGNATURE_ATTR, None)
    if cached is not None and cached[0] is planned.root:
        return cached[2]
    return zlib.crc32(text.encode("utf-8"))


def _walk_with_depth(node: PlanNode, depth: int):
    yield node, depth
    for child in node.children:
        yield from _walk_with_depth(child, depth + 1)


class PreparedCache:
    """A bounded LRU mapping cache keys to PreparedPrediction artifacts."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"cache needs a positive maxsize, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[tuple, PreparedPrediction] = OrderedDict()
        # Guards entries and stats together so concurrent monitoring
        # (Session.stats() during traffic) never reads a torn CacheStats.
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> PreparedPrediction | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, prepared: PreparedPrediction) -> None:
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            if len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def snapshot(self) -> tuple[CacheStats, int]:
        """An atomic ``(stats copy, entry count)`` pair for reporting."""
        with self._lock:
            return replace(self.stats), len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
