"""Cross-query SoA batch kernels, bitwise-locked to the scalar path.

The scalar batch path loops queries in python and, per query, fans
variants x mpls through :meth:`~repro.core.variance.VectorizedAssembler
.assemble` — every call redoing the monomial-to-unit-space kernel
contraction (two MxM matrix products) and paying python call overhead
per (query, variant, mpl) combination. This module restructures the
whole batch as structure-of-arrays:

1. :func:`build_batch_plan` interns every query's plan signature (via
   :func:`~repro.service.cache.plan_signature_hash`, the same hash the
   prepared cache and routing ring key on), dedups duplicate plans, and
   stacks all distinct plans' node selectivity parameters — the outputs
   of Algorithm 1's sampling pass — into ragged arrays with per-plan
   segment offsets;
2. :func:`assemble_batch` evaluates Algorithm-3 variance assembly for
   every (plan, variant, mpl) combination over shared ``(P, V, L)``
   arrays, pulling each plan's cached unit-space moments
   (:meth:`~repro.core.variance.VectorizedAssembler.unit_moments`) once
   per *selectivity-option class* — variants differing only in
   ``include_cost_unit_variance`` share bit-identical moments — instead
   of re-contracting per (variant, mpl);
3. :func:`batch_intervals` evaluates every confidence-interval bound
   for the whole batch with vectorized quantile math.

**The bitwise contract.** Every number this module produces is
bit-identical to what the scalar path
(:meth:`~repro.core.variance.VectorizedAssembler.assemble` +
:meth:`~repro.mathstats.normal.NormalDistribution.interval` +
:meth:`~repro.core.predictor.PredictionResult.confidence_interval`)
produces for the same inputs — ``tests/test_kernels.py`` enforces this
differentially over hundreds of randomized batches. That constraint
shapes the implementation:

* Row-wise reductions use formulations verified bit-identical to their
  scalar counterparts on this stack: ``(W[None] * C).reshape(P, U*U)
  .sum(axis=1)`` matches per-plan ``(W * C).sum()`` because numpy's
  pairwise summation order over a C-contiguous (U, U) block is the same
  either way; elementwise broadcasting, ``np.sqrt``, and
  ``np.where``-based clamps match their scalar ``math`` equivalents
  exactly.
* The two length-U unit-space contractions (``mu @ g`` and
  ``sigma2 @ (g * g)``) stay per-plan ``np.dot`` calls inside a small
  python loop: BLAS ddot accumulates with FMA, and no pure-numpy
  batched formulation (matmul, einsum, elementwise+sum under any
  association order) reproduces its bits — only the same op on the
  same operands does. See docs/service.md.
* ``np.add.reduceat`` is *not* bitwise-equal to ``.sum()`` on floats
  (sequential vs pairwise accumulation), so :func:`segment_sum` is
  reserved for integer bookkeeping — segment counts and validation
  flags — where every summation order is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.special import erfinv

from ..core.concurrency import ConcurrentPredictor
from ..core.predictor import VARIANT_OPTIONS, PreparedPrediction, Variant
from ..errors import PredictionError
from ..optimizer.cost_model import COST_UNIT_NAMES
from ..optimizer.optimizer import PlannedQuery
from .cache import plan_signature, plan_signature_hash

__all__ = [
    "BATCH_KERNELS",
    "BatchAssembly",
    "BatchPlan",
    "assemble_batch",
    "batch_intervals",
    "build_batch_plan",
    "segment_sum",
]

#: The batch execution strategies ``PredictionService.predict_batch``
#: accepts: "scalar" (the per-query reference loop, the default) and
#: "soa" (this module).
BATCH_KERNELS = ("scalar", "soa")

_SQRT2 = math.sqrt(2)


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` split at ``offsets`` (len P+1).

    Built on ``np.add.reduceat``, with the two reduceat edge cases
    handled explicitly: an empty segment (``offsets[i] == offsets[i+1]``)
    would return ``values[offsets[i]]`` instead of 0, and a segment
    starting at ``len(values)`` would raise. Intended for *integer*
    arrays (counts, flags), where summation order cannot change the
    result; float segment sums must not be compared bitwise against
    ``.sum()`` (pairwise vs sequential accumulation).
    """
    offsets = np.asarray(offsets, dtype=np.intp)
    counts = np.diff(offsets)
    if (counts < 0).any() or (offsets[0] if len(offsets) else 0) != 0:
        raise ValueError(f"offsets must start at 0 and be nondecreasing: {offsets}")
    if values.size == 0 or (counts == 0).any():
        # reduceat cannot express empty segments; exact prefix-sum
        # fallback (integer arithmetic is associativity-free).
        prefix = np.concatenate([[0], np.cumsum(values)])
        return prefix[offsets[1:]] - prefix[offsets[:-1]]
    return np.add.reduceat(values, offsets[:-1])


@dataclass
class BatchPlan:
    """One batch's distinct plans in structure-of-arrays form.

    ``planned``/``prepared``/``signatures``/``signature_hashes`` hold
    one entry per *distinct* plan signature; ``query_slots`` maps each
    submitted query back to its slot. The node arrays are the ragged
    concatenation of every distinct plan's per-operator selectivity
    parameters (Algorithm 1's outputs), segmented by ``node_offsets``:
    plan ``p`` owns ``node_means[node_offsets[p]:node_offsets[p + 1]]``.
    """

    planned: list[PlannedQuery]
    prepared: list[PreparedPrediction]
    signatures: list[str]
    #: CRC-32 of each distinct signature — the same value the routing
    #: ring and prepared-cache keying derive via ``plan_signature_hash``.
    signature_hashes: np.ndarray
    query_slots: np.ndarray
    node_offsets: np.ndarray
    node_means: np.ndarray
    node_variances: np.ndarray

    def __len__(self) -> int:
        return len(self.planned)

    @property
    def num_queries(self) -> int:
        return len(self.query_slots)

    @property
    def node_counts(self) -> np.ndarray:
        """Nodes per distinct plan (``np.diff`` of the segment offsets)."""
        return np.diff(self.node_offsets)

    def padded_node_means(self, fill: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """``(padded, mask)``: the ragged node means as a dense (P, W) array.

        ``W`` is the widest plan's node count; ``mask[p, i]`` is True
        where ``padded[p, i]`` holds plan ``p``'s i-th node mean and
        False where it holds ``fill``.
        """
        counts = self.node_counts
        plans = len(self)
        width = int(counts.max()) if plans and counts.size else 0
        padded = np.full((plans, width), fill, dtype=self.node_means.dtype)
        mask = np.arange(width)[None, :] < counts[:, None]
        padded[mask] = self.node_means
        return padded, mask

    def validate(self) -> None:
        """Batch-wide sanity gate over the stacked node parameters.

        One vectorized pass flags non-finite means/variances and
        negative variances across *all* plans at once; offenders are
        localized back to their plan via integer :func:`segment_sum`
        over the flag array. A diagnostic for tests and debugging — the
        serving path does not run it, because the scalar path it must
        stay bitwise-identical to performs no such check.
        """
        flags = (
            ~np.isfinite(self.node_means)
            | ~np.isfinite(self.node_variances)
            | (self.node_variances < 0.0)
        ).astype(np.intp)
        if not flags.any():
            return
        per_plan = segment_sum(flags, self.node_offsets)
        bad = [int(slot) for slot in np.nonzero(per_plan)[0]]
        raise PredictionError(
            f"batch plan has invalid node parameters in plan slots {bad}"
        )


def build_batch_plan(
    entries: Sequence[tuple[PlannedQuery, PreparedPrediction]],
) -> BatchPlan:
    """Intern, dedup, and stack one batch's plans into a :class:`BatchPlan`.

    Dedup keys on the full interned signature *string* — the CRC-32 is
    carried alongside for ring placement but is never the dedup key, so
    a 32-bit collision between distinct plans can only misroute, never
    merge, them.
    """
    slots: dict[str, int] = {}
    planned_list: list[PlannedQuery] = []
    prepared_list: list[PreparedPrediction] = []
    signatures: list[str] = []
    hashes: list[int] = []
    mean_chunks: list[np.ndarray] = []
    var_chunks: list[np.ndarray] = []
    query_slots = np.empty(len(entries), dtype=np.intp)
    for position, (planned, prepared) in enumerate(entries):
        signature = plan_signature(planned)
        slot = slots.get(signature)
        if slot is None:
            slot = len(planned_list)
            slots[signature] = slot
            planned_list.append(planned)
            prepared_list.append(prepared)
            signatures.append(signature)
            hashes.append(plan_signature_hash(planned))
            means, variances = prepared.node_parameters()
            mean_chunks.append(means)
            var_chunks.append(variances)
        query_slots[position] = slot
    node_offsets = np.zeros(len(planned_list) + 1, dtype=np.intp)
    if mean_chunks:
        np.cumsum([chunk.size for chunk in mean_chunks], out=node_offsets[1:])
    return BatchPlan(
        planned=planned_list,
        prepared=prepared_list,
        signatures=signatures,
        signature_hashes=np.array(hashes, dtype=np.uint32),
        query_slots=query_slots,
        node_offsets=node_offsets,
        node_means=(
            np.concatenate(mean_chunks)
            if mean_chunks
            else np.zeros(0, dtype=np.float64)
        ),
        node_variances=(
            np.concatenate(var_chunks)
            if var_chunks
            else np.zeros(0, dtype=np.float64)
        ),
    )


@dataclass
class BatchAssembly:
    """Algorithm-3 outputs for every (plan, variant, mpl) of a batch.

    All arrays are indexed ``[plan_slot, variant_index, mpl_index]``
    (plus a trailing cost-unit axis on ``per_unit_mean``). Slots listed
    in ``plan_errors`` failed assembly (only possible when
    ``isolate=True``) and hold zeros in every array.
    """

    variants: tuple[Variant, ...]
    mpls: tuple[int, ...]
    mean: np.ndarray
    variance: np.ndarray
    std: np.ndarray
    exact_part: np.ndarray
    bounded_part: np.ndarray
    unit_part: np.ndarray
    per_unit_mean: np.ndarray
    plan_errors: dict[int, BaseException] = field(default_factory=dict)


def assemble_batch(
    batch_plan: BatchPlan,
    concurrent: ConcurrentPredictor,
    variants: Sequence[Variant],
    mpls: Sequence[int],
    *,
    isolate: bool = False,
) -> BatchAssembly:
    """Variance assembly for the whole batch as shared array ops.

    With ``isolate=True`` a plan whose assembler fails is recorded in
    ``plan_errors`` instead of aborting the batch (the SoA counterpart
    of ``skip_failures``); its rows stay zero.
    """
    variants = tuple(variants)
    mpls = tuple(mpls)
    plans = len(batch_plan)
    num_variants = len(variants)
    num_mpls = len(mpls)
    num_units = len(COST_UNIT_NAMES)

    # The unit-space moments depend only on the selectivity flags of
    # VarianceOptions — include_selectivity_variance routes variances
    # into the monomial distributions, include_cross_covariances routes
    # nested-operator pairs to the Section 5.3.2 bounds — while
    # include_cost_unit_variance first appears in the sigma2 weighting
    # below. Variants sharing a (selectivity, covariance) class (All and
    # NoVar[c]) therefore produce bit-identical moments from the same
    # expressions on the same inputs, so gather and contract once per
    # class and fan the columns out to every variant in the class.
    class_index: dict[tuple[bool, bool], int] = {}
    class_of: list[int] = []
    class_options: list[VarianceOptions] = []
    for variant in variants:
        options = VARIANT_OPTIONS[variant]
        key = (
            options.include_selectivity_variance,
            options.include_cross_covariances,
        )
        index = class_index.get(key)
        if index is None:
            index = len(class_options)
            class_index[key] = index
            class_options.append(options)
        class_of.append(index)
    num_classes = len(class_options)

    # Stage A: gather each distinct plan's cached unit-space moments —
    # E[g_c] and the two covariance contractions — into (P, C, ...)
    # arrays. Slice assignment copies float64 values bit-exactly.
    g_mean = np.zeros((plans, num_classes, num_units))
    exact_cov = np.zeros((plans, num_classes, num_units, num_units))
    bound_cov = np.zeros((plans, num_classes, num_units, num_units))
    plan_errors: dict[int, BaseException] = {}
    for slot in range(plans):
        try:
            assembler = batch_plan.prepared[slot].assembler(batch_plan.planned[slot])
            for ci, options in enumerate(class_options):
                moments = assembler.unit_moments(options)
                g_mean[slot, ci] = moments[0]
                exact_cov[slot, ci] = moments[1]
                bound_cov[slot, ci] = moments[2]
        except Exception as error:  # noqa: BLE001 — per-plan isolation
            if not isolate:
                raise
            plan_errors[slot] = error
    moments_finite = bool(np.isfinite(g_mean).all())

    # Stage B: fold every mpl's loaded unit distributions over the
    # stacked moments.
    shape = (plans, num_variants, num_mpls)
    mean = np.zeros(shape)
    exact_part = np.zeros(shape)
    bounded_part = np.zeros(shape)
    unit_part = np.zeros(shape)
    per_unit_mean = np.zeros(shape + (num_units,))
    zeros_u = np.zeros(num_units)
    flat = num_units * num_units
    for li, mpl in enumerate(mpls) if plans else ():
        units = concurrent.predictor_at(mpl).units
        # Verbatim scalar expressions (VectorizedAssembler.assemble):
        # identical construction yields bit-identical mu / sigma2.
        mu = np.array([units.mean(name) for name in COST_UNIT_NAMES])
        sigma2_full = np.array(
            [units.variance(name) for name in COST_UNIT_NAMES]
        )
        # The two unit-space contractions must stay per-plan np.dot
        # calls: BLAS ddot accumulates with FMA and no batched
        # formulation reproduces its bits — only the same op on the
        # same operands does (module docstring). They depend only on
        # the moment class, so run them once per class, not per
        # variant; the unit contraction uses the full sigma2 (the
        # zero-sigma2 regime is handled below).
        class_mean = np.zeros((plans, num_classes))
        class_unit = np.zeros((plans, num_classes))
        for ci in range(num_classes):
            gv = g_mean[:, ci, :]
            mean_col = class_mean[:, ci]
            unit_col = class_unit[:, ci]
            for slot in range(plans):
                row = gv[slot]
                mean_col[slot] = mu @ row
                unit_col[slot] = sigma2_full @ (row * row)
        # Two sigma2 regimes exist across the four variants (unit
        # variance on or off); the weights matrix depends only on the
        # regime, so build each at most once per mpl. The expression is
        # verbatim the scalar one — reuse is bit-exact.
        weights_by_regime: dict[bool, np.ndarray] = {}
        for vi, variant in enumerate(variants):
            options = VARIANT_OPTIONS[variant]
            include = options.include_cost_unit_variance
            ci = class_of[vi]
            weights = weights_by_regime.get(include)
            if weights is None:
                sigma2 = sigma2_full if include else zeros_u
                weights = np.outer(mu, mu) + np.diag(sigma2)
                weights_by_regime[include] = weights
            gv = g_mean[:, ci, :]
            mean[:, vi, li] = class_mean[:, ci]
            if include:
                unit_part[:, vi, li] = class_unit[:, ci]
            elif not moments_finite:
                # ddot(zeros, g * g) is exactly +0.0 for finite g — the
                # zero-initialized rows already match the scalar path.
                # A non-finite g would make the scalar contraction NaN,
                # so only then compute it explicitly.
                unit_col = unit_part[:, vi, li]
                for slot in range(plans):
                    row = gv[slot]
                    unit_col[slot] = zeros_u @ (row * row)
            exact_part[:, vi, li] = (
                (weights[None, :, :] * exact_cov[:, ci])
                .reshape(plans, flat)
                .sum(axis=1)
            )
            bounded_part[:, vi, li] = (
                (weights[None, :, :] * bound_cov[:, ci])
                .reshape(plans, flat)
                .sum(axis=1)
            )
            per_unit_mean[:, vi, li, :] = mu[None, :] * gv

    # max(x, 0.0) in array form: np.where matches python max for
    # -0.0 and NaN operands, np.maximum would not.
    raw_variance = (exact_part + bounded_part) + unit_part
    variance = np.where(raw_variance < 0.0, 0.0, raw_variance)
    return BatchAssembly(
        variants=variants,
        mpls=mpls,
        mean=mean,
        variance=variance,
        std=np.sqrt(variance),
        exact_part=exact_part,
        bounded_part=bounded_part,
        unit_part=unit_part,
        per_unit_mean=per_unit_mean,
        plan_errors=plan_errors,
    )


def batch_intervals(
    assembly: BatchAssembly, confidences: Sequence[float]
) -> np.ndarray:
    """Clamped central intervals for every (plan, variant, mpl, confidence).

    Returns a ``(P, V, L, C, 2)`` array of (low, high) bounds,
    replicating ``NormalDistribution.interval`` +
    ``PredictionResult.confidence_interval`` bit for bit: the quantile
    association ``mean + ((std * sqrt(2)) * erfinv(...))``, the
    variance-0 point-mass branch, and the nonnegative clamp on both
    bounds.
    """
    confidences = tuple(confidences)
    for confidence in confidences:
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    # One scalar erfinv per (confidence, side), hoisted out of the array
    # loop below. The expressions are verbatim the scalar quantile path's
    # ``2 * p - 1`` for ``p = tail`` and ``p = 1.0 - tail``.
    tails = [(1.0 - confidence) / 2.0 for confidence in confidences]
    coefficients = [
        (float(erfinv(2 * tail - 1)), float(erfinv(2 * (1.0 - tail) - 1)))
        for tail in tails
    ]
    mean = assembly.mean
    scaled_std = assembly.std * _SQRT2
    point_mass = assembly.variance == 0.0
    out = np.empty(mean.shape + (len(confidences), 2))
    for ci, pair in enumerate(coefficients):
        for side, coefficient in enumerate(pair):
            quantile = mean + scaled_std * coefficient
            bound = np.where(point_mass, mean, quantile)
            out[..., ci, side] = np.where(bound < 0.0, 0.0, bound)
    return out
