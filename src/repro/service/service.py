"""The batch prediction service.

:class:`PredictionService` turns the one-query-at-a-time predictor into
a serving component: it accepts batches of SQL strings (or pre-planned
queries), plans and prepares each distinct query once, caches the
prepared artifacts, and fans every query out across predictor variants
and multiprogramming levels while sharing the single prepare pass — the
regime where the paper's "uncertainty at negligible overhead" claim has
to hold up (Section 6.3.4).

The division of labour per query:

* plan       — once per distinct SQL string (memoized);
* prepare    — once per distinct (plan, sample set): the sampling pass
               and cost-function fitting, by far the dominant cost;
* assemble   — once per (variant, mpl) via the shared
               :class:`~repro.core.variance.VectorizedAssembler`, a few
               small matrix products each.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..calibration.calibrator import CalibratedUnits
from ..core.concurrency import ConcurrentPredictor, InterferenceModel
from ..core.predictor import (
    PredictionResult,
    PreparedPrediction,
    UncertaintyPredictor,
    Variant,
)
from ..costfuncs.fitting import DEFAULT_GRID_W
from ..errors import PredictionError
from ..optimizer.optimizer import Optimizer, OptimizerConfig, PlannedQuery
from ..sampling.sample_db import SampleDatabase
from ..storage import Database
from .cache import PreparedCache, plan_signature

__all__ = ["BatchPrediction", "PredictionService", "QueryPrediction", "ServiceStats"]


@dataclass
class ServiceStats:
    """Cumulative serving counters (monotonic over a service's lifetime)."""

    queries_served: int = 0
    plans_built: int = 0
    prepares_run: int = 0
    prepare_cache_hits: int = 0
    assemblies: int = 0

    @property
    def prepare_hit_rate(self) -> float:
        total = self.prepares_run + self.prepare_cache_hits
        return self.prepare_cache_hits / total if total else 0.0

    def snapshot(self) -> "ServiceStats":
        return replace(self)

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """The counter deltas accumulated after ``earlier`` was snapshot."""
        return ServiceStats(
            queries_served=self.queries_served - earlier.queries_served,
            plans_built=self.plans_built - earlier.plans_built,
            prepares_run=self.prepares_run - earlier.prepares_run,
            prepare_cache_hits=self.prepare_cache_hits
            - earlier.prepare_cache_hits,
            assemblies=self.assemblies - earlier.assemblies,
        )


@dataclass
class QueryPrediction:
    """All requested distributions for one query of a batch."""

    sql: str | None
    planned: PlannedQuery
    #: (variant, multiprogramming level) -> prediction
    results: dict[tuple[Variant, int], PredictionResult]
    prepare_was_cached: bool

    def result(
        self, variant: Variant = Variant.ALL, mpl: int = 1
    ) -> PredictionResult:
        try:
            return self.results[(variant, mpl)]
        except KeyError:
            raise PredictionError(
                f"no prediction for variant={variant.value!r}, mpl={mpl}; "
                f"requested combinations: {sorted((v.value, m) for v, m in self.results)}"
            ) from None

    @property
    def mean(self) -> float:
        return self.result().mean

    @property
    def std(self) -> float:
        return self.result().std


@dataclass
class BatchPrediction:
    """The service's answer for one batch.

    ``stats`` holds only this batch's counters (a delta of the service's
    cumulative :class:`ServiceStats`), so its hit rate and prepare counts
    describe the batch and stay fixed after the call returns.
    """

    predictions: list[QueryPrediction]
    elapsed_seconds: float
    stats: ServiceStats = field(repr=False, default_factory=ServiceStats)

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)

    @property
    def queries_per_second(self) -> float:
        return len(self.predictions) / max(self.elapsed_seconds, 1e-12)


class PredictionService:
    """Serves uncertainty-aware predictions for query batches."""

    def __init__(
        self,
        database: Database,
        units: CalibratedUnits,
        *,
        sampling_ratio: float = 0.05,
        num_copies: int = 2,
        seed: int = 0,
        grid_w: int = DEFAULT_GRID_W,
        optimizer_config: OptimizerConfig | None = None,
        interference: InterferenceModel | None = None,
        use_gee: bool = False,
        method: str = "sampling",
        cache_size: int = 256,
    ):
        self._database = database
        self._optimizer = Optimizer(database, optimizer_config)
        self._sample_db = SampleDatabase(
            database,
            sampling_ratio=sampling_ratio,
            num_copies=num_copies,
            seed=seed,
        )
        self._preparer = UncertaintyPredictor(units, grid_w=grid_w)
        self._concurrent = ConcurrentPredictor(units, interference)
        self._use_gee = use_gee
        self._method = method
        self._grid_w = grid_w
        # Bounded like the prepared cache: a long-lived service fed ad-hoc
        # SQL must not grow a plan per distinct query string forever.
        self._plans: OrderedDict[str, PlannedQuery] = OrderedDict()
        self._plans_maxsize = cache_size
        self._prepared = PreparedCache(maxsize=cache_size)
        self.stats = ServiceStats()

    # -- introspection -----------------------------------------------------
    @property
    def sample_db(self) -> SampleDatabase:
        return self._sample_db

    @property
    def prepared_cache(self) -> PreparedCache:
        return self._prepared

    # -- planning / preparing ---------------------------------------------
    def plan(self, query: str | PlannedQuery) -> PlannedQuery:
        """Plan a SQL string (memoized) or pass a pre-planned query through."""
        if isinstance(query, PlannedQuery):
            return query
        planned = self._plans.get(query)
        if planned is None:
            planned = self._optimizer.plan_sql(query)
            self._plans[query] = planned
            if len(self._plans) > self._plans_maxsize:
                self._plans.popitem(last=False)
            self.stats.plans_built += 1
        else:
            self._plans.move_to_end(query)
        return planned

    def _cache_key(self, planned: PlannedQuery) -> tuple:
        return (
            plan_signature(planned),
            self._sample_db.fingerprint(),
            self._grid_w,
            self._use_gee,
            self._method,
        )

    def prepare(self, planned: PlannedQuery) -> tuple[PreparedPrediction, bool]:
        """The cached sampling + fitting pass; returns (artifacts, was_hit)."""
        key = self._cache_key(planned)
        prepared = self._prepared.get(key)
        if prepared is not None:
            self.stats.prepare_cache_hits += 1
            return prepared, True
        prepared = self._preparer.prepare(
            planned,
            self._sample_db,
            use_gee=self._use_gee,
            method=self._method,
        )
        self._prepared.put(key, prepared)
        self.stats.prepares_run += 1
        return prepared, False

    # -- serving -----------------------------------------------------------
    def predict_query(
        self,
        query: str | PlannedQuery,
        variants: Sequence[Variant] = (Variant.ALL,),
        mpls: Sequence[int] = (1,),
    ) -> QueryPrediction:
        """One query, fanned out across variants and multiprogramming levels."""
        if not variants or not mpls:
            raise PredictionError("need at least one variant and one mpl")
        planned = self.plan(query)
        prepared, was_cached = self.prepare(planned)
        results: dict[tuple[Variant, int], PredictionResult] = {}
        for mpl in mpls:
            predictor = self._concurrent.predictor_at(mpl)
            for variant in variants:
                results[(variant, mpl)] = predictor.predict_prepared(
                    planned, prepared, variant
                )
                self.stats.assemblies += 1
        self.stats.queries_served += 1
        return QueryPrediction(
            sql=query if isinstance(query, str) else None,
            planned=planned,
            results=results,
            prepare_was_cached=was_cached,
        )

    def predict_batch(
        self,
        queries: Iterable[str | PlannedQuery],
        variants: Sequence[Variant] = (Variant.ALL,),
        mpls: Sequence[int] = (1,),
    ) -> BatchPrediction:
        """A whole batch; see :meth:`predict_query` for the per-query fan-out."""
        before = self.stats.snapshot()
        started = time.perf_counter()
        predictions = [
            self.predict_query(query, variants=variants, mpls=mpls)
            for query in queries
        ]
        return BatchPrediction(
            predictions=predictions,
            elapsed_seconds=time.perf_counter() - started,
            stats=self.stats.since(before),
        )
