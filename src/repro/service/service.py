"""The batch prediction service.

:class:`PredictionService` turns the one-query-at-a-time predictor into
a serving component: it accepts batches of SQL strings (or pre-planned
queries), plans and prepares each distinct query once, caches the
prepared artifacts, and fans every query out across predictor variants
and multiprogramming levels while sharing the single prepare pass — the
regime where the paper's "uncertainty at negligible overhead" claim has
to hold up (Section 6.3.4).

The division of labour per query:

* plan       — once per distinct SQL string (memoized);
* prepare    — once per distinct (plan, sample set): the sampling pass
               and cost-function fitting, by far the dominant cost;
* assemble   — once per (variant, mpl) via the shared
               :class:`~repro.core.variance.VectorizedAssembler`, a few
               small matrix products each.

Below the prepared-artifact cache sits a second, finer-grained layer:
one :class:`~repro.sampling.engine.SamplingEngine` shared by every
prepare pass the service runs. Queries whose *whole* plan is new can
still reuse the sample intermediates of any join/filter/scan sub-plan
an earlier query already sampled — template instantiations that differ
only in one branch's constants share everything else.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..calibration.calibrator import CalibratedUnits
from ..caching import CacheStats
from ..core.concurrency import ConcurrentPredictor, InterferenceModel
from ..core.predictor import (
    PredictionResult,
    PreparedPrediction,
    UncertaintyPredictor,
    Variant,
)
from ..core.variance import VarianceBreakdown
from ..costfuncs.fitting import DEFAULT_GRID_W
from ..errors import PredictionError, error_code
from ..mathstats.normal import NormalDistribution
from ..optimizer.cost_model import COST_UNIT_NAMES
from ..optimizer.optimizer import Optimizer, OptimizerConfig, PlannedQuery
from ..sampling.engine import DEFAULT_ENGINE_BUDGET_BYTES, SamplingEngine
from ..sampling.sample_db import SampleDatabase
from ..storage import Database
from .cache import PreparedCache, plan_signature
from .kernels import BATCH_KERNELS, assemble_batch, batch_intervals, build_batch_plan

__all__ = [
    "BATCH_KERNELS",
    "BatchPrediction",
    "PredictionService",
    "QueryFailure",
    "QueryPrediction",
    "ServiceReport",
    "ServiceStats",
]


@dataclass
class ServiceStats:
    """Cumulative serving counters (monotonic over a service's lifetime)."""

    queries_served: int = 0
    queries_failed: int = 0
    plans_built: int = 0
    prepares_run: int = 0
    prepare_cache_hits: int = 0
    assemblies: int = 0

    @property
    def prepare_hit_rate(self) -> float | None:
        """Cache hits per prepare lookup, or None before the first lookup.

        Mirrors :attr:`repro.caching.CacheStats.hit_rate`: a service that
        has seen no traffic has no hit rate, and reporting 0% would read
        as "everything missed".
        """
        total = self.prepares_run + self.prepare_cache_hits
        return self.prepare_cache_hits / total if total else None

    def describe_hit_rate(self) -> str:
        """Human-readable prepare hit rate: ``"67%"``, or ``"n/a"``
        before the first lookup (the shared None-means-no-traffic policy
        of :meth:`repro.caching.CacheStats.describe`)."""
        rate = self.prepare_hit_rate
        return "n/a" if rate is None else f"{rate:.0%}"

    def snapshot(self) -> "ServiceStats":
        return replace(self)

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """The counter deltas accumulated after ``earlier`` was snapshot."""
        return ServiceStats(
            queries_served=self.queries_served - earlier.queries_served,
            queries_failed=self.queries_failed - earlier.queries_failed,
            plans_built=self.plans_built - earlier.plans_built,
            prepares_run=self.prepares_run - earlier.prepares_run,
            prepare_cache_hits=self.prepare_cache_hits
            - earlier.prepare_cache_hits,
            assemblies=self.assemblies - earlier.assemblies,
        )


@dataclass
class ServiceReport:
    """A point-in-time view of the service's caches and counters.

    ``stats`` are the lifetime serving counters; the cache stats come
    from the two cache layers — whole prepared predictions and memoized
    sub-plan sampling work — whose hit rates explain where serving time
    goes.
    """

    stats: ServiceStats
    prepared_cache: CacheStats
    prepared_entries: int
    sampling_cache: CacheStats
    sampling_entries: int
    sampling_bytes_used: int
    sampling_bytes_budget: int

    def cache_lines(self) -> list[str]:
        """The two cache-layer summary lines (shared with the CLI)."""
        return [
            f"prepared cache : {self.prepared_entries} entries, "
            f"hit rate {self.prepared_cache.describe()}",
            f"sampling engine: {self.sampling_entries} sub-plans, "
            f"{self.sampling_bytes_used / 1024:.0f} KiB "
            f"/ {self.sampling_bytes_budget / 1024:.0f} KiB, "
            f"hit rate {self.sampling_cache.describe()}",
        ]

    def render(self) -> str:
        lines = [
            f"queries served : {self.stats.queries_served} "
            f"({self.stats.queries_failed} failed)",
            f"plans built    : {self.stats.plans_built}",
            f"prepares run   : {self.stats.prepares_run} "
            f"({self.stats.prepare_cache_hits} served from cache)",
            f"assemblies     : {self.stats.assemblies}",
            *self.cache_lines(),
        ]
        return "\n".join(lines)


@dataclass
class QueryPrediction:
    """All requested distributions for one query of a batch."""

    sql: str | None
    planned: PlannedQuery
    #: (variant, multiprogramming level) -> prediction
    results: dict[tuple[Variant, int], PredictionResult]
    prepare_was_cached: bool

    def result(
        self, variant: Variant = Variant.ALL, mpl: int = 1
    ) -> PredictionResult:
        try:
            return self.results[(variant, mpl)]
        except KeyError:
            raise PredictionError(
                f"no prediction for variant={variant.value!r}, mpl={mpl}; "
                f"requested combinations: {sorted((v.value, m) for v, m in self.results)}"
            ) from None

    @property
    def mean(self) -> float:
        return self.result().mean

    @property
    def std(self) -> float:
        return self.result().std


@dataclass(frozen=True)
class QueryFailure:
    """One query of a batch that could not be served.

    ``index`` is the query's position in the submitted batch, so callers
    can line failures up with their inputs. ``code`` is the stable wire
    code of the failure class (:func:`repro.errors.error_code`), so
    remote consumers can branch without parsing ``error`` text.
    """

    index: int
    sql: str | None
    error: str
    code: str = "internal"

    def __str__(self) -> str:
        return f"query #{self.index}: {self.error}"


@dataclass
class BatchPrediction:
    """The service's answer for one batch.

    ``stats`` holds only this batch's counters (a delta of the service's
    cumulative :class:`ServiceStats`), so its hit rate and prepare counts
    describe the batch and stay fixed after the call returns.
    ``failures`` is non-empty only when the batch was served with
    ``skip_failures=True`` and some queries could not be planned or
    predicted; iteration yields the successful predictions only.
    """

    predictions: list[QueryPrediction]
    elapsed_seconds: float
    stats: ServiceStats = field(repr=False, default_factory=ServiceStats)
    failures: list[QueryFailure] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)

    @property
    def queries_per_second(self) -> float:
        return len(self.predictions) / max(self.elapsed_seconds, 1e-12)


class PredictionService:
    """Serves uncertainty-aware predictions for query batches."""

    def __init__(
        self,
        database: Database,
        units: CalibratedUnits,
        *,
        sampling_ratio: float = 0.05,
        num_copies: int = 2,
        seed: int = 0,
        grid_w: int = DEFAULT_GRID_W,
        optimizer_config: OptimizerConfig | None = None,
        interference: InterferenceModel | None = None,
        use_gee: bool = False,
        method: str = "sampling",
        cache_size: int = 256,
        sampling_engine_bytes: int = DEFAULT_ENGINE_BUDGET_BYTES,
        batch_kernel: str = "scalar",
    ):
        """``sampling_engine_bytes`` budgets the sub-plan sampling cache;
        0 disables that layer entirely (every prepare samples cold).
        ``batch_kernel`` selects the default :meth:`predict_batch`
        execution strategy: "scalar" (the per-query reference loop) or
        "soa" (the cross-query array kernels of
        :mod:`repro.service.kernels`, bitwise-identical and faster on
        warm batches)."""
        if batch_kernel not in BATCH_KERNELS:
            raise PredictionError(
                f"unknown batch kernel {batch_kernel!r}; "
                f"expected one of {', '.join(BATCH_KERNELS)}"
            )
        self._batch_kernel = batch_kernel
        self._database = database
        self._optimizer = Optimizer(database, optimizer_config)
        self._sample_db = SampleDatabase(
            database,
            sampling_ratio=sampling_ratio,
            num_copies=num_copies,
            seed=seed,
        )
        self._preparer = UncertaintyPredictor(units, grid_w=grid_w)
        self._concurrent = ConcurrentPredictor(units, interference)
        self._use_gee = use_gee
        self._method = method
        self._grid_w = grid_w
        # Bounded like the prepared cache: a long-lived service fed ad-hoc
        # SQL must not grow a plan per distinct query string forever.
        self._plans: OrderedDict[str, PlannedQuery] = OrderedDict()
        self._plans_maxsize = cache_size
        self._prepared = PreparedCache(maxsize=cache_size)
        self._engine = (
            SamplingEngine(max_bytes=sampling_engine_bytes)
            if sampling_engine_bytes > 0
            else None
        )
        # Guards ServiceStats counter updates and snapshots. The engine
        # itself is not thread-safe (callers serialize serving calls —
        # the Session facade does), but monitoring must be: report()
        # and stats snapshots are read concurrently with traffic and
        # must never observe a torn counter set.
        self._stats_lock = threading.Lock()
        self.stats = ServiceStats()

    # -- introspection -----------------------------------------------------
    @property
    def batch_kernel(self) -> str:
        """The default :meth:`predict_batch` execution strategy."""
        return self._batch_kernel

    @property
    def sample_db(self) -> SampleDatabase:
        return self._sample_db

    @property
    def prepared_cache(self) -> PreparedCache:
        return self._prepared

    @property
    def sampling_engine(self) -> SamplingEngine | None:
        return self._engine

    def report(self) -> ServiceReport:
        """Snapshot counters and cache stats of both cache layers.

        Safe to call from a monitoring thread concurrently with
        traffic: every layer is copied atomically under its own lock
        (the serving counters under the service's stats lock, each
        cache under the cache's), so no snapshot is ever torn.
        Cross-layer skew of in-flight requests is possible and
        harmless — each layer is internally consistent.
        """
        engine = self._engine
        if engine is not None:
            sampling_cache, sampling_entries, sampling_bytes = engine.snapshot()
        else:
            sampling_cache, sampling_entries, sampling_bytes = CacheStats(), 0, 0
        prepared_cache, prepared_entries = self._prepared.snapshot()
        return ServiceReport(
            stats=self._snapshot_stats(),
            prepared_cache=prepared_cache,
            prepared_entries=prepared_entries,
            sampling_cache=sampling_cache,
            sampling_entries=sampling_entries,
            sampling_bytes_used=sampling_bytes,
            sampling_bytes_budget=engine.max_bytes if engine else 0,
        )

    def _snapshot_stats(self) -> ServiceStats:
        """An atomic copy of the cumulative serving counters."""
        with self._stats_lock:
            return self.stats.snapshot()

    def _count(self, **deltas: int) -> None:
        """Atomically bump serving counters (``_count(plans_built=1)``)."""
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    # -- planning / preparing ---------------------------------------------
    def plan(self, query: str | PlannedQuery) -> PlannedQuery:
        """Plan a SQL string (memoized) or pass a pre-planned query through."""
        if isinstance(query, PlannedQuery):
            return query
        planned = self._plans.get(query)
        if planned is None:
            planned = self._optimizer.plan_sql(query)
            self._plans[query] = planned
            if len(self._plans) > self._plans_maxsize:
                self._plans.popitem(last=False)
            self._count(plans_built=1)
        else:
            self._plans.move_to_end(query)
        return planned

    def _cache_key(self, planned: PlannedQuery) -> tuple:
        return (
            plan_signature(planned),
            self._sample_db.fingerprint(),
            self._grid_w,
            self._use_gee,
            self._method,
        )

    def prepare(self, planned: PlannedQuery) -> tuple[PreparedPrediction, bool]:
        """The cached sampling + fitting pass; returns (artifacts, was_hit)."""
        key = self._cache_key(planned)
        prepared = self._prepared.get(key)
        if prepared is not None:
            self._count(prepare_cache_hits=1)
            return prepared, True
        prepared = self._preparer.prepare(
            planned,
            self._sample_db,
            use_gee=self._use_gee,
            method=self._method,
            engine=self._engine,
        )
        self._prepared.put(key, prepared)
        self._count(prepares_run=1)
        return prepared, False

    # -- serving -----------------------------------------------------------
    def predict_query(
        self,
        query: str | PlannedQuery,
        variants: Sequence[Variant] = (Variant.ALL,),
        mpls: Sequence[int] = (1,),
    ) -> QueryPrediction:
        """One query, fanned out across variants and multiprogramming levels."""
        if not variants or not mpls:
            raise PredictionError("need at least one variant and one mpl")
        planned = self.plan(query)
        prepared, was_cached = self.prepare(planned)
        results: dict[tuple[Variant, int], PredictionResult] = {}
        for mpl in mpls:
            predictor = self._concurrent.predictor_at(mpl)
            for variant in variants:
                results[(variant, mpl)] = predictor.predict_prepared(
                    planned, prepared, variant
                )
        self._count(assemblies=len(results), queries_served=1)
        return QueryPrediction(
            sql=query if isinstance(query, str) else None,
            planned=planned,
            results=results,
            prepare_was_cached=was_cached,
        )

    def predict_batch(
        self,
        queries: Iterable[str | PlannedQuery],
        variants: Sequence[Variant] = (Variant.ALL,),
        mpls: Sequence[int] = (1,),
        skip_failures: bool = False,
        kernel: str | None = None,
        confidences: Sequence[float] | None = None,
    ) -> BatchPrediction:
        """A whole batch; see :meth:`predict_query` for the per-query fan-out.

        With ``skip_failures=True``, a query that cannot be planned or
        predicted (malformed SQL, unsupported plan shape, a predicate
        comparing incompatible types, ...) becomes a
        :class:`QueryFailure` in the result instead of aborting the whole
        batch; the remaining queries are still served. Any exception is
        converted — a serving batch must degrade per query, and errors
        escaping the library's own hierarchy (e.g. numpy type errors
        raised while evaluating a predicate over sample columns) abort
        the batch just as hard as a parse error would.

        ``kernel`` overrides the service's configured ``batch_kernel``
        for this call: "scalar" runs the per-query reference loop below;
        "soa" runs the cross-query array kernels
        (:mod:`repro.service.kernels`), bitwise-identical on every
        served number. ``confidences`` is honored only by the SoA
        kernel, which precomputes the requested interval bounds in the
        same array pass; the scalar path leaves intervals to be computed
        on demand, exactly as before.
        """
        resolved = self._batch_kernel if kernel is None else kernel
        if resolved not in BATCH_KERNELS:
            raise PredictionError(
                f"unknown batch kernel {resolved!r}; "
                f"expected one of {', '.join(BATCH_KERNELS)}"
            )
        if resolved == "soa":
            return self._predict_batch_soa(
                queries,
                tuple(variants),
                tuple(mpls),
                skip_failures,
                tuple(confidences) if confidences else (),
            )
        before = self._snapshot_stats()
        started = time.perf_counter()
        predictions: list[QueryPrediction] = []
        failures: list[QueryFailure] = []
        for index, query in enumerate(queries):
            if not skip_failures:
                predictions.append(
                    self.predict_query(query, variants=variants, mpls=mpls)
                )
                continue
            try:
                predictions.append(
                    self.predict_query(query, variants=variants, mpls=mpls)
                )
            except Exception as error:  # noqa: BLE001 — per-query isolation
                self._count(queries_failed=1)
                failures.append(
                    QueryFailure(
                        index=index,
                        sql=query if isinstance(query, str) else None,
                        error=f"{type(error).__name__}: {error}",
                        code=error_code(error),
                    )
                )
        return BatchPrediction(
            predictions=predictions,
            elapsed_seconds=time.perf_counter() - started,
            stats=self._snapshot_stats().since(before),
            failures=failures,
        )

    def _predict_batch_soa(
        self,
        queries: Iterable[str | PlannedQuery],
        variants: tuple[Variant, ...],
        mpls: tuple[int, ...],
        skip_failures: bool,
        confidences: tuple[float, ...],
    ) -> BatchPrediction:
        """The structure-of-arrays batch path (``batch_kernel="soa"``).

        Stage 1 mirrors the scalar loop exactly — per-query plan +
        cached prepare, with the same failure isolation and counter
        increments. Stages 2-4 replace the per-(query, variant, mpl)
        assembly loop: distinct plans are interned and stacked
        (:func:`~repro.service.kernels.build_batch_plan`), assembled in
        shared arrays (:func:`~repro.service.kernels.assemble_batch`),
        intervals vectorized
        (:func:`~repro.service.kernels.batch_intervals`), and the
        results gathered back per query. Every served number is
        bit-identical to the scalar path; completed batches also leave
        identical counter deltas. The one observable divergence: with
        ``skip_failures=False`` an aborting batch raises before *any*
        query is counted as served, where the scalar loop had already
        counted the queries preceding the failure.
        """
        before = self._snapshot_stats()
        started = time.perf_counter()
        entries: list[tuple[int, str | None, PlannedQuery, PreparedPrediction, bool]] = []
        failures: list[QueryFailure] = []
        for index, query in enumerate(queries):
            try:
                if not variants or not mpls:
                    raise PredictionError("need at least one variant and one mpl")
                planned = self.plan(query)
                prepared, was_cached = self.prepare(planned)
            except Exception as error:  # noqa: BLE001 — per-query isolation
                if not skip_failures:
                    raise
                self._count(queries_failed=1)
                failures.append(
                    QueryFailure(
                        index=index,
                        sql=query if isinstance(query, str) else None,
                        error=f"{type(error).__name__}: {error}",
                        code=error_code(error),
                    )
                )
                continue
            entries.append(
                (
                    index,
                    query if isinstance(query, str) else None,
                    planned,
                    prepared,
                    was_cached,
                )
            )

        batch_plan = build_batch_plan(
            [(planned, prepared) for _, _, planned, prepared, _ in entries]
        )
        assembly = assemble_batch(
            batch_plan,
            self._concurrent,
            variants,
            mpls,
            isolate=skip_failures,
        )
        intervals = (
            batch_intervals(assembly, confidences) if confidences else None
        )

        # Materialize one result set per distinct plan; duplicate
        # queries share the (immutable) PredictionResult objects.
        # tolist() converts whole arrays to python floats in one pass;
        # transposing to [slot][mpl][variant] first lets the loops
        # below walk the nested lists in iteration order.
        mean_list = assembly.mean.transpose(0, 2, 1).tolist()
        variance_list = assembly.variance.transpose(0, 2, 1).tolist()
        exact_list = assembly.exact_part.transpose(0, 2, 1).tolist()
        bounded_list = assembly.bounded_part.transpose(0, 2, 1).tolist()
        unit_list = assembly.unit_part.transpose(0, 2, 1).tolist()
        per_unit_list = assembly.per_unit_mean.transpose(0, 2, 1, 3).tolist()
        intervals_list = (
            intervals.transpose(0, 2, 1, 3, 4).tolist()
            if intervals is not None
            else None
        )
        slot_results: list[dict[tuple[Variant, int], PredictionResult] | None] = []
        for slot in range(len(batch_plan)):
            if slot in assembly.plan_errors:
                slot_results.append(None)
                continue
            prepared = batch_plan.prepared[slot]
            results: dict[tuple[Variant, int], PredictionResult] = {}
            # Same (mpl outer, variant inner) order as predict_query:
            # response payload order follows dict insertion order.
            for li, mpl in enumerate(mpls):
                mean_row = mean_list[slot][li]
                variance_row = variance_list[slot][li]
                exact_row = exact_list[slot][li]
                bounded_row = bounded_list[slot][li]
                unit_row = unit_list[slot][li]
                per_unit_row = per_unit_list[slot][li]
                interval_row = (
                    intervals_list[slot][li] if intervals_list is not None else None
                )
                for vi, variant in enumerate(variants):
                    mean = mean_row[vi]
                    variance = variance_row[vi]
                    breakdown = VarianceBreakdown(
                        mean=mean,
                        variance=variance,
                        exact_selectivity_term=exact_row[vi],
                        bounded_covariance_term=bounded_row[vi],
                        cost_unit_term=unit_row[vi],
                        per_unit_mean=dict(
                            zip(COST_UNIT_NAMES, per_unit_row[vi])
                        ),
                    )
                    cached_intervals = None
                    if interval_row is not None:
                        cached_intervals = dict(
                            zip(confidences, map(tuple, interval_row[vi]))
                        )
                    results[(variant, mpl)] = PredictionResult(
                        distribution=NormalDistribution(mean, variance),
                        breakdown=breakdown,
                        prepared=prepared,
                        variant=variant,
                        _intervals=cached_intervals,
                    )
            slot_results.append(results)

        predictions: list[QueryPrediction] = []
        for position, (index, sql, planned, prepared, was_cached) in enumerate(
            entries
        ):
            slot = int(batch_plan.query_slots[position])
            results = slot_results[slot]
            if results is None:
                error = assembly.plan_errors[slot]
                self._count(queries_failed=1)
                failures.append(
                    QueryFailure(
                        index=index,
                        sql=sql,
                        error=f"{type(error).__name__}: {error}",
                        code=error_code(error),
                    )
                )
                continue
            predictions.append(
                QueryPrediction(
                    sql=sql,
                    planned=planned,
                    results=dict(results),
                    prepare_was_cached=was_cached,
                )
            )
        if predictions:
            self._count(
                assemblies=len(variants) * len(mpls) * len(predictions),
                queries_served=len(predictions),
            )
        failures.sort(key=lambda failure: failure.index)
        return BatchPrediction(
            predictions=predictions,
            elapsed_seconds=time.perf_counter() - started,
            stats=self._snapshot_stats().since(before),
            failures=failures,
        )
