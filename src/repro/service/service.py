"""The batch prediction service.

:class:`PredictionService` turns the one-query-at-a-time predictor into
a serving component: it accepts batches of SQL strings (or pre-planned
queries), plans and prepares each distinct query once, caches the
prepared artifacts, and fans every query out across predictor variants
and multiprogramming levels while sharing the single prepare pass — the
regime where the paper's "uncertainty at negligible overhead" claim has
to hold up (Section 6.3.4).

The division of labour per query:

* plan       — once per distinct SQL string (memoized);
* prepare    — once per distinct (plan, sample set): the sampling pass
               and cost-function fitting, by far the dominant cost;
* assemble   — once per (variant, mpl) via the shared
               :class:`~repro.core.variance.VectorizedAssembler`, a few
               small matrix products each.

Below the prepared-artifact cache sits a second, finer-grained layer:
one :class:`~repro.sampling.engine.SamplingEngine` shared by every
prepare pass the service runs. Queries whose *whole* plan is new can
still reuse the sample intermediates of any join/filter/scan sub-plan
an earlier query already sampled — template instantiations that differ
only in one branch's constants share everything else.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..calibration.calibrator import CalibratedUnits
from ..caching import CacheStats
from ..core.concurrency import ConcurrentPredictor, InterferenceModel
from ..core.predictor import (
    PredictionResult,
    PreparedPrediction,
    UncertaintyPredictor,
    Variant,
)
from ..costfuncs.fitting import DEFAULT_GRID_W
from ..errors import PredictionError, error_code
from ..optimizer.optimizer import Optimizer, OptimizerConfig, PlannedQuery
from ..sampling.engine import DEFAULT_ENGINE_BUDGET_BYTES, SamplingEngine
from ..sampling.sample_db import SampleDatabase
from ..storage import Database
from .cache import PreparedCache, plan_signature

__all__ = [
    "BatchPrediction",
    "PredictionService",
    "QueryFailure",
    "QueryPrediction",
    "ServiceReport",
    "ServiceStats",
]


@dataclass
class ServiceStats:
    """Cumulative serving counters (monotonic over a service's lifetime)."""

    queries_served: int = 0
    queries_failed: int = 0
    plans_built: int = 0
    prepares_run: int = 0
    prepare_cache_hits: int = 0
    assemblies: int = 0

    @property
    def prepare_hit_rate(self) -> float | None:
        """Cache hits per prepare lookup, or None before the first lookup.

        Mirrors :attr:`repro.caching.CacheStats.hit_rate`: a service that
        has seen no traffic has no hit rate, and reporting 0% would read
        as "everything missed".
        """
        total = self.prepares_run + self.prepare_cache_hits
        return self.prepare_cache_hits / total if total else None

    def describe_hit_rate(self) -> str:
        """Human-readable prepare hit rate: ``"67%"``, or ``"n/a"``
        before the first lookup (the shared None-means-no-traffic policy
        of :meth:`repro.caching.CacheStats.describe`)."""
        rate = self.prepare_hit_rate
        return "n/a" if rate is None else f"{rate:.0%}"

    def snapshot(self) -> "ServiceStats":
        return replace(self)

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """The counter deltas accumulated after ``earlier`` was snapshot."""
        return ServiceStats(
            queries_served=self.queries_served - earlier.queries_served,
            queries_failed=self.queries_failed - earlier.queries_failed,
            plans_built=self.plans_built - earlier.plans_built,
            prepares_run=self.prepares_run - earlier.prepares_run,
            prepare_cache_hits=self.prepare_cache_hits
            - earlier.prepare_cache_hits,
            assemblies=self.assemblies - earlier.assemblies,
        )


@dataclass
class ServiceReport:
    """A point-in-time view of the service's caches and counters.

    ``stats`` are the lifetime serving counters; the cache stats come
    from the two cache layers — whole prepared predictions and memoized
    sub-plan sampling work — whose hit rates explain where serving time
    goes.
    """

    stats: ServiceStats
    prepared_cache: CacheStats
    prepared_entries: int
    sampling_cache: CacheStats
    sampling_entries: int
    sampling_bytes_used: int
    sampling_bytes_budget: int

    def cache_lines(self) -> list[str]:
        """The two cache-layer summary lines (shared with the CLI)."""
        return [
            f"prepared cache : {self.prepared_entries} entries, "
            f"hit rate {self.prepared_cache.describe()}",
            f"sampling engine: {self.sampling_entries} sub-plans, "
            f"{self.sampling_bytes_used / 1024:.0f} KiB "
            f"/ {self.sampling_bytes_budget / 1024:.0f} KiB, "
            f"hit rate {self.sampling_cache.describe()}",
        ]

    def render(self) -> str:
        lines = [
            f"queries served : {self.stats.queries_served} "
            f"({self.stats.queries_failed} failed)",
            f"plans built    : {self.stats.plans_built}",
            f"prepares run   : {self.stats.prepares_run} "
            f"({self.stats.prepare_cache_hits} served from cache)",
            f"assemblies     : {self.stats.assemblies}",
            *self.cache_lines(),
        ]
        return "\n".join(lines)


@dataclass
class QueryPrediction:
    """All requested distributions for one query of a batch."""

    sql: str | None
    planned: PlannedQuery
    #: (variant, multiprogramming level) -> prediction
    results: dict[tuple[Variant, int], PredictionResult]
    prepare_was_cached: bool

    def result(
        self, variant: Variant = Variant.ALL, mpl: int = 1
    ) -> PredictionResult:
        try:
            return self.results[(variant, mpl)]
        except KeyError:
            raise PredictionError(
                f"no prediction for variant={variant.value!r}, mpl={mpl}; "
                f"requested combinations: {sorted((v.value, m) for v, m in self.results)}"
            ) from None

    @property
    def mean(self) -> float:
        return self.result().mean

    @property
    def std(self) -> float:
        return self.result().std


@dataclass(frozen=True)
class QueryFailure:
    """One query of a batch that could not be served.

    ``index`` is the query's position in the submitted batch, so callers
    can line failures up with their inputs. ``code`` is the stable wire
    code of the failure class (:func:`repro.errors.error_code`), so
    remote consumers can branch without parsing ``error`` text.
    """

    index: int
    sql: str | None
    error: str
    code: str = "internal"

    def __str__(self) -> str:
        return f"query #{self.index}: {self.error}"


@dataclass
class BatchPrediction:
    """The service's answer for one batch.

    ``stats`` holds only this batch's counters (a delta of the service's
    cumulative :class:`ServiceStats`), so its hit rate and prepare counts
    describe the batch and stay fixed after the call returns.
    ``failures`` is non-empty only when the batch was served with
    ``skip_failures=True`` and some queries could not be planned or
    predicted; iteration yields the successful predictions only.
    """

    predictions: list[QueryPrediction]
    elapsed_seconds: float
    stats: ServiceStats = field(repr=False, default_factory=ServiceStats)
    failures: list[QueryFailure] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.predictions)

    def __iter__(self):
        return iter(self.predictions)

    @property
    def queries_per_second(self) -> float:
        return len(self.predictions) / max(self.elapsed_seconds, 1e-12)


class PredictionService:
    """Serves uncertainty-aware predictions for query batches."""

    def __init__(
        self,
        database: Database,
        units: CalibratedUnits,
        *,
        sampling_ratio: float = 0.05,
        num_copies: int = 2,
        seed: int = 0,
        grid_w: int = DEFAULT_GRID_W,
        optimizer_config: OptimizerConfig | None = None,
        interference: InterferenceModel | None = None,
        use_gee: bool = False,
        method: str = "sampling",
        cache_size: int = 256,
        sampling_engine_bytes: int = DEFAULT_ENGINE_BUDGET_BYTES,
    ):
        """``sampling_engine_bytes`` budgets the sub-plan sampling cache;
        0 disables that layer entirely (every prepare samples cold)."""
        self._database = database
        self._optimizer = Optimizer(database, optimizer_config)
        self._sample_db = SampleDatabase(
            database,
            sampling_ratio=sampling_ratio,
            num_copies=num_copies,
            seed=seed,
        )
        self._preparer = UncertaintyPredictor(units, grid_w=grid_w)
        self._concurrent = ConcurrentPredictor(units, interference)
        self._use_gee = use_gee
        self._method = method
        self._grid_w = grid_w
        # Bounded like the prepared cache: a long-lived service fed ad-hoc
        # SQL must not grow a plan per distinct query string forever.
        self._plans: OrderedDict[str, PlannedQuery] = OrderedDict()
        self._plans_maxsize = cache_size
        self._prepared = PreparedCache(maxsize=cache_size)
        self._engine = (
            SamplingEngine(max_bytes=sampling_engine_bytes)
            if sampling_engine_bytes > 0
            else None
        )
        # Guards ServiceStats counter updates and snapshots. The engine
        # itself is not thread-safe (callers serialize serving calls —
        # the Session facade does), but monitoring must be: report()
        # and stats snapshots are read concurrently with traffic and
        # must never observe a torn counter set.
        self._stats_lock = threading.Lock()
        self.stats = ServiceStats()

    # -- introspection -----------------------------------------------------
    @property
    def sample_db(self) -> SampleDatabase:
        return self._sample_db

    @property
    def prepared_cache(self) -> PreparedCache:
        return self._prepared

    @property
    def sampling_engine(self) -> SamplingEngine | None:
        return self._engine

    def report(self) -> ServiceReport:
        """Snapshot counters and cache stats of both cache layers.

        Safe to call from a monitoring thread concurrently with
        traffic: every layer is copied atomically under its own lock
        (the serving counters under the service's stats lock, each
        cache under the cache's), so no snapshot is ever torn.
        Cross-layer skew of in-flight requests is possible and
        harmless — each layer is internally consistent.
        """
        engine = self._engine
        if engine is not None:
            sampling_cache, sampling_entries, sampling_bytes = engine.snapshot()
        else:
            sampling_cache, sampling_entries, sampling_bytes = CacheStats(), 0, 0
        prepared_cache, prepared_entries = self._prepared.snapshot()
        return ServiceReport(
            stats=self._snapshot_stats(),
            prepared_cache=prepared_cache,
            prepared_entries=prepared_entries,
            sampling_cache=sampling_cache,
            sampling_entries=sampling_entries,
            sampling_bytes_used=sampling_bytes,
            sampling_bytes_budget=engine.max_bytes if engine else 0,
        )

    def _snapshot_stats(self) -> ServiceStats:
        """An atomic copy of the cumulative serving counters."""
        with self._stats_lock:
            return self.stats.snapshot()

    def _count(self, **deltas: int) -> None:
        """Atomically bump serving counters (``_count(plans_built=1)``)."""
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    # -- planning / preparing ---------------------------------------------
    def plan(self, query: str | PlannedQuery) -> PlannedQuery:
        """Plan a SQL string (memoized) or pass a pre-planned query through."""
        if isinstance(query, PlannedQuery):
            return query
        planned = self._plans.get(query)
        if planned is None:
            planned = self._optimizer.plan_sql(query)
            self._plans[query] = planned
            if len(self._plans) > self._plans_maxsize:
                self._plans.popitem(last=False)
            self._count(plans_built=1)
        else:
            self._plans.move_to_end(query)
        return planned

    def _cache_key(self, planned: PlannedQuery) -> tuple:
        return (
            plan_signature(planned),
            self._sample_db.fingerprint(),
            self._grid_w,
            self._use_gee,
            self._method,
        )

    def prepare(self, planned: PlannedQuery) -> tuple[PreparedPrediction, bool]:
        """The cached sampling + fitting pass; returns (artifacts, was_hit)."""
        key = self._cache_key(planned)
        prepared = self._prepared.get(key)
        if prepared is not None:
            self._count(prepare_cache_hits=1)
            return prepared, True
        prepared = self._preparer.prepare(
            planned,
            self._sample_db,
            use_gee=self._use_gee,
            method=self._method,
            engine=self._engine,
        )
        self._prepared.put(key, prepared)
        self._count(prepares_run=1)
        return prepared, False

    # -- serving -----------------------------------------------------------
    def predict_query(
        self,
        query: str | PlannedQuery,
        variants: Sequence[Variant] = (Variant.ALL,),
        mpls: Sequence[int] = (1,),
    ) -> QueryPrediction:
        """One query, fanned out across variants and multiprogramming levels."""
        if not variants or not mpls:
            raise PredictionError("need at least one variant and one mpl")
        planned = self.plan(query)
        prepared, was_cached = self.prepare(planned)
        results: dict[tuple[Variant, int], PredictionResult] = {}
        for mpl in mpls:
            predictor = self._concurrent.predictor_at(mpl)
            for variant in variants:
                results[(variant, mpl)] = predictor.predict_prepared(
                    planned, prepared, variant
                )
        self._count(assemblies=len(results), queries_served=1)
        return QueryPrediction(
            sql=query if isinstance(query, str) else None,
            planned=planned,
            results=results,
            prepare_was_cached=was_cached,
        )

    def predict_batch(
        self,
        queries: Iterable[str | PlannedQuery],
        variants: Sequence[Variant] = (Variant.ALL,),
        mpls: Sequence[int] = (1,),
        skip_failures: bool = False,
    ) -> BatchPrediction:
        """A whole batch; see :meth:`predict_query` for the per-query fan-out.

        With ``skip_failures=True``, a query that cannot be planned or
        predicted (malformed SQL, unsupported plan shape, a predicate
        comparing incompatible types, ...) becomes a
        :class:`QueryFailure` in the result instead of aborting the whole
        batch; the remaining queries are still served. Any exception is
        converted — a serving batch must degrade per query, and errors
        escaping the library's own hierarchy (e.g. numpy type errors
        raised while evaluating a predicate over sample columns) abort
        the batch just as hard as a parse error would.
        """
        before = self._snapshot_stats()
        started = time.perf_counter()
        predictions: list[QueryPrediction] = []
        failures: list[QueryFailure] = []
        for index, query in enumerate(queries):
            if not skip_failures:
                predictions.append(
                    self.predict_query(query, variants=variants, mpls=mpls)
                )
                continue
            try:
                predictions.append(
                    self.predict_query(query, variants=variants, mpls=mpls)
                )
            except Exception as error:  # noqa: BLE001 — per-query isolation
                self._count(queries_failed=1)
                failures.append(
                    QueryFailure(
                        index=index,
                        sql=query if isinstance(query, str) else None,
                        error=f"{type(error).__name__}: {error}",
                        code=error_code(error),
                    )
                )
        return BatchPrediction(
            predictions=predictions,
            elapsed_seconds=time.perf_counter() - started,
            stats=self._snapshot_stats().since(before),
            failures=failures,
        )
