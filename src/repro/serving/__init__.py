"""The layered serving tier: transport / admission / routing / workers.

This package decomposes the old monolithic HTTP server into four
separately pluggable layers (bottom up; see ``docs/serving.md``):

* :mod:`~repro.serving.transport` — a worker-agnostic threaded HTTP
  server (:class:`HttpTransport`) that dispatches to a wire app and
  knows how to share a port across processes.
* :mod:`~repro.serving.app` — the :class:`WireApp` interface layers
  implement, and :class:`SessionApp`, the innermost layer binding one
  :class:`~repro.api.session.Session` to the ``/v1`` endpoints.
* :mod:`~repro.serving.admission` — :class:`AdmissionPolicy` and the
  :class:`AdmissionGate` app applying it: :class:`BoundedInFlight`
  (non-queueing, queue-depth-derived ``Retry-After`` on 503) or the
  uncertainty-aware :class:`SchedulingAdmission`, which defers excess
  requests into a predicted-cost queue under a
  :mod:`repro.scheduler` policy (``docs/scheduling.md``);
  :func:`build_admission` picks from the session config.
* :mod:`~repro.serving.routing` — :class:`ConsistentHashRouter` over
  plan signatures plus :class:`RoutedApp`, keeping each recurring
  plan's cache artifacts on one worker as the pool fans out.
* :mod:`~repro.serving.pool` — :class:`WorkerPool`, pre-fork
  multi-process serving behind one shared port (``SO_REUSEPORT`` or
  parent-socket handoff), with graceful SIGTERM/SIGINT drain.
* :mod:`~repro.serving.stats` — cross-worker ``/v1/stats``
  aggregation over typed snapshots (summed counters, recombined hit
  rates, merged feedback/admission sections).

``repro.api.http`` remains the single-process composition of these
layers and is unchanged on the wire.
"""

from .admission import (
    DEFAULT_MAX_IN_FLIGHT,
    AdmissionGate,
    AdmissionPolicy,
    BoundedInFlight,
    SchedulingAdmission,
    build_admission,
)
from .app import (
    METERED_PATHS,
    SessionApp,
    WireApp,
    negotiated_version,
    split_path,
)
from .pool import POOL_MODES, WorkerPool, resolve_mode
from .routing import ROUTED_HEADER, ConsistentHashRouter, RoutedApp, Router
from .stats import (
    aggregate_cache_records,
    aggregate_report_records,
    aggregate_snapshots,
    aggregate_stats_records,
)
from .transport import (
    HttpTransport,
    ServingHandler,
    WireResponse,
    reuseport_available,
    status_for_error,
)

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "METERED_PATHS",
    "POOL_MODES",
    "ROUTED_HEADER",
    "AdmissionGate",
    "AdmissionPolicy",
    "BoundedInFlight",
    "ConsistentHashRouter",
    "HttpTransport",
    "RoutedApp",
    "Router",
    "SchedulingAdmission",
    "ServingHandler",
    "SessionApp",
    "WireApp",
    "WireResponse",
    "WorkerPool",
    "aggregate_cache_records",
    "aggregate_report_records",
    "aggregate_snapshots",
    "aggregate_stats_records",
    "build_admission",
    "negotiated_version",
    "resolve_mode",
    "reuseport_available",
    "split_path",
    "status_for_error",
]
