"""Admission policies: who gets a prediction slot, who gets a 503.

An :class:`AdmissionPolicy` decides, per request, whether the worker
takes on more prediction work. The :class:`AdmissionGate` wire app
applies one policy at the public edge of a worker's stack: metered
POSTs claim a slot before their body is read and release it before the
response is written; health and stats probes are never metered, so the
server stays observable at capacity.

Refusals are immediate 503s (code ``"over-capacity"``) with a
``Retry-After`` header derived from the policy's current queue depth —
shedding load beats queuing without bound, and the header tells
well-behaved clients (:class:`repro.api.client.HttpClient` honors it)
when it is worth coming back.

:class:`SchedulingAdmission` is the uncertainty-aware alternative
(``docs/scheduling.md``): instead of refusing at capacity it *defers*
requests into a :class:`~repro.scheduler.queue.PredictedCostQueue` and
dispatches them under a pluggable
:class:`~repro.scheduler.policy.SchedulingPolicy`, refusing only when
the queue itself is full or a queued request times out. Its
``Retry-After`` comes from the queue's *predicted drain time* — the sum
of queued predicted means over capacity — rather than a depth heuristic.
:func:`build_admission` picks the policy from the session's config;
``scheduler_policy="fifo"`` keeps the original :class:`BoundedInFlight`
object so the default deployment stays bitwise-identical.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable

from ..api.wire import (
    AdmissionStats,
    SchedulerStats,
    admission_stats_to_dict,
    scheduler_stats_to_dict,
)
from ..errors import WireError
from ..feedback import DEFAULT_TENANT
from ..scheduler import (
    PredictedCostQueue,
    QueueEntry,
    SchedulingPolicy,
    make_policy,
)
from .app import METERED_PATHS, WireApp, split_path
from .transport import WireResponse, over_capacity_response

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "AdmissionGate",
    "AdmissionPolicy",
    "BoundedInFlight",
    "SchedulingAdmission",
    "build_admission",
]

DEFAULT_MAX_IN_FLIGHT = 8

#: Cap on the scheduling Retry-After hint — beyond this a refusal means
#: "the queue is deeply backed up", and the exact drain estimate stops
#: being actionable (matches the client's own 5 s honor cap).
_RETRY_AFTER_CAP_SECONDS = 5


class AdmissionPolicy:
    """Decides whether one more prediction may enter the worker."""

    #: Nominal concurrent capacity, for health reporting and refusals.
    capacity: int = 0

    #: True when the policy needs the parsed request body to decide —
    #: the gate then reads the body *before* admission and hands the
    #: policy the record (see :class:`SchedulingAdmission`).
    needs_body: bool = False

    def admit(self) -> bool:
        """Try to claim one in-flight slot; False means refuse with 503."""
        raise NotImplementedError

    def release(self) -> None:
        """Give back a slot claimed by :meth:`admit`."""
        raise NotImplementedError

    def in_flight(self) -> int:
        """How many admitted requests are currently in progress."""
        raise NotImplementedError

    def retry_after_seconds(self) -> int:
        """The backoff hint sent with a refusal, from current queue depth.

        At least 1 second; grows with the in-flight backlog relative to
        capacity, so a saturated-but-draining server suggests a shorter
        wait than one buried several capacities deep.
        """
        return max(1, math.ceil(self.in_flight() / max(self.capacity, 1)))

    def stats(self) -> AdmissionStats:
        """This policy's counters as a typed stats section.

        Policies without lifetime counters report zeros for the totals;
        :class:`BoundedInFlight` overrides with the real ones.
        """
        return AdmissionStats(
            capacity=self.capacity,
            in_flight=self.in_flight(),
            admitted_total=0,
            refused_total=0,
        )


class BoundedInFlight(AdmissionPolicy):
    """At most ``max_in_flight`` concurrent predictions; refuse the rest.

    The pre-refactor server's semaphore policy, unchanged: admission is
    non-blocking, so an over-capacity request costs one failed acquire,
    not a queue slot.
    """

    def __init__(self, max_in_flight: int = DEFAULT_MAX_IN_FLIGHT):
        if max_in_flight < 1:
            raise WireError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.capacity = max_in_flight
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._count_lock = threading.Lock()
        self._in_flight = 0
        self._admitted_total = 0
        self._refused_total = 0

    def admit(self) -> bool:
        """Claim a semaphore slot without blocking."""
        if not self._slots.acquire(blocking=False):
            with self._count_lock:
                self._refused_total += 1
            return False
        with self._count_lock:
            self._in_flight += 1
            self._admitted_total += 1
        return True

    def release(self) -> None:
        """Return a slot; raises if released more often than admitted."""
        with self._count_lock:
            self._in_flight -= 1
        self._slots.release()

    def in_flight(self) -> int:
        """The number of currently-admitted predictions."""
        with self._count_lock:
            return self._in_flight

    def stats(self) -> AdmissionStats:
        """One consistent snapshot of every counter."""
        with self._count_lock:
            return AdmissionStats(
                capacity=self.capacity,
                in_flight=self._in_flight,
                admitted_total=self._admitted_total,
                refused_total=self._refused_total,
            )


class SchedulingAdmission(AdmissionPolicy):
    """Defer over-capacity requests into a predicted-cost queue.

    At capacity a metered request is *queued*, annotated with the
    engine's predicted ``(mean, std)`` for its SQL (one cached-prepare
    prediction), and parked until a release dispatches it under the
    configured :class:`~repro.scheduler.policy.SchedulingPolicy`.
    Refusals happen only when the queue is full (``max_queue``) or a
    queued request waits past ``queue_timeout_seconds`` — so under a
    scheduling policy the 503 means "genuinely overloaded", not "one
    request past the concurrency cap".

    Lock discipline: one lock guards the in-flight count, the queue's
    structure, and the policy's state. Cost estimation (a prediction
    through the engine) and the parked ``event.wait`` both happen
    *outside* it.
    """

    needs_body = True

    def __init__(
        self,
        policy: SchedulingPolicy,
        estimator: Callable[[str], tuple[float, float]] | None = None,
        *,
        capacity: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = 64,
        queue_timeout_seconds: float = 30.0,
        default_deadline_ms: int = 1000,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise WireError(f"max_in_flight must be >= 1, got {capacity}")
        if max_queue < 1:
            raise WireError(f"max_queue must be >= 1, got {max_queue}")
        self.capacity = capacity
        self.scheduling_policy = policy
        self.queue = PredictedCostQueue(estimator)
        self._max_queue = max_queue
        self._queue_timeout_seconds = queue_timeout_seconds
        self._default_deadline_ms = default_deadline_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._in_flight = 0
        self._admitted_total = 0
        self._refused_total = 0
        self._dispatched_total = 0
        self._timeouts_total = 0

    # -- ticket extraction -------------------------------------------------
    def _ticket_sql(self, path: str, record: dict) -> str | None:
        """The SQL to estimate for this request, or None (zero cost).

        Batches are charged by their first query — the same first-query
        affinity the router uses — and malformed shapes yield None so
        the inner app, not admission, produces the structured 400.
        """
        bare, _ = split_path(path)
        if bare == "/v1/predict":
            sql = record.get("sql")
            return sql if isinstance(sql, str) else None
        if bare == "/v1/predict-batch":
            queries = record.get("queries")
            if isinstance(queries, (list, tuple)) and queries:
                return queries[0] if isinstance(queries[0], str) else None
        return None

    def _build_entry(self, path: str, record: dict) -> QueueEntry:
        """A queue entry for ``record`` — estimation runs outside the lock."""
        tenant = record.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            tenant = DEFAULT_TENANT
        deadline_ms = record.get("deadline_ms")
        if (
            not isinstance(deadline_ms, int)
            or isinstance(deadline_ms, bool)
            or deadline_ms < 1
        ):
            deadline_ms = self._default_deadline_ms
        priority = record.get("priority")
        if not isinstance(priority, int) or isinstance(priority, bool):
            priority = 0
        return QueueEntry(
            arrival_seconds=self._clock(),
            tenant=tenant,
            deadline_seconds=deadline_ms / 1000.0,
            priority=priority,
            estimate=self.queue.estimate(self._ticket_sql(path, record)),
        )

    # -- admission ---------------------------------------------------------
    def admit_record(self, path: str, record: dict) -> bool:
        """Admit, defer, or refuse one metered request with its body."""
        with self._lock:
            if self._in_flight < self.capacity and self.queue.depth() == 0:
                self._in_flight += 1
                self._admitted_total += 1
                return True
            if self.queue.depth() >= self._max_queue:
                self._refused_total += 1
                return False
        # Estimation (a real prediction through the engine) happens with
        # no admission lock held; conditions are re-checked afterwards.
        entry = self._build_entry(path, record)
        with self._lock:
            if self._in_flight < self.capacity and self.queue.depth() == 0:
                self._in_flight += 1
                self._admitted_total += 1
                return True
            if self.queue.depth() >= self._max_queue:
                self._refused_total += 1
                return False
            self.queue.push(entry)
        if entry.event.wait(self._queue_timeout_seconds):
            return True
        with self._lock:
            if entry.granted:
                # Lost the race: a dispatcher granted the slot while the
                # wait was timing out. The slot is ours.
                return True
            self.queue.remove(entry, self.scheduling_policy)
            self._timeouts_total += 1
            self._refused_total += 1
        return False

    def admit(self) -> bool:
        """Body-less admission (a zero-cost, default-deadline ticket)."""
        return self.admit_record("/v1/predict", {})

    def release(self) -> None:
        """Return a slot, then dispatch queued work into free slots."""
        with self._lock:
            self._in_flight -= 1
            self._dispatch_locked()

    def _dispatch_locked(self) -> None:
        """Grant free slots to queued entries in policy order.

        Every caller holds ``self._lock`` (the ``_locked`` suffix is the
        contract), so the counter updates below are serialized.
        """
        while self._in_flight < self.capacity:
            entry = self.queue.pop_next(self.scheduling_policy)
            if entry is None:
                return
            self._in_flight += 1  # staticcheck: disable=lock-discipline — caller holds self._lock
            self._admitted_total += 1  # staticcheck: disable=lock-discipline — caller holds self._lock
            self._dispatched_total += 1  # staticcheck: disable=lock-discipline — caller holds self._lock
            entry.granted = True
            entry.event.set()

    # -- reporting ---------------------------------------------------------
    def in_flight(self) -> int:
        """The number of currently-admitted predictions."""
        with self._lock:
            return self._in_flight

    def retry_after_seconds(self) -> int:
        """The queue's predicted drain time, floored at 1 s, capped at 5 s.

        Sum of queued predicted means over capacity: the engine's own
        forecast of how long the backlog takes to clear — an honest
        hint, unlike the depth heuristic, because queued entries carry
        real predictions.
        """
        with self._lock:
            backlog = self.queue.predicted_seconds()
        drain = math.ceil(backlog / max(self.capacity, 1))
        return max(1, min(_RETRY_AFTER_CAP_SECONDS, drain))

    def stats(self) -> AdmissionStats:
        """One consistent snapshot of the admission counters."""
        with self._lock:
            return AdmissionStats(
                capacity=self.capacity,
                in_flight=self._in_flight,
                admitted_total=self._admitted_total,
                refused_total=self._refused_total,
            )

    def scheduler_stats(self) -> SchedulerStats:
        """One consistent snapshot of the queueing counters."""
        with self._lock:
            return SchedulerStats(
                policy=self.scheduling_policy.name,
                queue_depth=self.queue.depth(),
                queued_predicted_seconds=self.queue.predicted_seconds(),
                dispatched_total=self._dispatched_total,
                timeouts_total=self._timeouts_total,
            )


def build_admission(session, max_in_flight: int) -> AdmissionPolicy:
    """The admission policy the session's config asks for.

    ``scheduler_policy="fifo"`` (the default) returns the original
    :class:`BoundedInFlight` — not a queueing policy in arrival order —
    so default deployments keep byte-identical refusal behavior.
    Scheduling policies get a :class:`SchedulingAdmission` whose cost
    estimator is :meth:`Session.estimate
    <repro.api.session.Session.estimate>`.
    """
    config = session.config
    if config.scheduler_policy == "fifo":
        return BoundedInFlight(max_in_flight)
    return SchedulingAdmission(
        make_policy(
            config.scheduler_policy,
            slack=config.scheduler_slack,
            quantum_seconds=config.scheduler_quantum_seconds,
        ),
        estimator=session.estimate,
        capacity=max_in_flight,
        max_queue=config.scheduler_max_queue,
        queue_timeout_seconds=config.scheduler_queue_timeout_seconds,
        default_deadline_ms=config.scheduler_default_deadline_ms,
    )


class AdmissionGate(WireApp):
    """The wire app applying one admission policy around an inner app.

    Sits at the public edge of a worker's stack — requests a router
    forwards between workers cross only private transports and are
    *not* re-metered, so one request can never consume two slots.
    """

    def __init__(self, inner: WireApp, policy: AdmissionPolicy):
        self.inner = inner
        self.policy = policy

    def health(self) -> dict:
        """The inner health payload plus this gate's capacity."""
        return {**self.inner.health(), "max_in_flight": self.policy.capacity}

    def handle_get(self, path: str) -> WireResponse:
        """Pass GETs through unmetered; healthz gains the capacity field.

        A v2-shaped ``/v1/stats`` answer gains this gate's ``admission``
        section on the way out. The gate sits at the public edge — peer
        stats fetches cross private transports with no gate — so the
        section always describes *this* worker's front door, and v1
        answers (which have no sections) pass through untouched.
        """
        bare, _ = split_path(path)
        if bare == "/v1/healthz":
            return WireResponse(200, self.health())
        response = self.inner.handle_get(path)
        if (
            bare == "/v1/stats"
            and response.status == 200
            and isinstance(response.record, dict)
            and response.record.get("schema_version", 1) >= 2
        ):
            record = dict(response.record)
            record["admission"] = admission_stats_to_dict(self.policy.stats())
            scheduler_stats = getattr(self.policy, "scheduler_stats", None)
            if scheduler_stats is not None:
                record["scheduler"] = scheduler_stats_to_dict(scheduler_stats())
            return WireResponse(200, record)
        return response

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Meter prediction POSTs; refuse with 503 + Retry-After when full.

        The slot covers body read + prediction, and is released
        *before* the response is written: a client cannot issue its
        next request until it has read this response, so releasing
        first guarantees N serial clients never see a spurious 503
        under an N-slot cap.
        """
        if split_path(path)[0] not in METERED_PATHS:
            return self.inner.handle_post(path, read_body)
        if self.policy.needs_body:
            # Scheduling admission needs the parsed record to build its
            # ticket (SQL to estimate, tenant, deadline). A malformed
            # body raises here exactly as it would inside the inner app
            # — same WireError, same 400 — just before metering.
            record = read_body()
            if not self.policy.admit_record(path, record):
                return over_capacity_response(
                    self.policy.capacity, self.policy.retry_after_seconds()
                )
            try:
                return self.inner.handle_post(path, lambda: record)
            finally:
                self.policy.release()
        if not self.policy.admit():
            return over_capacity_response(
                self.policy.capacity, self.policy.retry_after_seconds()
            )
        try:
            return self.inner.handle_post(path, read_body)
        finally:
            self.policy.release()
