"""Admission policies: who gets a prediction slot, who gets a 503.

An :class:`AdmissionPolicy` decides, per request, whether the worker
takes on more prediction work. The :class:`AdmissionGate` wire app
applies one policy at the public edge of a worker's stack: metered
POSTs claim a slot before their body is read and release it before the
response is written; health and stats probes are never metered, so the
server stays observable at capacity.

Refusals are immediate 503s (code ``"over-capacity"``) with a
``Retry-After`` header derived from the policy's current queue depth —
shedding load beats queuing without bound, and the header tells
well-behaved clients (:class:`repro.api.client.HttpClient` honors it)
when it is worth coming back.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable

from ..api.wire import AdmissionStats, admission_stats_to_dict
from ..errors import WireError
from .app import METERED_PATHS, WireApp, split_path
from .transport import WireResponse, over_capacity_response

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "AdmissionGate",
    "AdmissionPolicy",
    "BoundedInFlight",
]

DEFAULT_MAX_IN_FLIGHT = 8


class AdmissionPolicy:
    """Decides whether one more prediction may enter the worker."""

    #: Nominal concurrent capacity, for health reporting and refusals.
    capacity: int = 0

    def admit(self) -> bool:
        """Try to claim one in-flight slot; False means refuse with 503."""
        raise NotImplementedError

    def release(self) -> None:
        """Give back a slot claimed by :meth:`admit`."""
        raise NotImplementedError

    def in_flight(self) -> int:
        """How many admitted requests are currently in progress."""
        raise NotImplementedError

    def retry_after_seconds(self) -> int:
        """The backoff hint sent with a refusal, from current queue depth.

        At least 1 second; grows with the in-flight backlog relative to
        capacity, so a saturated-but-draining server suggests a shorter
        wait than one buried several capacities deep.
        """
        return max(1, math.ceil(self.in_flight() / max(self.capacity, 1)))

    def stats(self) -> AdmissionStats:
        """This policy's counters as a typed stats section.

        Policies without lifetime counters report zeros for the totals;
        :class:`BoundedInFlight` overrides with the real ones.
        """
        return AdmissionStats(
            capacity=self.capacity,
            in_flight=self.in_flight(),
            admitted_total=0,
            refused_total=0,
        )


class BoundedInFlight(AdmissionPolicy):
    """At most ``max_in_flight`` concurrent predictions; refuse the rest.

    The pre-refactor server's semaphore policy, unchanged: admission is
    non-blocking, so an over-capacity request costs one failed acquire,
    not a queue slot.
    """

    def __init__(self, max_in_flight: int = DEFAULT_MAX_IN_FLIGHT):
        if max_in_flight < 1:
            raise WireError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.capacity = max_in_flight
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._count_lock = threading.Lock()
        self._in_flight = 0
        self._admitted_total = 0
        self._refused_total = 0

    def admit(self) -> bool:
        """Claim a semaphore slot without blocking."""
        if not self._slots.acquire(blocking=False):
            with self._count_lock:
                self._refused_total += 1
            return False
        with self._count_lock:
            self._in_flight += 1
            self._admitted_total += 1
        return True

    def release(self) -> None:
        """Return a slot; raises if released more often than admitted."""
        with self._count_lock:
            self._in_flight -= 1
        self._slots.release()

    def in_flight(self) -> int:
        """The number of currently-admitted predictions."""
        with self._count_lock:
            return self._in_flight

    def stats(self) -> AdmissionStats:
        """One consistent snapshot of every counter."""
        with self._count_lock:
            return AdmissionStats(
                capacity=self.capacity,
                in_flight=self._in_flight,
                admitted_total=self._admitted_total,
                refused_total=self._refused_total,
            )


class AdmissionGate(WireApp):
    """The wire app applying one admission policy around an inner app.

    Sits at the public edge of a worker's stack — requests a router
    forwards between workers cross only private transports and are
    *not* re-metered, so one request can never consume two slots.
    """

    def __init__(self, inner: WireApp, policy: AdmissionPolicy):
        self.inner = inner
        self.policy = policy

    def health(self) -> dict:
        """The inner health payload plus this gate's capacity."""
        return {**self.inner.health(), "max_in_flight": self.policy.capacity}

    def handle_get(self, path: str) -> WireResponse:
        """Pass GETs through unmetered; healthz gains the capacity field.

        A v2-shaped ``/v1/stats`` answer gains this gate's ``admission``
        section on the way out. The gate sits at the public edge — peer
        stats fetches cross private transports with no gate — so the
        section always describes *this* worker's front door, and v1
        answers (which have no sections) pass through untouched.
        """
        bare, _ = split_path(path)
        if bare == "/v1/healthz":
            return WireResponse(200, self.health())
        response = self.inner.handle_get(path)
        if (
            bare == "/v1/stats"
            and response.status == 200
            and isinstance(response.record, dict)
            and response.record.get("schema_version", 1) >= 2
        ):
            record = dict(response.record)
            record["admission"] = admission_stats_to_dict(self.policy.stats())
            return WireResponse(200, record)
        return response

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Meter prediction POSTs; refuse with 503 + Retry-After when full.

        The slot covers body read + prediction, and is released
        *before* the response is written: a client cannot issue its
        next request until it has read this response, so releasing
        first guarantees N serial clients never see a spurious 503
        under an N-slot cap.
        """
        if split_path(path)[0] not in METERED_PATHS:
            return self.inner.handle_post(path, read_body)
        if not self.policy.admit():
            return over_capacity_response(
                self.policy.capacity, self.policy.retry_after_seconds()
            )
        try:
            return self.inner.handle_post(path, read_body)
        finally:
            self.policy.release()
