"""Admission policies: who gets a prediction slot, who gets a 503.

An :class:`AdmissionPolicy` decides, per request, whether the worker
takes on more prediction work. The :class:`AdmissionGate` wire app
applies one policy at the public edge of a worker's stack: metered
POSTs claim a slot before their body is read and release it before the
response is written; health and stats probes are never metered, so the
server stays observable at capacity.

Refusals are immediate 503s (code ``"over-capacity"``) with a
``Retry-After`` header derived from the policy's current queue depth —
shedding load beats queuing without bound, and the header tells
well-behaved clients (:class:`repro.api.client.HttpClient` honors it)
when it is worth coming back.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable

from ..errors import WireError
from .app import METERED_PATHS, WireApp
from .transport import WireResponse, over_capacity_response

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "AdmissionGate",
    "AdmissionPolicy",
    "BoundedInFlight",
]

DEFAULT_MAX_IN_FLIGHT = 8


class AdmissionPolicy:
    """Decides whether one more prediction may enter the worker."""

    #: Nominal concurrent capacity, for health reporting and refusals.
    capacity: int = 0

    def admit(self) -> bool:
        """Try to claim one in-flight slot; False means refuse with 503."""
        raise NotImplementedError

    def release(self) -> None:
        """Give back a slot claimed by :meth:`admit`."""
        raise NotImplementedError

    def in_flight(self) -> int:
        """How many admitted requests are currently in progress."""
        raise NotImplementedError

    def retry_after_seconds(self) -> int:
        """The backoff hint sent with a refusal, from current queue depth.

        At least 1 second; grows with the in-flight backlog relative to
        capacity, so a saturated-but-draining server suggests a shorter
        wait than one buried several capacities deep.
        """
        return max(1, math.ceil(self.in_flight() / max(self.capacity, 1)))


class BoundedInFlight(AdmissionPolicy):
    """At most ``max_in_flight`` concurrent predictions; refuse the rest.

    The pre-refactor server's semaphore policy, unchanged: admission is
    non-blocking, so an over-capacity request costs one failed acquire,
    not a queue slot.
    """

    def __init__(self, max_in_flight: int = DEFAULT_MAX_IN_FLIGHT):
        if max_in_flight < 1:
            raise WireError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.capacity = max_in_flight
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._count_lock = threading.Lock()
        self._in_flight = 0

    def admit(self) -> bool:
        """Claim a semaphore slot without blocking."""
        if not self._slots.acquire(blocking=False):
            return False
        with self._count_lock:
            self._in_flight += 1
        return True

    def release(self) -> None:
        """Return a slot; raises if released more often than admitted."""
        with self._count_lock:
            self._in_flight -= 1
        self._slots.release()

    def in_flight(self) -> int:
        """The number of currently-admitted predictions."""
        with self._count_lock:
            return self._in_flight


class AdmissionGate(WireApp):
    """The wire app applying one admission policy around an inner app.

    Sits at the public edge of a worker's stack — requests a router
    forwards between workers cross only private transports and are
    *not* re-metered, so one request can never consume two slots.
    """

    def __init__(self, inner: WireApp, policy: AdmissionPolicy):
        self.inner = inner
        self.policy = policy

    def health(self) -> dict:
        """The inner health payload plus this gate's capacity."""
        return {**self.inner.health(), "max_in_flight": self.policy.capacity}

    def handle_get(self, path: str) -> WireResponse:
        """Pass GETs through unmetered; healthz gains the capacity field."""
        if path == "/v1/healthz":
            return WireResponse(200, self.health())
        return self.inner.handle_get(path)

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Meter prediction POSTs; refuse with 503 + Retry-After when full.

        The slot covers body read + prediction, and is released
        *before* the response is written: a client cannot issue its
        next request until it has read this response, so releasing
        first guarantees N serial clients never see a spurious 503
        under an N-slot cap.
        """
        if path not in METERED_PATHS:
            return self.inner.handle_post(path, read_body)
        if not self.policy.admit():
            return over_capacity_response(
                self.policy.capacity, self.policy.retry_after_seconds()
            )
        try:
            return self.inner.handle_post(path, read_body)
        finally:
            self.policy.release()
