"""Wire apps: the request-handling interface the transport dispatches to.

A :class:`WireApp` is one layer of the serving stack — it receives the
request path (plus, for POSTs, a callable that reads and parses the
body on demand) and returns a :class:`~repro.serving.transport.WireResponse`.
Layers compose by wrapping: the admission gate and the router are both
``WireApp``\\ s around an inner app, and the innermost layer is always
:class:`SessionApp`, which binds one :class:`~repro.api.session.Session`
to the four ``/v1`` endpoints.

Raised exceptions propagate to the transport, which maps them onto the
error taxonomy — apps only raise, they never format error bodies for
library failures.
"""

from __future__ import annotations

import time
import urllib.parse
from collections.abc import Callable

from ..api.session import Session
from ..api.wire import (
    SCHEMA_VERSION,
    BatchRequest,
    Observation,
    PredictRequest,
    check_emit_version,
    check_schema_version,
)
from ..errors import WireError
from .transport import WireResponse, not_found_response

__all__ = ["METERED_PATHS", "SessionApp", "WireApp", "split_path"]

#: The prediction/observation endpoints — the only paths admission ever
#: meters; health/stats probes must keep answering at capacity.
METERED_PATHS = ("/v1/predict", "/v1/predict-batch", "/v1/observe")


def split_path(path: str) -> tuple[str, dict[str, str]]:
    """Split a raw request path into ``(bare_path, query_params)``.

    Layers match on the bare path; the only recognized parameter today
    is ``schema_version`` on ``GET /v1/stats`` (version negotiation for
    bodiless requests). Unknown parameters are carried but ignored —
    the same tolerance the wire schema applies to unknown fields.
    """
    bare, sep, query = path.partition("?")
    params: dict[str, str] = {}
    if sep:
        for part in query.split("&"):
            if not part:
                continue
            key, _, value = part.partition("=")
            params[urllib.parse.unquote(key)] = urllib.parse.unquote(value)
    return bare, params


def negotiated_version(params: dict[str, str], default: int) -> int:
    """The schema version a query string asks for, or ``default``.

    A GET has no body to declare ``schema_version`` in, so ``/v1/stats``
    negotiates through the query string. The default is v1: a deployed
    v1 monitor polling the bare path must keep receiving the flat
    report it was written against.
    """
    raw = params.get("schema_version")
    if raw is None:
        return default
    try:
        version = int(raw)
    except ValueError:
        raise WireError(
            f"schema_version query parameter must be an integer, got {raw!r}",
            code="schema-version",
        ) from None
    return check_emit_version(version)


class WireApp:
    """One layer of the serving stack: paths in, wire responses out."""

    def health(self) -> dict:
        """The liveness payload served at ``/v1/healthz``."""
        raise NotImplementedError

    def handle_get(self, path: str) -> WireResponse:
        """Answer a GET for ``path``."""
        raise NotImplementedError

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Answer a POST for ``path``; call ``read_body()`` at most once.

        The body is passed as a thunk, not a dict, so outer layers can
        refuse (admission) or re-route (router) without consuming it.
        """
        raise NotImplementedError


class SessionApp(WireApp):
    """The innermost layer: one session behind the five ``/v1`` routes.

    Version negotiation happens here, per request: the declared
    ``schema_version`` of a POST body (or the ``schema_version`` query
    parameter of a stats GET) decides the **shape of the answer** — a
    v1-declared request is answered with the exact v1 wire form
    (down-converted, byte-identical to a v1 server's output), a v2 one
    gets the full v2 shape. Unversioned POST bodies are assumed current
    (v2); unversioned stats GETs stay v1 for deployed monitors.
    """

    def __init__(self, session: Session):
        self.session = session
        self._started = time.monotonic()

    def health(self) -> dict:
        """The liveness payload: schema version, uptime, traffic counter."""
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "queries_served": self.session.service.stats.queries_served,
        }

    def handle_get(self, path: str) -> WireResponse:
        """Serve ``/v1/healthz`` and ``/v1/stats``; 404 anything else."""
        bare, params = split_path(path)
        if bare == "/v1/healthz":
            return WireResponse(200, self.health())
        if bare == "/v1/stats":
            version = negotiated_version(params, default=1)
            return WireResponse(200, self.session.stats().to_dict(version))
        return not_found_response(bare)

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Serve the prediction/observe endpoints; 404 anything else."""
        bare, _ = split_path(path)
        if bare == "/v1/predict":
            record = read_body()
            version = check_schema_version(record)
            response = self.session.predict(PredictRequest.from_dict(record))
        elif bare == "/v1/predict-batch":
            record = read_body()
            version = check_schema_version(record)
            response = self.session.predict_batch(
                BatchRequest.from_dict(record)
            )
        elif bare == "/v1/observe":
            record = read_body()
            version = check_schema_version(record)
            response = self.session.observe(Observation.from_dict(record))
        else:
            return not_found_response(bare)
        return WireResponse(200, response.to_dict(version))
