"""Wire apps: the request-handling interface the transport dispatches to.

A :class:`WireApp` is one layer of the serving stack — it receives the
request path (plus, for POSTs, a callable that reads and parses the
body on demand) and returns a :class:`~repro.serving.transport.WireResponse`.
Layers compose by wrapping: the admission gate and the router are both
``WireApp``\\ s around an inner app, and the innermost layer is always
:class:`SessionApp`, which binds one :class:`~repro.api.session.Session`
to the four ``/v1`` endpoints.

Raised exceptions propagate to the transport, which maps them onto the
error taxonomy — apps only raise, they never format error bodies for
library failures.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..api.session import Session
from ..api.wire import (
    SCHEMA_VERSION,
    BatchRequest,
    PredictRequest,
    service_report_to_dict,
)
from .transport import WireResponse, not_found_response

__all__ = ["METERED_PATHS", "SessionApp", "WireApp"]

#: The prediction endpoints — the only paths admission ever meters;
#: health/stats probes must keep answering at capacity.
METERED_PATHS = ("/v1/predict", "/v1/predict-batch")


class WireApp:
    """One layer of the serving stack: paths in, wire responses out."""

    def health(self) -> dict:
        """The liveness payload served at ``/v1/healthz``."""
        raise NotImplementedError

    def handle_get(self, path: str) -> WireResponse:
        """Answer a GET for ``path``."""
        raise NotImplementedError

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Answer a POST for ``path``; call ``read_body()`` at most once.

        The body is passed as a thunk, not a dict, so outer layers can
        refuse (admission) or re-route (router) without consuming it.
        """
        raise NotImplementedError


class SessionApp(WireApp):
    """The innermost layer: one session behind the four ``/v1`` routes."""

    def __init__(self, session: Session):
        self.session = session
        self._started = time.monotonic()

    def health(self) -> dict:
        """The liveness payload: schema version, uptime, traffic counter."""
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "queries_served": self.session.service.stats.queries_served,
        }

    def handle_get(self, path: str) -> WireResponse:
        """Serve ``/v1/healthz`` and ``/v1/stats``; 404 anything else."""
        if path == "/v1/healthz":
            return WireResponse(200, self.health())
        if path == "/v1/stats":
            report = self.session.stats()
            return WireResponse(200, service_report_to_dict(report))
        return not_found_response(path)

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Serve the two prediction endpoints; 404 anything else."""
        if path == "/v1/predict":
            response = self.session.predict(
                PredictRequest.from_dict(read_body())
            )
        elif path == "/v1/predict-batch":
            response = self.session.predict_batch(
                BatchRequest.from_dict(read_body())
            )
        else:
            return not_found_response(path)
        return WireResponse(200, response.to_dict())
