"""Pre-fork worker pool: N processes, one session and cache shard each.

The GIL caps one process at roughly one core of prediction work, so the
pool scales the serving tier the classic pre-fork way: the parent forks
``workers`` processes, each of which owns a private
:class:`~repro.api.session.Session` (its cache shard) and a full wire
stack — ``AdmissionGate(RoutedApp(SessionApp))`` on the public port,
plus a private per-worker transport that carries routed forwards and
peer stats probes without re-metering.

Two ways to share the public port (:data:`POOL_MODES`):

* ``reuseport`` — every worker binds its own ``SO_REUSEPORT`` socket;
  the kernel balances connections across them.
* ``handoff`` — the parent binds and listens once, workers inherit the
  socket across ``fork()`` and share its accept queue. The portable
  fallback; ``auto`` picks it when ``SO_REUSEPORT`` is missing.

Workers drain on SIGTERM/SIGINT: stop accepting, finish in-flight
requests, exit 0. The parent's :meth:`WorkerPool.stop` sends SIGTERM,
waits, and only escalates to SIGKILL past the deadline.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
import threading
import time
import traceback

from ..api.config import SessionConfig
from ..api.session import Session
from ..errors import ServingError
from .admission import DEFAULT_MAX_IN_FLIGHT, AdmissionGate, build_admission
from .app import SessionApp
from .routing import ConsistentHashRouter, RoutedApp
from .transport import HttpTransport, reuseport_available

__all__ = ["POOL_MODES", "WorkerPool", "resolve_mode"]

#: Accepted ``mode`` arguments: ``auto`` resolves per platform.
POOL_MODES = ("auto", "reuseport", "handoff")


def resolve_mode(mode: str) -> str:
    """Resolve ``auto`` to a concrete port-sharing mode for this platform.

    Asking for ``reuseport`` explicitly on a platform without it is an
    error rather than a silent downgrade — the operator asked for
    kernel balancing semantics they would not get.
    """
    if mode not in POOL_MODES:
        raise ServingError(
            f"unknown serving mode {mode!r}; expected one of {POOL_MODES}"
        )
    if mode == "auto":
        return "reuseport" if reuseport_available() else "handoff"
    if mode == "reuseport" and not reuseport_available():
        raise ServingError(
            "SO_REUSEPORT is not available on this platform; "
            "use --serving-mode handoff"
        )
    return mode


def _worker_main(
    index: int,
    workers: int,
    mode: str,
    host: str,
    public_port: int,
    listening_socket,
    config: SessionConfig | None,
    session: Session | None,
    max_in_flight: int,
    warmup: bool,
    conn,
) -> None:
    """One worker process: build the stack, rendezvous, serve, drain.

    Startup protocol over ``conn``: send ``("ready", index,
    private_port)``, receive the ``{index: private_url}`` peer table,
    send ``("serving", index)`` once the public socket is accepting.
    Any startup failure sends ``("error", index, traceback)`` and exits
    nonzero.
    """
    try:
        if session is None:
            session = Session(config)
        if warmup:
            session.warmup()
        session_app = SessionApp(session)

        # The private transport carries routed forwards and peer stats
        # probes; it is admission-free so a forwarded request can never
        # consume a second slot or deadlock two full workers.
        private = HttpTransport(session_app, (host, 0))
        private_thread = threading.Thread(
            target=private.serve_forever, daemon=True
        )
        private_thread.start()

        if mode == "reuseport":
            # Bind only after the peer table arrives: a shared-port
            # socket starts receiving connections the moment it
            # listens, and the app stack does not exist yet.
            public = HttpTransport(
                None,
                (host, public_port),
                reuse_port=True,
                bind_and_activate=False,
            )
        else:
            public = HttpTransport.from_listening_socket(
                None, listening_socket
            )

        conn.send(("ready", index, private.server_address[1]))
        peers = conn.recv()

        router = ConsistentHashRouter(workers)
        routed = RoutedApp(session_app, session, router, peers, index)
        public.app = AdmissionGate(
            routed, build_admission(session, max_in_flight)
        )
        if mode == "reuseport":
            public.server_bind()
            public.server_activate()

        # Graceful drain: the handler runs on this (main) thread while
        # it sits inside serve_forever, so shutdown() must run
        # elsewhere — calling it here would wait on our own loop
        # forever. Installed *before* announcing "serving": the parent
        # may SIGTERM the instant it hears from us, and a signal
        # arriving before serve_forever still drains (the shutdown
        # request flag short-circuits the serve loop on entry).
        def _drain(signum, frame):
            threading.Thread(target=public.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        conn.send(("serving", index))
    except Exception:  # noqa: BLE001 — report, then die visibly
        conn.send(("error", index, traceback.format_exc()))
        raise SystemExit(1)

    public.serve_forever()
    # server_close joins every in-flight handler thread (stdlib
    # block_on_close) — requests admitted before the signal finish.
    public.server_close()
    private.shutdown()
    private.server_close()
    session.close()


class WorkerPool:
    """N pre-fork serving workers behind one shared public port.

    Built from either a :class:`~repro.api.config.SessionConfig` (each
    worker constructs its own session — identical by determinism) or a
    prebuilt ``session`` (workers inherit it copy-on-write across
    ``fork()``, so a benchmark pays the build cost once; the copies
    diverge the moment caches mutate, which is exactly the per-worker
    shard semantics wanted).

    Usable as a context manager: ``with WorkerPool(4, config=cfg) as
    pool: ...`` starts on enter and stops on exit.
    """

    def __init__(
        self,
        workers: int,
        *,
        config: SessionConfig | None = None,
        session: Session | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        mode: str = "auto",
        warmup: bool = False,
    ):
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        if config is None and session is None:
            raise ServingError("WorkerPool needs a config or a session")
        self.workers = workers
        self.mode = resolve_mode(mode)
        self.max_in_flight = max_in_flight
        self._config = config
        self._session = session
        self._host = host
        self._port = port
        self._warmup = warmup
        self._procs: list = []
        self._conns: list = []
        self._parent_socket = None
        self.exit_codes: list[int | None] = []

    @property
    def port(self) -> int:
        """The resolved public port (0 until :meth:`start` binds one)."""
        return self._port

    @property
    def url(self) -> str:
        """The public base URL every worker serves behind."""
        return f"http://{self._host}:{self._port}"

    def _bind_parent_socket(self) -> None:
        """Create the parent-side socket that anchors the public port.

        reuseport: a bound, never-listening placeholder that resolves
        ``port=0`` to a concrete port and keeps it reserved while
        workers bind their own sockets (a non-listening member of a
        reuseport group receives no connections). handoff: the real
        listening socket every worker will inherit and accept on.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self.mode == "reuseport":
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
            sock.bind((self._host, self._port))
            if self.mode == "handoff":
                sock.listen(128)
        except OSError as error:
            sock.close()
            raise ServingError(
                f"cannot bind {self._host}:{self._port}: {error}"
            ) from error
        self._parent_socket = sock
        self._host, self._port = sock.getsockname()[:2]

    def start(self, ready_timeout: float = 300.0) -> "WorkerPool":
        """Fork the workers and block until every one is accepting.

        Raises :class:`~repro.errors.ServingError` (after tearing down
        whatever started) if any worker dies or stalls during startup.
        """
        if self._procs:
            raise ServingError("pool is already started")
        self._bind_parent_socket()
        # fork, not spawn: workers must inherit the listening socket
        # and the (optionally prebuilt) session without pickling.
        ctx = multiprocessing.get_context("fork")
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    self.workers,
                    self.mode,
                    self._host,
                    self._port,
                    self._parent_socket if self.mode == "handoff" else None,
                    self._config,
                    self._session,
                    self.max_in_flight,
                    self._warmup,
                    child_conn,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        try:
            peers = {}
            for index, conn in enumerate(self._conns):
                message = self._await_message(
                    index, conn, ready_timeout, expected="ready"
                )
                peers[index] = f"http://{self._host}:{message[2]}"
            for conn in self._conns:
                conn.send(peers)
            for index, conn in enumerate(self._conns):
                self._await_message(
                    index, conn, ready_timeout, expected="serving"
                )
        except Exception:
            self.stop()
            raise
        return self

    def _await_message(self, index, conn, timeout, expected):
        """Receive one startup-protocol message, or fail loudly."""
        if not conn.poll(timeout):
            raise ServingError(
                f"worker {index} sent no {expected!r} message within "
                f"{timeout:.0f}s"
            )
        try:
            message = conn.recv()
        except EOFError:
            raise ServingError(
                f"worker {index} died during startup (no {expected!r})"
            ) from None
        if message[0] == "error":
            raise ServingError(
                f"worker {index} failed during startup:\n{message[2]}"
            )
        if message[0] != expected:
            raise ServingError(
                f"worker {index} sent {message[0]!r}, expected {expected!r}"
            )
        return message

    def stop(self, timeout: float = 30.0) -> list[int | None]:
        """SIGTERM every worker, wait for the drain, SIGKILL stragglers.

        Returns the workers' exit codes (0 = clean drain). Idempotent.
        """
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        self.exit_codes = [proc.exitcode for proc in self._procs]
        for conn in self._conns:
            conn.close()
        if self._parent_socket is not None:
            self._parent_socket.close()
            self._parent_socket = None
        self._procs = []
        self._conns = []
        return self.exit_codes

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
