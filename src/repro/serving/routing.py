"""Plan-signature routing: keep each plan's caches on one worker.

Pre-fork workers each own a private :class:`~repro.api.session.Session`
and therefore a private prepared/sampling cache shard. Left alone,
kernel-level connection balancing would spray a recurring query across
all shards — every shard pays the prepare cost, and effective cache
capacity stays at one worker's. The router fixes that: each worker
plans the incoming SQL, takes the plan's interned
:func:`~repro.service.cache.plan_signature_hash`, and either serves locally
(it owns the key) or forwards the request — over the owner's *private*
transport — to the worker whose shard holds that plan's artifacts.

:class:`ConsistentHashRouter` places workers on a CRC-32 hash ring with
virtual nodes. CRC-32 rather than ``hash()`` because every worker
process must agree on ownership and Python randomizes string hashes per
process. Consistent hashing (vs ``hash % n``) keeps most keys in place
if a deployment later grows or shrinks the pool.

Availability beats affinity: any failure to compute a routing key or to
reach the owner falls back to serving locally — routing is a cache
optimization, never a correctness dependency.
"""

from __future__ import annotations

import bisect
import urllib.error
import urllib.request
import zlib
from collections.abc import Callable

from ..api.session import Session
from ..api.wire import dumps, loads
from ..errors import ServingError
from ..service.cache import plan_signature_hash
from .app import METERED_PATHS, WireApp, negotiated_version, split_path
from .stats import aggregate_report_records
from .transport import WireResponse

__all__ = ["ROUTED_HEADER", "ConsistentHashRouter", "RoutedApp", "Router"]

#: Marks a forwarded request so the receiving worker serves it locally
#: instead of re-routing (no forwarding loops).
ROUTED_HEADER = "X-Repro-Routed"


class Router:
    """Maps a routing key to the index of the worker that owns it."""

    def owner(self, key: str) -> int:
        """The worker index responsible for ``key``."""
        raise NotImplementedError

    def owner_point(self, point: int) -> int:
        """The worker index responsible for an already-hashed key.

        :class:`RoutedApp` routes on
        :func:`~repro.service.cache.plan_signature_hash` — the CRC-32
        interned on the planned query itself, shared with the prepared
        cache and the batch kernel's interner — so the ring never
        re-hashes the signature and can never disagree with them.
        """
        raise NotImplementedError


class ConsistentHashRouter(Router):
    """A CRC-32 hash ring with virtual nodes, identical in every process."""

    def __init__(self, workers: int, replicas: int = 64):
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        if replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {replicas}")
        self.workers = workers
        self.replicas = replicas
        ring = []
        for worker in range(workers):
            for replica in range(replicas):
                token = f"worker-{worker}:{replica}".encode("ascii")
                ring.append((zlib.crc32(token), worker))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    def owner(self, key: str) -> int:
        """The worker owning ``key``: first ring point at/after its hash."""
        return self.owner_point(zlib.crc32(key.encode("utf-8")))

    def owner_point(self, point: int) -> int:
        """The worker owning an already-computed CRC-32 ring point."""
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]


class RoutedApp(WireApp):
    """The wire app that forwards predictions to their owning worker.

    Wraps a worker's :class:`~repro.serving.app.SessionApp`; sits inside
    the admission gate so forwarded requests (which arrive on the
    private transport, below any gate) are never double-metered.
    Also aggregates ``/v1/stats`` across the pool by querying every
    peer's private transport.
    """

    def __init__(
        self,
        inner: WireApp,
        session: Session,
        router: Router,
        peers: dict[int, str],
        self_index: int,
        timeout: float = 60.0,
    ):
        self.inner = inner
        self.session = session
        self.router = router
        self.peers = dict(peers)
        self.self_index = self_index
        self.timeout = timeout

    def health(self) -> dict:
        """The inner health payload plus this worker's pool coordinates."""
        return {
            **self.inner.health(),
            "worker": self.self_index,
            "workers": len(self.peers),
        }

    def handle_get(self, path: str) -> WireResponse:
        """Serve healthz with pool coordinates; aggregate stats pool-wide."""
        bare, params = split_path(path)
        if bare == "/v1/healthz":
            return WireResponse(200, self.health())
        if bare == "/v1/stats":
            version = negotiated_version(params, default=1)
            return WireResponse(200, self._aggregate_stats(version))
        return self.inner.handle_get(path)

    def handle_post(
        self, path: str, read_body: Callable[[], dict]
    ) -> WireResponse:
        """Serve locally when this worker owns the plan; else forward."""
        record = read_body()
        key = self._routing_key(split_path(path)[0], record)
        if key is not None:
            owner = self.router.owner_point(key)
            if owner != self.self_index:
                relayed = self._forward(owner, path, record)
                if relayed is not None:
                    return relayed
        return self.inner.handle_post(path, lambda: record)

    def _routing_key(self, path: str, record: dict) -> int | None:
        """The plan's interned signature hash, or None to serve locally.

        A batch routes on its first query — recurring dashboards replay
        whole batches, so first-query affinity captures the common case
        without planning the entire batch twice. Observations route on
        their ``sql`` exactly like predictions, so a tenant's feedback
        window lives on the same shard that serves that plan's
        predictions. Anything that fails to plan is served locally so
        error bodies come from the worker the client actually reached,
        byte-identical to a single worker.

        The key is :func:`~repro.service.cache.plan_signature_hash` —
        the CRC-32 interned on the planned query, shared with the
        prepared cache's keying and the batch kernel's interner — so a
        recurring plan is hashed once per worker process, not once per
        request, and all three consumers agree by construction. Ring
        placement is unchanged: the hash is the same CRC-32 of the same
        signature string the ring hashed itself before.
        """
        try:
            if path not in METERED_PATHS:
                return None
            if path == "/v1/predict-batch":
                sql = record["queries"][0]
            else:
                sql = record["sql"]
            return plan_signature_hash(self.session.plan(sql))
        except Exception:  # noqa: BLE001 — availability over affinity
            return None

    def _forward(self, owner: int, path: str, record: dict):
        """Relay the request to ``owner``'s private transport.

        Returns the relayed :class:`WireResponse`, or None when the
        peer is unreachable or answers unparseably — the caller then
        serves locally.
        """
        url = self.peers.get(owner)
        if url is None:
            return None
        body = dumps(record).encode("utf-8")
        request = urllib.request.Request(
            url + path,
            data=body,
            headers={
                "Content-Type": "application/json",
                ROUTED_HEADER: "1",
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as raw:
                return WireResponse(raw.status, loads(raw.read()))
        except urllib.error.HTTPError as error:
            try:
                relayed = loads(error.read())
            except Exception:  # noqa: BLE001 — relay only clean errors
                return None
            retry_after = error.headers.get("Retry-After")
            return WireResponse(
                error.code,
                relayed,
                retry_after=int(retry_after) if retry_after else None,
                close=True,
            )
        except (urllib.error.URLError, OSError):
            return None

    def _aggregate_stats(self, version: int) -> dict:
        """Sum this worker's snapshot with every reachable peer's.

        Workers are always fetched at v2 — the sectioned form carries
        the feedback state the aggregate needs — and the pool answer is
        re-emitted at the client's negotiated ``version``, so a v1
        monitor still receives the flat report it was written against.
        """
        records = [self.inner.handle_get("/v1/stats?schema_version=2").record]
        for index, url in sorted(self.peers.items()):
            if index == self.self_index:
                continue
            try:
                with urllib.request.urlopen(
                    url + "/v1/stats?schema_version=2", timeout=self.timeout
                ) as raw:
                    records.append(loads(raw.read()))
            except (urllib.error.URLError, OSError):
                continue  # a dying peer must not fail the probe
        pool = aggregate_report_records(records)
        pool["schema_version"] = version
        if version < 2:
            pool.pop("admission", None)
            pool.pop("feedback", None)
            pool.pop("scheduler", None)
        return pool
