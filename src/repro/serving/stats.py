"""Cross-worker stats aggregation for sharded ``/v1/stats``.

Each pre-fork worker owns a private session, so its stats snapshot
covers only its own shard of the traffic. The public ``/v1/stats``
contract is a *pool-wide* snapshot: the serving worker collects every
peer's wire-form snapshot and recombines them here, typed end to end —
:func:`aggregate_snapshots` is the one aggregation, and the dict-level
helpers parse to :class:`~repro.api.wire.StatsSnapshot`, aggregate, and
re-emit.

Counters add; derived rates do not. ``prepare_hit_rate`` and the cache
``hit_rate`` fields are recomputed from the *summed* numerators and
denominators — averaging per-worker rates would weight an idle worker
the same as a busy one — and stay ``None`` when the summed traffic is
zero, exactly like a single quiet server. The v2 sections follow the
same discipline: admission and scheduler counters sum (the scheduler
policy name survives when every shard agrees, else ``"mixed"``),
feedback tenants merge by name with observation/drift counters summed. A conformal *scale* is a
window quantile and cannot be recombined from per-worker quantiles, so
a merged tenant keeps its scale only when exactly one worker reports
one; otherwise the pool answers ``null`` and clients fall back to the
per-worker value on the shard that owns the plan.

The aggregate of one snapshot is byte-identical to that snapshot under
:func:`repro.api.wire.dumps` — at v1 *and* at v2 — which is what keeps
``--workers 1`` indistinguishable from a single server on this
endpoint. The emitted ``schema_version`` is the maximum any input
declared, so a pool of v1-shaped reports aggregates to a v1 report.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api.wire import (
    AdmissionStats,
    SchedulerStats,
    StatsSnapshot,
    check_schema_version,
)
from ..caching import CacheStats
from ..errors import ServingError
from ..feedback import FeedbackStats, TenantFeedback
from ..service.service import ServiceReport, ServiceStats

__all__ = [
    "aggregate_cache_records",
    "aggregate_report_records",
    "aggregate_snapshots",
    "aggregate_stats_records",
]

_COUNTER_FIELDS = (
    "queries_served",
    "queries_failed",
    "plans_built",
    "prepares_run",
    "prepare_cache_hits",
    "assemblies",
)

_CACHE_FIELDS = ("hits", "misses", "evictions", "oversized")

_GAUGE_FIELDS = (
    "prepared_entries",
    "sampling_entries",
    "sampling_bytes_used",
    "sampling_bytes_budget",
)


def _summed(records: Sequence[dict], fields: Sequence[str]) -> dict:
    return {
        field: sum(int(record.get(field, 0)) for record in records)
        for field in fields
    }


def aggregate_stats_records(records: Sequence[dict]) -> dict:
    """Sum wire-form service-stats dicts; recompute ``prepare_hit_rate``.

    The rate comes from the summed hit and run counters — ``None`` when
    the pool saw no prepare traffic at all.
    """
    summed = _summed(records, _COUNTER_FIELDS)
    lookups = summed["prepares_run"] + summed["prepare_cache_hits"]
    summed["prepare_hit_rate"] = (
        summed["prepare_cache_hits"] / lookups if lookups else None
    )
    return summed


def aggregate_cache_records(records: Sequence[dict]) -> dict:
    """Sum wire-form cache-stats dicts; recompute ``hit_rate``.

    ``None`` when no worker's cache was ever consulted.
    """
    summed = _summed(records, _CACHE_FIELDS)
    lookups = summed["hits"] + summed["misses"]
    summed["hit_rate"] = summed["hits"] / lookups if lookups else None
    return summed


def _merge_feedback(sections: Sequence[FeedbackStats]) -> FeedbackStats:
    """Merge per-worker feedback sections tenant-by-tenant.

    Counters and gauges sum; ``active`` is true when any shard is
    active; ``last_drift_observation`` is the latest any shard saw. The
    conformal scale survives only when exactly one shard reports one —
    quantiles of disjoint windows do not combine, and pretending they
    do would report an interval no worker actually serves.
    """
    shards: dict[str, list[TenantFeedback]] = {}
    for section in sections:
        for tenant in section.tenants:
            shards.setdefault(tenant.tenant, []).append(tenant)
    tenants = []
    for name in sorted(shards):
        parts = shards[name]
        drifts_at = [
            part.last_drift_observation
            for part in parts
            if part.last_drift_observation is not None
        ]
        scales = [part.scale for part in parts if part.scale is not None]
        tenants.append(
            TenantFeedback(
                tenant=name,
                observations=sum(part.observations for part in parts),
                window_fill=sum(part.window_fill for part in parts),
                active=any(part.active for part in parts),
                drifts_detected=sum(part.drifts_detected for part in parts),
                last_drift_observation=max(drifts_at) if drifts_at else None,
                scale=scales[0] if len(scales) == 1 else None,
            )
        )
    return FeedbackStats(
        observations=sum(tenant.observations for tenant in tenants),
        drifts_detected=sum(tenant.drifts_detected for tenant in tenants),
        tenants=tuple(tenants),
    )


def aggregate_snapshots(
    snapshots: Sequence[StatsSnapshot],
) -> StatsSnapshot:
    """Recombine per-worker snapshots into one pool-wide snapshot.

    Every counter and gauge is summed and every derived rate recomputed
    from the summed numerators and denominators. Optional sections stay
    absent when *no* input carried them (a pool of section-less v1
    reports aggregates to a section-less snapshot), and appear when any
    did.
    """
    if not snapshots:
        raise ServingError("cannot aggregate zero stats snapshots")
    report = ServiceReport(
        stats=ServiceStats(
            **{
                field: sum(getattr(s.stats, field) for s in snapshots)
                for field in _COUNTER_FIELDS
            }
        ),
        prepared_cache=CacheStats(
            **{
                field: sum(getattr(s.prepared_cache, field) for s in snapshots)
                for field in _CACHE_FIELDS
            }
        ),
        prepared_entries=sum(s.prepared_entries for s in snapshots),
        sampling_cache=CacheStats(
            **{
                field: sum(getattr(s.sampling_cache, field) for s in snapshots)
                for field in _CACHE_FIELDS
            }
        ),
        sampling_entries=sum(s.sampling_entries for s in snapshots),
        sampling_bytes_used=sum(s.sampling_bytes_used for s in snapshots),
        sampling_bytes_budget=sum(s.sampling_bytes_budget for s in snapshots),
    )
    admissions = [s.admission for s in snapshots if s.admission is not None]
    admission = None
    if admissions:
        admission = AdmissionStats(
            capacity=sum(a.capacity for a in admissions),
            in_flight=sum(a.in_flight for a in admissions),
            admitted_total=sum(a.admitted_total for a in admissions),
            refused_total=sum(a.refused_total for a in admissions),
        )
    feedbacks = [s.feedback for s in snapshots if s.feedback is not None]
    feedback = _merge_feedback(feedbacks) if feedbacks else None
    schedulers = [s.scheduler for s in snapshots if s.scheduler is not None]
    scheduler = None
    if schedulers:
        # Counters and gauges sum across shards; the policy name is the
        # common one when every shard agrees (always true for a pool
        # built from one config), "mixed" otherwise.
        names = {s.policy for s in schedulers}
        scheduler = SchedulerStats(
            policy=names.pop() if len(names) == 1 else "mixed",
            queue_depth=sum(s.queue_depth for s in schedulers),
            queued_predicted_seconds=sum(
                s.queued_predicted_seconds for s in schedulers
            ),
            dispatched_total=sum(s.dispatched_total for s in schedulers),
            timeouts_total=sum(s.timeouts_total for s in schedulers),
        )
    return StatsSnapshot(
        report=report,
        admission=admission,
        feedback=feedback,
        scheduler=scheduler,
    )


def aggregate_report_records(records: Sequence[dict]) -> dict:
    """Sum wire-form stats snapshots into one pool-wide record.

    The result is emitted at the highest schema version any input
    declared: v1 inputs yield exactly the flat single-server report
    (so :func:`repro.api.wire.service_report_from_dict` parses it), v2
    inputs keep their sections. Either way every counter and gauge is
    summed and every hit rate recomputed from the summed counters.
    """
    if not records:
        raise ServingError("cannot aggregate zero service reports")
    version = 1
    snapshots = []
    for record in records:
        version = max(version, check_schema_version(record))
        snapshots.append(StatsSnapshot.from_dict(record))
    return aggregate_snapshots(snapshots).to_dict(version)
