"""Cross-worker stats aggregation for sharded ``/v1/stats``.

Each pre-fork worker owns a private session, so its service report
covers only its own shard of the traffic. The public ``/v1/stats``
contract is a *pool-wide* report: the serving worker collects every
peer's wire-form report and sums them here.

Counters add; derived rates do not. ``prepare_hit_rate`` and the cache
``hit_rate`` fields are recomputed from the *summed* numerators and
denominators — averaging per-worker rates would weight an idle worker
the same as a busy one — and stay ``None`` when the summed traffic is
zero, exactly like a single quiet server. The aggregate of one report
is byte-identical to that report under :func:`repro.api.wire.dumps`,
which is what keeps ``--workers 1`` indistinguishable from the
pre-refactor server on this endpoint.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api.wire import SCHEMA_VERSION
from ..errors import ServingError

__all__ = [
    "aggregate_cache_records",
    "aggregate_report_records",
    "aggregate_stats_records",
]

_COUNTER_FIELDS = (
    "queries_served",
    "queries_failed",
    "plans_built",
    "prepares_run",
    "prepare_cache_hits",
    "assemblies",
)

_CACHE_FIELDS = ("hits", "misses", "evictions", "oversized")

_GAUGE_FIELDS = (
    "prepared_entries",
    "sampling_entries",
    "sampling_bytes_used",
    "sampling_bytes_budget",
)


def _summed(records: Sequence[dict], fields: Sequence[str]) -> dict:
    return {
        field: sum(int(record.get(field, 0)) for record in records)
        for field in fields
    }


def aggregate_stats_records(records: Sequence[dict]) -> dict:
    """Sum wire-form service-stats dicts; recompute ``prepare_hit_rate``.

    The rate comes from the summed hit and run counters — ``None`` when
    the pool saw no prepare traffic at all.
    """
    summed = _summed(records, _COUNTER_FIELDS)
    lookups = summed["prepares_run"] + summed["prepare_cache_hits"]
    summed["prepare_hit_rate"] = (
        summed["prepare_cache_hits"] / lookups if lookups else None
    )
    return summed


def aggregate_cache_records(records: Sequence[dict]) -> dict:
    """Sum wire-form cache-stats dicts; recompute ``hit_rate``.

    ``None`` when no worker's cache was ever consulted.
    """
    summed = _summed(records, _CACHE_FIELDS)
    lookups = summed["hits"] + summed["misses"]
    summed["hit_rate"] = summed["hits"] / lookups if lookups else None
    return summed


def aggregate_report_records(records: Sequence[dict]) -> dict:
    """Sum wire-form service reports into one pool-wide report.

    The result has exactly the single-server report schema (so
    :func:`repro.api.wire.service_report_from_dict` parses it), with
    every counter and gauge summed across workers and every hit rate
    recomputed from the summed counters.
    """
    if not records:
        raise ServingError("cannot aggregate zero service reports")
    gauges = _summed(records, _GAUGE_FIELDS)
    return {
        "schema_version": SCHEMA_VERSION,
        "stats": aggregate_stats_records(
            [record.get("stats", {}) for record in records]
        ),
        "prepared_cache": aggregate_cache_records(
            [record.get("prepared_cache", {}) for record in records]
        ),
        "prepared_entries": gauges["prepared_entries"],
        "sampling_cache": aggregate_cache_records(
            [record.get("sampling_cache", {}) for record in records]
        ),
        "sampling_entries": gauges["sampling_entries"],
        "sampling_bytes_used": gauges["sampling_bytes_used"],
        "sampling_bytes_budget": gauges["sampling_bytes_budget"],
    }
