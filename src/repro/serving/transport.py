"""The worker-agnostic HTTP transport of the layered serving tier.

This module is the bottom of the serving stack (see ``docs/serving.md``):
a threaded stdlib HTTP server that knows *nothing* about sessions,
admission, or routing. It parses requests, hands ``(path, read_body)``
to a wire app (:class:`repro.serving.app.WireApp`), and writes the
:class:`WireResponse` the app returns. Everything an app raises is
mapped onto the error taxonomy by :func:`status_for_error` and
serialized with the NaN-guarded :func:`repro.api.wire.dumps` — the
transport never answers with a bare traceback.

Two ways to own a port:

* :class:`HttpTransport` binds an address itself; ``reuse_port=True``
  sets ``SO_REUSEPORT`` before binding so several worker processes can
  share one port (kernel-level connection balancing).
* :meth:`HttpTransport.from_listening_socket` adopts an inherited,
  already-listening socket — the pre-fork *handoff* path for platforms
  without ``SO_REUSEPORT`` (every worker accepts on the parent's
  socket).

The canned refusal bodies (404 / 405 / 503) live here as functions so
every layer produces byte-identical answers to the pre-refactor
monolithic server.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api.wire import SCHEMA_VERSION, dumps, error_body, loads
from ..errors import ReproError, SqlError, WireError

__all__ = [
    "HttpTransport",
    "ServingHandler",
    "WireResponse",
    "error_response",
    "method_not_allowed_response",
    "not_found_response",
    "over_capacity_response",
    "reuseport_available",
    "status_for_error",
]


def status_for_error(error: BaseException) -> int:
    """The HTTP status for a failed request, per the error taxonomy."""
    if isinstance(error, (SqlError, WireError)):
        return 400
    if isinstance(error, ReproError):
        return 422
    return 500


def reuseport_available() -> bool:
    """Whether this platform exposes ``SO_REUSEPORT`` port sharing."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass
class WireResponse:
    """One JSON answer, ready for any transport to write.

    ``retry_after`` (seconds) becomes a ``Retry-After`` header —
    the admission layer's client backoff hint on 503. ``close`` marks
    responses after which the connection must not be reused (error
    paths may leave declared body bytes unread; under HTTP/1.1
    keep-alive those would desync the connection).
    """

    status: int
    record: dict
    retry_after: int | None = None
    close: bool = False


def error_response(error: BaseException) -> WireResponse:
    """The structured error answer for anything an app raised."""
    return WireResponse(
        status_for_error(error), error_body(error), close=True
    )


def not_found_response(path: str) -> WireResponse:
    """404 for an unknown endpoint (closes: the body was not drained)."""
    return WireResponse(404, {
        "schema_version": SCHEMA_VERSION,
        "error": {
            "code": "not-found",
            "type": "NotFound",
            "message": f"unknown endpoint {path!r}; known: "
            "/v1/predict, /v1/predict-batch, /v1/observe, "
            "/v1/healthz, /v1/stats",
        },
    }, close=True)


def over_capacity_response(limit: int, retry_after: int = 1) -> WireResponse:
    """503 shed-load refusal with the admission layer's backoff hint."""
    return WireResponse(503, {
        "schema_version": SCHEMA_VERSION,
        "error": {
            "code": "over-capacity",
            "type": "OverCapacity",
            "message": f"server is at its in-flight limit "
            f"({limit}); retry shortly",
        },
    }, retry_after=retry_after, close=True)


def method_not_allowed_response(command: str, path: str) -> WireResponse:
    """405 for verbs outside the GET/POST wire contract."""
    return WireResponse(405, {
        "schema_version": SCHEMA_VERSION,
        "error": {
            "code": "method-not-allowed",
            "type": "MethodNotAllowed",
            "message": f"{command} is not supported on {path!r}",
        },
    }, close=True)


class ServingHandler(BaseHTTPRequestHandler):
    """Parses HTTP, dispatches into ``server.app``, writes the answer."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    # Bounds every socket read/write. Without it a client declaring a
    # Content-Length it never delivers would block rfile.read() forever
    # *while holding an admission slot* — max_in_flight such clients
    # would wedge the server permanently.
    timeout = 60

    # The default handler logs every request line to stderr; serving
    # benchmarks would drown in it.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    def _send(self, response: WireResponse) -> None:
        if response.close:
            self.close_connection = True
        body = dumps(response.record).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if response.retry_after is not None:
            self.send_header("Retry-After", str(response.retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise WireError("request needs a JSON body with Content-Length")
        return loads(self.rfile.read(length))

    def do_GET(self):  # noqa: N802 — stdlib naming
        try:
            self._send(self.server.app.handle_get(self.path))
        except Exception as error:  # noqa: BLE001 — HTTP boundary
            self._send(error_response(error))

    def do_POST(self):  # noqa: N802 — stdlib naming
        # The body is read lazily, by whichever layer decides to: the
        # admission gate refuses over-capacity requests *before* their
        # body bytes are consumed.
        try:
            self._send(self.server.app.handle_post(self.path, self._read_body))
        except Exception as error:  # noqa: BLE001 — HTTP boundary
            self._send(error_response(error))

    def do_PUT(self):  # noqa: N802 — stdlib naming
        self._send(method_not_allowed_response(self.command, self.path))

    def do_DELETE(self):  # noqa: N802 — stdlib naming
        self._send(method_not_allowed_response(self.command, self.path))


class HttpTransport(ThreadingHTTPServer):
    """A threaded stdlib HTTP server dispatching into one wire app.

    ``app`` may be assigned after construction (the worker pool builds
    the routing layer only once every peer's address is known) but must
    be set before ``serve_forever()``. ``server_close()`` *drains*: with
    the stdlib's ``block_on_close`` it joins every in-flight handler
    thread, which is what makes SIGTERM shutdown graceful.
    """

    daemon_threads = True

    def __init__(
        self,
        app,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        reuse_port: bool = False,
        bind_and_activate: bool = True,
    ):
        self.app = app
        self.reuse_port = reuse_port
        super().__init__(
            address, ServingHandler, bind_and_activate=bind_and_activate
        )

    def server_bind(self):
        """Bind, first opting into kernel port sharing when requested."""
        if self.reuse_port:
            if not reuseport_available():
                raise WireError(
                    "SO_REUSEPORT is not available on this platform; "
                    "use the socket-handoff serving mode"
                )
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def url(self) -> str:
        """The base URL the server is reachable at."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    @classmethod
    def from_listening_socket(cls, app, listening_socket) -> "HttpTransport":
        """Adopt an inherited, already-listening socket (pre-fork handoff).

        The transport neither binds nor listens; it only ``accept()``\\ s.
        Several forked workers adopting the same socket share its kernel
        accept queue — the fallback when ``SO_REUSEPORT`` is missing.
        """
        transport = cls(
            app,
            listening_socket.getsockname()[:2],
            bind_and_activate=False,
        )
        # Replace the placeholder socket TCPServer created with the
        # inherited one, and fill in what server_bind would have set.
        transport.socket.close()
        transport.socket = listening_socket
        transport.server_address = listening_socket.getsockname()
        host, port = transport.server_address[:2]
        transport.server_name = socket.getfqdn(host)
        transport.server_port = port
        return transport
