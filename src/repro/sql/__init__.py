"""SQL front end: lexer, AST, and parser for the supported subset."""

from .ast import (
    AggCall,
    Arith,
    Between,
    ColumnRef,
    Comparison,
    InList,
    LikePrefix,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
    date_literal_days,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse_query

__all__ = [
    "parse_query",
    "tokenize",
    "Token",
    "TokenType",
    "Query",
    "SelectItem",
    "TableRef",
    "ColumnRef",
    "Literal",
    "Arith",
    "AggCall",
    "Comparison",
    "Between",
    "InList",
    "LikePrefix",
    "OrderItem",
    "date_literal_days",
]
