"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date as _date

__all__ = [
    "ColumnRef",
    "Literal",
    "Arith",
    "AggCall",
    "Comparison",
    "Between",
    "InList",
    "LikePrefix",
    "SelectItem",
    "TableRef",
    "OrderItem",
    "Query",
    "date_literal_days",
    "TPCH_DATE_EPOCH",
]

#: Epoch for DATE literals: day 0 = 1992-01-01 (matches the data generator).
TPCH_DATE_EPOCH = _date(1992, 1, 1)


def date_literal_days(text: str) -> int:
    """Convert 'YYYY-MM-DD' into an integer day number (epoch 1992-01-01)."""
    year, month, day = (int(part) for part in text.split("-"))
    return (_date(year, month, day) - TPCH_DATE_EPOCH).days


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference, e.g. ``l.l_quantity``."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A numeric, string, or date literal (dates stored as day numbers)."""

    value: object
    kind: str  # "number" | "string" | "date"


@dataclass(frozen=True)
class Arith:
    """A binary arithmetic expression over scalars (``+ - * /``)."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class AggCall:
    """An aggregate call: COUNT(*) or FUNC(scalar expression)."""

    func: str  # COUNT | SUM | AVG | MIN | MAX
    argument: object | None  # None means COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class Comparison:
    """``column OP literal`` or ``column OP column`` (a join predicate)."""

    left: ColumnRef
    op: str  # = <> < <= > >=
    right: object  # Literal or ColumnRef


@dataclass(frozen=True)
class Between:
    column: ColumnRef
    low: Literal
    high: Literal


@dataclass(frozen=True)
class InList:
    column: ColumnRef
    values: tuple[Literal, ...]


@dataclass(frozen=True)
class LikePrefix:
    """``column LIKE 'prefix%'`` — the only LIKE shape we support."""

    column: ColumnRef
    prefix: str


@dataclass(frozen=True)
class SelectItem:
    expression: object  # ColumnRef | AggCall | Arith
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str | None = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class OrderItem:
    expression: ColumnRef
    descending: bool = False


@dataclass
class Query:
    """A parsed SELECT query."""

    select: list[SelectItem]
    tables: list[TableRef]
    predicates: list[object] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    select_star: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item.expression, AggCall) for item in self.select)
