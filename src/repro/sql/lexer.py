"""Tokenizer for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import SqlLexError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AND", "OR",
    "AS", "BETWEEN", "IN", "LIKE", "NOT", "LIMIT", "ASC", "DESC",
    "DATE", "COUNT", "SUM", "AVG", "MIN", "MAX", "DISTINCT",
}


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"  # = <> < <= > >= + - * /
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


_SINGLE = {
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
}
_OPERATOR_CHARS = set("=<>+-/!")


def tokenize(sql: str) -> list[Token]:
    """Turn ``sql`` into a token list ending with an END token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        starts_number = ch == "." and i + 1 < n and sql[i + 1].isdigit()
        if ch in _SINGLE and not starts_number:
            tokens.append(Token(_SINGLE[ch], ch, i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise SqlLexError(f"unterminated string literal at {i}")
            tokens.append(Token(TokenType.STRING, sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit ends the number (e.g. "1.").
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            # Scientific notation: 1e5, 2.5e-3, 1E+6.
            if j < n and sql[j] in "eE":
                k = j + 1
                if k < n and sql[k] in "+-":
                    k += 1
                if k < n and sql[k].isdigit():
                    while k < n and sql[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch in _OPERATOR_CHARS:
            two = sql[i : i + 2]
            if two in ("<=", ">=", "<>", "!="):
                tokens.append(Token(TokenType.OPERATOR, "<>" if two == "!=" else two, i))
                i += 2
            elif ch == "!":
                raise SqlLexError(f"unexpected character {ch!r} at position {i}")
            else:
                tokens.append(Token(TokenType.OPERATOR, ch, i))
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word.lower(), i))
            i = j
            continue
        raise SqlLexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, "", n))
    return tokens
