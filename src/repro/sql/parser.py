"""Recursive-descent parser for the supported SQL subset.

Grammar (informal)::

    query      := SELECT select_list FROM table_list [WHERE conjunction]
                  [GROUP BY columns] [ORDER BY order_items] [LIMIT number]
    select_list:= '*' | item (',' item)*
    item       := scalar [AS ident] | agg '(' ['*' | [DISTINCT] scalar] ')'
    scalar     := term (('+'|'-') term)*
    term       := factor (('*'|'/') factor)*
    factor     := literal | column | '(' scalar ')'
    predicate  := column op (literal|column) | column BETWEEN lit AND lit
                | column IN '(' lit, ... ')' | column LIKE 'prefix%'
    conjunction:= predicate (AND predicate)*
"""

from __future__ import annotations

from ..errors import SqlParseError
from .ast import (
    AggCall,
    Arith,
    Between,
    ColumnRef,
    Comparison,
    InList,
    LikePrefix,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
    date_literal_days,
)
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_query"]

_AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARE_OPS = {"=", "<>", "<", "<=", ">", ">="}


def _number(text: str):
    """Parse a NUMBER token: int when possible, else float."""
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def parse_query(sql: str) -> Query:
    """Parse ``sql`` into a :class:`~repro.sql.ast.Query`."""
    return _Parser(tokenize(sql)).parse()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise SqlParseError(
                f"expected {name} at position {self._current.position}, "
                f"got {self._current.value!r}"
            )
        return self._advance()

    def _expect(self, ttype: TokenType) -> Token:
        if self._current.type is not ttype:
            raise SqlParseError(
                f"expected {ttype.value} at position {self._current.position}, "
                f"got {self._current.value!r}"
            )
        return self._advance()

    def _accept_keyword(self, *names: str) -> Token | None:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    # -- grammar -------------------------------------------------------
    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        select_star = False
        items: list[SelectItem] = []
        if self._current.type is TokenType.STAR:
            self._advance()
            select_star = True
        else:
            items.append(self._select_item())
            while self._current.type is TokenType.COMMA:
                self._advance()
                items.append(self._select_item())

        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            tables.append(self._table_ref())

        predicates: list[object] = []
        if self._accept_keyword("WHERE"):
            predicates.append(self._predicate())
            while self._accept_keyword("AND"):
                predicates.append(self._predicate())

        group_by: list[ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._column_ref())
            while self._current.type is TokenType.COMMA:
                self._advance()
                group_by.append(self._column_ref())

        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._current.type is TokenType.COMMA:
                self._advance()
                order_by.append(self._order_item())

        limit = None
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect(TokenType.NUMBER).value)

        if self._current.type is not TokenType.END:
            raise SqlParseError(
                f"trailing input at position {self._current.position}: "
                f"{self._current.value!r}"
            )
        return Query(
            select=items,
            tables=tables,
            predicates=predicates,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            select_star=select_star,
        )

    def _select_item(self) -> SelectItem:
        if self._current.type is TokenType.KEYWORD and self._current.value in _AGG_FUNCS:
            expression: object = self._agg_call()
        else:
            expression = self._scalar()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).value
        return SelectItem(expression=expression, alias=alias)

    def _agg_call(self) -> AggCall:
        func = self._advance().value
        self._expect(TokenType.LPAREN)
        if self._current.type is TokenType.STAR:
            self._advance()
            self._expect(TokenType.RPAREN)
            if func != "COUNT":
                raise SqlParseError(f"{func}(*) is not supported")
            return AggCall(func="COUNT", argument=None)
        distinct = bool(self._accept_keyword("DISTINCT"))
        argument = self._scalar()
        self._expect(TokenType.RPAREN)
        return AggCall(func=func, argument=argument, distinct=distinct)

    def _table_ref(self) -> TableRef:
        table = self._expect(TokenType.IDENT).value
        alias = None
        if self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(table=table, alias=alias)

    def _order_item(self) -> OrderItem:
        column = self._column_ref()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expression=column, descending=descending)

    # -- scalar expressions ---------------------------------------------
    def _scalar(self):
        left = self._term()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in ("+", "-")
        ):
            op = self._advance().value
            left = Arith(op=op, left=left, right=self._term())
        return left

    def _term(self):
        left = self._factor()
        while (
            self._current.type is TokenType.OPERATOR and self._current.value == "/"
        ) or self._current.type is TokenType.STAR:
            op = "*" if self._current.type is TokenType.STAR else "/"
            self._advance()
            left = Arith(op=op, left=left, right=self._factor())
        return left

    def _factor(self):
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            inner = self._factor()
            if isinstance(inner, Literal) and inner.kind == "number":
                return Literal(value=-inner.value, kind="number")
            return Arith(op="-", left=Literal(0, "number"), right=inner)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._scalar()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(value=_number(token.value), kind="number")
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(value=token.value, kind="string")
        if token.is_keyword("DATE"):
            self._advance()
            text = self._expect(TokenType.STRING).value
            return Literal(value=date_literal_days(text), kind="date")
        if token.type is TokenType.IDENT:
            return self._column_ref()
        raise SqlParseError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def _column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENT).value
        if self._current.type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENT).value
            return ColumnRef(name=second, qualifier=first)
        return ColumnRef(name=first)

    # -- predicates -----------------------------------------------------
    def _predicate(self):
        column = self._column_ref()
        token = self._current
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return Between(column=column, low=low, high=high)
        if token.is_keyword("IN"):
            self._advance()
            self._expect(TokenType.LPAREN)
            values = [self._literal()]
            while self._current.type is TokenType.COMMA:
                self._advance()
                values.append(self._literal())
            self._expect(TokenType.RPAREN)
            return InList(column=column, values=tuple(values))
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._expect(TokenType.STRING).value
            if not pattern.endswith("%") or "%" in pattern[:-1] or "_" in pattern:
                raise SqlParseError(
                    f"only prefix LIKE patterns are supported, got {pattern!r}"
                )
            return LikePrefix(column=column, prefix=pattern[:-1])
        if token.type is TokenType.OPERATOR and token.value in _COMPARE_OPS:
            op = self._advance().value
            right_token = self._current
            if right_token.type is TokenType.IDENT:
                right: object = self._column_ref()
            else:
                right = self._literal()
            return Comparison(left=column, op=op, right=right)
        raise SqlParseError(
            f"expected predicate operator at position {token.position}, "
            f"got {token.value!r}"
        )

    def _literal(self) -> Literal:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            number = self._expect(TokenType.NUMBER)
            return Literal(value=-_number(number.value), kind="number")
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(value=_number(token.value), kind="number")
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(value=token.value, kind="string")
        if token.is_keyword("DATE"):
            self._advance()
            text = self._expect(TokenType.STRING).value
            return Literal(value=date_literal_days(text), kind="date")
        raise SqlParseError(
            f"expected literal at position {token.position}, got {token.value!r}"
        )
