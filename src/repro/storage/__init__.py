"""Columnar storage substrate: schemas, tables, statistics, catalog."""

from .catalog import Database
from .index import SortedIndex
from .schema import PAGE_SIZE_BYTES, Column, ColumnType, Schema
from .statistics import ColumnStats, TableStats, build_column_stats, build_table_stats
from .table import Table

__all__ = [
    "PAGE_SIZE_BYTES",
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "Database",
    "SortedIndex",
    "ColumnStats",
    "TableStats",
    "build_column_stats",
    "build_table_stats",
]
