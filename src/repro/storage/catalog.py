"""The database catalog: tables, statistics, and indexes in one place."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from .index import SortedIndex
from .statistics import TableStats, build_table_stats
from .table import Table

__all__ = ["Database"]


@dataclass
class Database:
    """A collection of named tables plus their statistics and indexes.

    This is the substrate the optimizer, executor, and sampling subsystem
    all operate against — the stand-in for the PostgreSQL instance used by
    the paper.
    """

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    stats: dict[str, TableStats] = field(default_factory=dict)
    indexes: dict[tuple[str, str], SortedIndex] = field(default_factory=dict)

    def add_table(self, table: Table, indexed_columns: tuple[str, ...] = ()) -> None:
        """Register ``table``, computing statistics and building indexes."""
        if table.name in self.tables:
            raise CatalogError(f"table already exists: {table.name!r}")
        self.tables[table.name] = table
        self.stats[table.name] = build_table_stats(table)
        for column_name in indexed_columns:
            self.create_index(table.name, column_name)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def table_stats(self, name: str) -> TableStats:
        try:
            return self.stats[name]
        except KeyError:
            raise CatalogError(f"no statistics for table: {name!r}") from None

    def create_index(self, table_name: str, column_name: str) -> SortedIndex:
        table = self.table(table_name)
        if column_name not in table.schema:
            raise CatalogError(
                f"cannot index {table_name}.{column_name}: no such column"
            )
        index = SortedIndex.build(table, column_name)
        self.indexes[(table_name, column_name)] = index
        return index

    def index_for(self, table_name: str, column_name: str) -> SortedIndex | None:
        return self.indexes.get((table_name, column_name))

    def has_index(self, table_name: str, column_name: str) -> bool:
        return (table_name, column_name) in self.indexes

    @property
    def table_names(self) -> list[str]:
        return sorted(self.tables)

    @property
    def total_rows(self) -> int:
        return sum(table.num_rows for table in self.tables.values())
