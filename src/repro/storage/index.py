"""Secondary indexes: sorted-position indexes over single columns.

The executor uses them for index scans; the cost model charges random
page reads per fetched tuple plus per-tuple index CPU, mirroring
PostgreSQL's index scan costing (the paper's ``ci``/``cr`` units).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .schema import PAGE_SIZE_BYTES

__all__ = ["SortedIndex"]

#: Approximate bytes per index entry (key + pointer).
INDEX_ENTRY_BYTES = 16


@dataclass
class SortedIndex:
    """A sorted mapping from column values to row positions."""

    table_name: str
    column_name: str
    sorted_values: np.ndarray
    sorted_positions: np.ndarray

    @classmethod
    def build(cls, table, column_name: str) -> "SortedIndex":
        values = table.column(column_name)
        order = np.argsort(values, kind="stable")
        return cls(
            table_name=table.name,
            column_name=column_name,
            sorted_values=values[order],
            sorted_positions=order.astype(np.int64),
        )

    @property
    def num_entries(self) -> int:
        return len(self.sorted_values)

    @property
    def num_pages(self) -> int:
        if self.num_entries == 0:
            return 1
        return max(1, math.ceil(self.num_entries * INDEX_ENTRY_BYTES / PAGE_SIZE_BYTES))

    def lookup_range(self, low=None, high=None) -> np.ndarray:
        """Row positions with ``low <= value <= high`` (either bound optional)."""
        start = 0
        stop = self.num_entries
        if low is not None:
            start = int(np.searchsorted(self.sorted_values, low, side="left"))
        if high is not None:
            stop = int(np.searchsorted(self.sorted_values, high, side="right"))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        return self.sorted_positions[start:stop]

    def lookup_eq(self, value) -> np.ndarray:
        """Row positions with ``value == key``."""
        return self.lookup_range(low=value, high=value)
