"""Table schemas: typed column definitions and derived physical layout."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..errors import SchemaError

__all__ = ["ColumnType", "Column", "Schema", "PAGE_SIZE_BYTES"]

#: Physical page size used by the cost model (PostgreSQL default, 8 KiB).
PAGE_SIZE_BYTES = 8192


class ColumnType(Enum):
    """Supported column types. Dates are stored as integer day numbers."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"

    @property
    def numpy_dtype(self):
        """The numpy dtype used to store a column of this type."""
        if self is ColumnType.INT or self is ColumnType.DATE:
            return np.int64
        if self is ColumnType.FLOAT:
            return np.float64
        return np.dtype("U32")

    @property
    def width_bytes(self) -> int:
        """Approximate on-disk width, used for page-count estimates."""
        if self is ColumnType.STR:
            return 24
        return 8


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass
class Schema:
    """An ordered collection of columns with name-based lookup."""

    columns: list[Column]
    _index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self):
        self._index = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise SchemaError(f"duplicate column name: {column.name!r}")
            self._index[column.name] = position

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise :class:`SchemaError`."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"unknown column: {name!r}") from None

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name``."""
        if name not in self._index:
            raise SchemaError(f"unknown column: {name!r}")
        return self._index[name]

    @property
    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def row_width_bytes(self) -> int:
        """Approximate width of one row, plus a fixed per-tuple header."""
        header = 24
        return header + sum(column.ctype.width_bytes for column in self.columns)
