"""Column statistics: equi-depth histograms and most-common values.

These statistics power the optimizer's cardinality estimator (the
"optimizer estimates" the paper falls back to for aggregates) and the
MICRO benchmark's Picasso-style selectivity-space query placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import ColumnType

__all__ = ["ColumnStats", "build_column_stats", "TableStats", "build_table_stats"]

#: Number of buckets in equi-depth histograms (PostgreSQL default is 100).
DEFAULT_HISTOGRAM_BUCKETS = 64
#: Number of most-common values tracked per column.
DEFAULT_NUM_MCVS = 16


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    name: str
    ctype: ColumnType
    num_rows: int
    num_distinct: int
    null_fraction: float = 0.0
    min_value: object | None = None
    max_value: object | None = None
    #: equi-depth bucket boundaries (length = buckets + 1), numeric only
    histogram: np.ndarray | None = None
    #: most common values and their frequencies (fractions of the table)
    mcv_values: list = field(default_factory=list)
    mcv_fractions: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Selectivity estimation primitives
    # ------------------------------------------------------------------
    def eq_selectivity(self, value) -> float:
        """Estimated fraction of rows with column == value."""
        for mcv, fraction in zip(self.mcv_values, self.mcv_fractions):
            if mcv == value:
                return fraction
        mcv_mass = sum(self.mcv_fractions)
        rest = max(self.num_distinct - len(self.mcv_values), 1)
        return max((1.0 - mcv_mass) / rest, 1.0 / max(self.num_rows, 1))

    def range_selectivity(self, low=None, high=None) -> float:
        """Estimated fraction of rows with low <= column <= high.

        Uses the equi-depth histogram with linear interpolation within
        buckets, mirroring PostgreSQL's scalarltsel machinery.
        """
        if self.histogram is None or len(self.histogram) < 2:
            return 0.33  # PostgreSQL-style default for unknown ranges
        fraction_high = 1.0 if high is None else self._cdf(high)
        fraction_low = 0.0 if low is None else self._cdf(low)
        return float(np.clip(fraction_high - fraction_low, 0.0, 1.0))

    def _cdf(self, value) -> float:
        """Estimated fraction of rows with column <= value."""
        bounds = self.histogram
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        bucket = int(np.searchsorted(bounds, value, side="right")) - 1
        bucket = min(bucket, len(bounds) - 2)
        lo, hi = float(bounds[bucket]), float(bounds[bucket + 1])
        width = hi - lo
        within = 0.5 if width <= 0 else (float(value) - lo) / width
        buckets = len(bounds) - 1
        return (bucket + min(max(within, 0.0), 1.0)) / buckets

    def value_at_quantile(self, q: float):
        """Approximate the value at cumulative fraction ``q`` (0..1)."""
        if self.histogram is None or len(self.histogram) < 2:
            return self.min_value
        q = min(max(q, 0.0), 1.0)
        buckets = len(self.histogram) - 1
        position = q * buckets
        bucket = min(int(position), buckets - 1)
        within = position - bucket
        lo = float(self.histogram[bucket])
        hi = float(self.histogram[bucket + 1])
        value = lo + within * (hi - lo)
        if self.ctype in (ColumnType.INT, ColumnType.DATE):
            return int(round(value))
        return value


def build_column_stats(
    name: str,
    ctype: ColumnType,
    values: np.ndarray,
    buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    num_mcvs: int = DEFAULT_NUM_MCVS,
) -> ColumnStats:
    """Compute :class:`ColumnStats` from a full column scan."""
    values = np.asarray(values)
    num_rows = len(values)
    if num_rows == 0:
        return ColumnStats(name, ctype, 0, 0)

    uniques, counts = np.unique(values, return_counts=True)
    num_distinct = len(uniques)

    order = np.argsort(counts)[::-1][:num_mcvs]
    mcv_values = [uniques[i] for i in order]
    mcv_fractions = [counts[i] / num_rows for i in order]

    histogram = None
    min_value: object = uniques[0]
    max_value: object = uniques[-1]
    if ctype is not ColumnType.STR:
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        histogram = np.quantile(values.astype(np.float64), quantiles)
        min_value = values.min()
        max_value = values.max()

    return ColumnStats(
        name=name,
        ctype=ctype,
        num_rows=num_rows,
        num_distinct=num_distinct,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
        mcv_values=mcv_values,
        mcv_fractions=mcv_fractions,
    )


@dataclass
class TableStats:
    """Statistics for a table: row count, pages, per-column stats."""

    table_name: str
    num_rows: int
    num_pages: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        return self.columns[name]


def build_table_stats(table) -> TableStats:
    """Compute :class:`TableStats` by scanning every column of ``table``."""
    columns = {}
    for column in table.schema:
        columns[column.name] = build_column_stats(
            column.name, column.ctype, table.column(column.name)
        )
    return TableStats(
        table_name=table.name,
        num_rows=table.num_rows,
        num_pages=table.num_pages,
        columns=columns,
    )
