"""Columnar in-memory tables backed by numpy arrays."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SchemaError
from .schema import PAGE_SIZE_BYTES, Schema

__all__ = ["Table"]


@dataclass
class Table:
    """A named columnar table.

    Columns are dense numpy arrays of equal length. Tables are immutable in
    spirit: construction validates shape/type agreement, and all operations
    that "modify" data (projection, row selection) return new tables.
    """

    name: str
    schema: Schema
    data: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        lengths = set()
        for column in self.schema:
            if column.name not in self.data:
                raise SchemaError(
                    f"table {self.name!r}: missing data for column {column.name!r}"
                )
            array = np.asarray(self.data[column.name])
            self.data[column.name] = array
            lengths.add(len(array))
        extras = set(self.data) - {c.name for c in self.schema}
        if extras:
            raise SchemaError(f"table {self.name!r}: extra columns {sorted(extras)}")
        if len(lengths) > 1:
            raise SchemaError(f"table {self.name!r}: ragged columns {lengths}")

    def __len__(self) -> int:
        return self.num_rows

    @property
    def num_rows(self) -> int:
        if not self.schema.columns:
            return 0
        return len(self.data[self.schema.columns[0].name])

    @property
    def num_pages(self) -> int:
        """Number of physical pages the table occupies (cost-model view)."""
        if self.num_rows == 0:
            return 1
        total_bytes = self.num_rows * self.schema.row_width_bytes
        return max(1, math.ceil(total_bytes / PAGE_SIZE_BYTES))

    def column(self, name: str) -> np.ndarray:
        """Return the raw array for column ``name``."""
        if name not in self.data:
            raise SchemaError(f"table {self.name!r}: unknown column {name!r}")
        return self.data[name]

    def take(self, row_indices: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table containing the given rows (in order)."""
        row_indices = np.asarray(row_indices)
        data = {col: array[row_indices] for col, array in self.data.items()}
        return Table(name or self.name, self.schema, data)

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    def rows(self, limit: int | None = None):
        """Yield rows as dicts — intended for tests and small outputs only."""
        count = self.num_rows if limit is None else min(limit, self.num_rows)
        names = self.schema.names
        for i in range(count):
            yield {name: self.data[name][i] for name in names}
