"""Small shared helpers: RNG plumbing and vectorized index utilities."""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "expand_ranges",
    "join_indices",
    "group_ids",
]


def ensure_rng(seed_or_rng) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, rng, or None."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand per-row ranges ``[starts[i], starts[i] + counts[i])`` into one
    flat index array.

    This is the core trick used by the vectorized join kernel: given, for
    each probe row, the start offset and length of its matching run in a
    sorted build side, produce all matching build positions without a
    Python-level loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # For each output slot, the index of the source row it belongs to.
    row_of = np.repeat(np.arange(len(counts)), counts)
    # Offset of each output slot within its row's run.
    first_slot = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - first_slot[row_of]
    return starts[row_of] + within


def join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return index arrays ``(li, ri)`` of all equijoin matches.

    ``left_keys[li[t]] == right_keys[ri[t]]`` for every output position
    ``t``. The kernel sorts the right side once and binary-searches each
    left key, then expands match runs vectorially — an order-preserving,
    allocation-light equivalent of a hash join probe.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    li = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    ri = order[expand_ranges(lo, counts)]
    return li, ri


def group_ids(*key_columns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factorize one or more key columns into dense group ids.

    Returns ``(ids, uniques_index)`` where ``ids[i]`` is the group id of
    row ``i`` and ``uniques_index`` holds one representative row index per
    group (in group-id order).
    """
    if not key_columns:
        raise ValueError("group_ids requires at least one key column")
    n = len(key_columns[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.lexsort(tuple(reversed(key_columns)))
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for col in key_columns:
        sorted_col = col[order]
        boundary[1:] |= sorted_col[1:] != sorted_col[:-1]
    ids_sorted = np.cumsum(boundary) - 1
    ids = np.empty(n, dtype=np.int64)
    ids[order] = ids_sorted
    representatives = order[boundary]
    return ids, representatives
