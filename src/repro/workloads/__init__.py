"""The three evaluation benchmarks: MICRO, SELJOIN, TPCH (Section 6.2)."""

from ..util import ensure_rng
from .micro import micro_join_queries, micro_scan_queries, micro_workload
from .tpch_templates import TPCH_TEMPLATES, TpchTemplate, template_by_number

__all__ = [
    "micro_workload",
    "micro_scan_queries",
    "micro_join_queries",
    "TPCH_TEMPLATES",
    "TpchTemplate",
    "template_by_number",
    "seljoin_workload",
    "tpch_workload",
    "workload_by_name",
]


def seljoin_workload(num_queries: int = 28, seed: int = 0) -> list[str]:
    """SELJOIN: aggregate-free instances of the 14 TPC-H templates."""
    rng = ensure_rng(seed)
    queries = []
    templates = list(TPCH_TEMPLATES)
    for i in range(num_queries):
        template = templates[i % len(templates)]
        queries.append(template.seljoin(rng))
    return queries


def tpch_workload(num_queries: int = 28, seed: int = 0) -> list[str]:
    """TPCH: aggregate instances of the 14 TPC-H templates."""
    rng = ensure_rng(seed)
    queries = []
    templates = list(TPCH_TEMPLATES)
    for i in range(num_queries):
        template = templates[i % len(templates)]
        queries.append(template.instantiate(rng))
    return queries


def workload_by_name(name: str, database, num_queries: int, seed: int = 0) -> list[str]:
    """Dispatch on benchmark name: MICRO / SELJOIN / TPCH."""
    if name == "MICRO":
        return micro_workload(database, num_queries=num_queries, seed=seed)
    if name == "SELJOIN":
        return seljoin_workload(num_queries=num_queries, seed=seed)
    if name == "TPCH":
        return tpch_workload(num_queries=num_queries, seed=seed)
    raise ValueError(f"unknown benchmark: {name!r}")
