"""The MICRO benchmark: Picasso-style selectivity-space coverage.

Pure selection queries and two-way join queries placed evenly across the
selectivity space using catalog histograms (Section 6.2): for scans the
space is one-dimensional; for joins, the two per-side selection
predicates span a 2-D grid.
"""

from __future__ import annotations

from ..storage import Database
from ..util import ensure_rng

__all__ = ["micro_scan_queries", "micro_join_queries", "micro_workload"]

#: Numeric columns used to place selection predicates per table.
_SCAN_COLUMNS = {
    "lineitem": "l_extendedprice",
    "orders": "o_totalprice",
    "customer": "c_acctbal",
    "part": "p_retailprice",
}

#: Two-way join pairs: (left table, left column, right table, right
#: column, join keys).
_JOIN_PAIRS = (
    ("orders", "o_totalprice", "lineitem", "l_extendedprice",
     "o_orderkey = l_orderkey"),
    ("customer", "c_acctbal", "orders", "o_totalprice",
     "c_custkey = o_custkey"),
    ("part", "p_retailprice", "lineitem", "l_extendedprice",
     "p_partkey = l_partkey"),
)


def _threshold(database: Database, table: str, column: str, fraction: float):
    """The column value below which ~``fraction`` of the rows fall."""
    stats = database.table_stats(table).column(column)
    return stats.value_at_quantile(fraction)


def micro_scan_queries(database: Database, per_table: int = 8) -> list[str]:
    """Selection queries evenly covering (0, 1) selectivity per table."""
    queries = []
    for table, column in _SCAN_COLUMNS.items():
        if table not in database.tables:
            continue
        for i in range(per_table):
            fraction = (i + 0.5) / per_table
            value = _threshold(database, table, column, fraction)
            queries.append(f"SELECT * FROM {table} WHERE {column} <= {value}")
    return queries


def micro_join_queries(database: Database, grid: int = 4) -> list[str]:
    """Two-way join queries over a ``grid x grid`` selectivity grid."""
    queries = []
    for left, left_col, right, right_col, join in _JOIN_PAIRS:
        if left not in database.tables or right not in database.tables:
            continue
        for i in range(grid):
            for j in range(grid):
                left_value = _threshold(database, left, left_col, (i + 0.5) / grid)
                right_value = _threshold(database, right, right_col, (j + 0.5) / grid)
                queries.append(
                    f"SELECT * FROM {left}, {right} WHERE {join} "
                    f"AND {left_col} <= {left_value} "
                    f"AND {right_col} <= {right_value}"
                )
    return queries


def micro_workload(
    database: Database,
    num_queries: int | None = None,
    seed: int = 0,
) -> list[str]:
    """The full MICRO benchmark (optionally subsampled to num_queries)."""
    queries = micro_scan_queries(database) + micro_join_queries(database)
    if num_queries is None or num_queries >= len(queries):
        return queries
    rng = ensure_rng(seed)
    chosen = rng.choice(len(queries), size=num_queries, replace=False)
    return [queries[i] for i in sorted(chosen)]
