"""The 14 TPC-H templates used by the paper (Section 6.2).

Templates 1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 18, 19 — the ones
whose plans the paper's framework handles. Constructs outside our SQL
subset (EXISTS/IN subqueries, OUTER JOIN, CASE, OR blocks) are rewritten
to the equivalent-shape join/filter form, exactly in the spirit of the
paper's own restriction to plans without sub-query nodes.

Each template is a :class:`TpchTemplate`; ``instantiate`` draws the
spec-defined substitution parameters from an RNG. The SELJOIN benchmark
(the "maximal sub-query without aggregates") reuses the same FROM/WHERE
with ``SELECT *``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datagen import text
from ..util import ensure_rng

__all__ = ["TpchTemplate", "TPCH_TEMPLATES", "template_by_number"]


def _date(days_from_1992: int) -> str:
    """Format a day offset as a DATE literal within the 1992..1998 domain."""
    # Walk calendar years to convert the day number back to y-m-d.
    days_in_year = {
        1992: 366, 1993: 365, 1994: 365, 1995: 365,
        1996: 366, 1997: 365, 1998: 365,
    }
    year = 1992
    remaining = max(0, int(days_from_1992))
    while remaining >= days_in_year[year] and year < 1998:
        remaining -= days_in_year[year]
        year += 1
    month_lengths = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
    if year in (1992, 1996):
        month_lengths[1] = 29
    month = 1
    for length in month_lengths:
        if remaining < length:
            break
        remaining -= length
        month += 1
    return f"DATE '{year:04d}-{month:02d}-{remaining + 1:02d}'"


@dataclass(frozen=True)
class TpchTemplate:
    """One TPC-H template: number, FROM clause, and clause builders."""

    number: int
    tables: str
    select: str
    group_by: str

    def where(self, rng) -> str:
        return _WHERE_BUILDERS[self.number](ensure_rng(rng))

    def instantiate(self, rng) -> str:
        """A full TPCH-benchmark query (with aggregates)."""
        sql = f"SELECT {self.select} FROM {self.tables} WHERE {self.where(rng)}"
        if self.group_by:
            sql += f" GROUP BY {self.group_by}"
        return sql

    def seljoin(self, rng) -> str:
        """The maximal aggregate-free subquery (SELJOIN benchmark)."""
        return f"SELECT * FROM {self.tables} WHERE {self.where(rng)}"


def _q1_where(rng) -> str:
    delta = int(rng.integers(60, 121))
    return f"l_shipdate <= {_date(2405 - delta)}"


def _q3_where(rng) -> str:
    segment = str(rng.choice(text.SEGMENTS))
    day = int(rng.integers(1096, 1186))  # a date in March 1995 +- window
    return (
        f"c_mktsegment = '{segment}' AND c_custkey = o_custkey "
        f"AND l_orderkey = o_orderkey AND o_orderdate < {_date(day)} "
        f"AND l_shipdate > {_date(day)}"
    )


def _q4_where(rng) -> str:
    start = int(rng.integers(365, 1827))
    return (
        f"l_orderkey = o_orderkey AND o_orderdate >= {_date(start)} "
        f"AND o_orderdate < {_date(start + 90)} "
        f"AND l_commitdate < l_receiptdate"
    )


def _q5_where(rng) -> str:
    region = str(rng.choice(text.REGIONS))
    start = int(rng.integers(0, 1462))
    return (
        "c_custkey = o_custkey AND l_orderkey = o_orderkey "
        "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
        "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        f"AND r_name = '{region}' AND o_orderdate >= {_date(start)} "
        f"AND o_orderdate < {_date(start + 365)}"
    )


def _q6_where(rng) -> str:
    start = int(rng.integers(0, 1462))
    discount = int(rng.integers(2, 10)) / 100.0
    quantity = int(rng.integers(24, 26))
    return (
        f"l_shipdate >= {_date(start)} AND l_shipdate < {_date(start + 365)} "
        f"AND l_discount BETWEEN {discount - 0.01:.2f} AND {discount + 0.01:.2f} "
        f"AND l_quantity < {quantity}"
    )


def _q7_where(rng) -> str:
    nation1, nation2 = rng.choice(text.NATIONS, size=2, replace=False)
    return (
        "s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
        "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey "
        "AND c_nationkey = n2.n_nationkey "
        f"AND n1.n_name = '{nation1}' AND n2.n_name = '{nation2}' "
        f"AND l_shipdate BETWEEN {_date(1096)} AND {_date(1826)}"
    )


def _q8_where(rng) -> str:
    region = str(rng.choice(text.REGIONS))
    ptype = str(rng.choice(text.TYPES))
    return (
        "p_partkey = l_partkey AND s_suppkey = l_suppkey "
        "AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
        "AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey "
        "AND s_nationkey = n2.n_nationkey "
        f"AND r_name = '{region}' AND p_type = '{ptype}' "
        f"AND o_orderdate BETWEEN {_date(1096)} AND {_date(1826)}"
    )


def _q9_where(rng) -> str:
    word = str(rng.choice(text.PART_NAME_WORDS))
    return (
        "s_suppkey = l_suppkey AND ps_suppkey = l_suppkey "
        "AND ps_partkey = l_partkey AND p_partkey = l_partkey "
        "AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
        f"AND p_name LIKE '{word}%'"
    )


def _q10_where(rng) -> str:
    start = int(rng.integers(365, 1828))
    return (
        "c_custkey = o_custkey AND l_orderkey = o_orderkey "
        f"AND o_orderdate >= {_date(start)} AND o_orderdate < {_date(start + 90)} "
        "AND l_returnflag = 'R' AND c_nationkey = n_nationkey"
    )


def _q12_where(rng) -> str:
    mode1, mode2 = rng.choice(text.SHIP_MODES, size=2, replace=False)
    start = int(rng.integers(0, 1462))
    return (
        f"o_orderkey = l_orderkey AND l_shipmode IN ('{mode1}', '{mode2}') "
        "AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate "
        f"AND l_receiptdate >= {_date(start)} "
        f"AND l_receiptdate < {_date(start + 365)}"
    )


def _q13_where(rng) -> str:
    priority = str(rng.choice(text.PRIORITIES))
    return f"c_custkey = o_custkey AND o_orderpriority <> '{priority}'"


def _q14_where(rng) -> str:
    start = int(rng.integers(0, 2374))
    return (
        "l_partkey = p_partkey AND p_type LIKE 'PROMO%' "
        f"AND l_shipdate >= {_date(start)} AND l_shipdate < {_date(start + 30)}"
    )


def _q18_where(rng) -> str:
    threshold = int(rng.integers(350_000, 430_000))
    return (
        "c_custkey = o_custkey AND o_orderkey = l_orderkey "
        f"AND o_totalprice > {threshold}"
    )


def _q19_where(rng) -> str:
    brand = str(rng.choice(text.BRANDS))
    quantity = int(rng.integers(1, 11))
    containers = ", ".join(f"'{c}'" for c in ["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
    return (
        f"p_partkey = l_partkey AND p_brand = '{brand}' "
        f"AND p_container IN ({containers}) "
        f"AND l_quantity BETWEEN {quantity} AND {quantity + 10} "
        "AND p_size BETWEEN 1 AND 5 "
        "AND l_shipmode IN ('AIR', 'REG AIR')"
    )


_WHERE_BUILDERS = {
    1: _q1_where,
    3: _q3_where,
    4: _q4_where,
    5: _q5_where,
    6: _q6_where,
    7: _q7_where,
    8: _q8_where,
    9: _q9_where,
    10: _q10_where,
    12: _q12_where,
    13: _q13_where,
    14: _q14_where,
    18: _q18_where,
    19: _q19_where,
}

_REVENUE = "SUM(l_extendedprice * (1 - l_discount))"

TPCH_TEMPLATES: tuple[TpchTemplate, ...] = (
    TpchTemplate(
        1,
        "lineitem",
        "l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), "
        f"{_REVENUE}, AVG(l_quantity), COUNT(*)",
        "l_returnflag, l_linestatus",
    ),
    TpchTemplate(
        3,
        "customer, orders, lineitem",
        f"l_orderkey, {_REVENUE} AS revenue, o_orderdate, o_shippriority",
        "l_orderkey, o_orderdate, o_shippriority",
    ),
    TpchTemplate(4, "orders, lineitem", "o_orderpriority, COUNT(*)", "o_orderpriority"),
    TpchTemplate(
        5,
        "customer, orders, lineitem, supplier, nation, region",
        f"n_name, {_REVENUE} AS revenue",
        "n_name",
    ),
    TpchTemplate(6, "lineitem", "SUM(l_extendedprice * l_discount) AS revenue", ""),
    TpchTemplate(
        7,
        "supplier, lineitem, orders, customer, nation n1, nation n2",
        f"n1.n_name, n2.n_name, {_REVENUE} AS revenue",
        "n1.n_name, n2.n_name",
    ),
    TpchTemplate(
        8,
        "part, supplier, lineitem, orders, customer, nation n1, nation n2, region",
        f"n2.n_name, {_REVENUE} AS volume",
        "n2.n_name",
    ),
    TpchTemplate(
        9,
        "part, supplier, lineitem, partsupp, orders, nation",
        "n_name, SUM(l_extendedprice * (1 - l_discount) - "
        "ps_supplycost * l_quantity) AS profit",
        "n_name",
    ),
    TpchTemplate(
        10,
        "customer, orders, lineitem, nation",
        f"c_custkey, c_name, {_REVENUE} AS revenue, c_acctbal, n_name",
        "c_custkey, c_name, c_acctbal, n_name",
    ),
    TpchTemplate(12, "orders, lineitem", "l_shipmode, COUNT(*)", "l_shipmode"),
    TpchTemplate(13, "customer, orders", "c_custkey, COUNT(*)", "c_custkey"),
    TpchTemplate(
        14,
        "lineitem, part",
        f"{_REVENUE} AS promo_revenue, COUNT(*)",
        "",
    ),
    TpchTemplate(
        18,
        "customer, orders, lineitem",
        "c_name, o_orderkey, SUM(l_quantity)",
        "c_name, o_orderkey",
    ),
    TpchTemplate(19, "lineitem, part", f"{_REVENUE} AS revenue", ""),
)


def template_by_number(number: int) -> TpchTemplate:
    """Look up a template by its TPC-H query number."""
    for template in TPCH_TEMPLATES:
        if template.number == number:
            return template
    raise KeyError(f"no TPC-H template {number}")
