"""Shared fixtures: one small TPC-H database and derived artifacts."""

import pytest

from repro.calibration import Calibrator
from repro.datagen import TpchConfig, generate_tpch
from repro.executor import Executor
from repro.hardware import PC1, PC2, HardwareSimulator
from repro.optimizer import Optimizer
from repro.sampling import SampleDatabase


@pytest.fixture(scope="session")
def tpch_db():
    """A small uniform TPC-H database shared across the test session."""
    return generate_tpch(TpchConfig(scale_factor=0.01, skew_z=0.0, seed=42))


@pytest.fixture(scope="session")
def skewed_db():
    """A small skewed (z=1) TPC-H database."""
    return generate_tpch(TpchConfig(scale_factor=0.01, skew_z=1.0, seed=43))


@pytest.fixture(scope="session")
def optimizer(tpch_db):
    return Optimizer(tpch_db)


@pytest.fixture(scope="session")
def executor(tpch_db):
    return Executor(tpch_db)


@pytest.fixture(scope="session")
def pc2_simulator():
    return HardwareSimulator(PC2, rng=1234)


@pytest.fixture(scope="session")
def pc1_simulator():
    return HardwareSimulator(PC1, rng=1234)


@pytest.fixture(scope="session")
def calibrated_units(pc2_simulator):
    return Calibrator(pc2_simulator, repetitions=6).calibrate()


@pytest.fixture(scope="session")
def sample_db(tpch_db):
    return SampleDatabase(tpch_db, sampling_ratio=0.1, seed=7)


@pytest.fixture(scope="session")
def small_sample_db(tpch_db):
    return SampleDatabase(tpch_db, sampling_ratio=0.02, seed=8)
